"""Benchmark E3 — regenerate Table 3 (detailed statistics at 32 procs).

Runs the application suite under all four protocols on the 8x4 platform
and prints the per-protocol statistics tables. Asserts the paper's
qualitative structure:

* the two-level protocols transfer far less data than the one-level ones
  (intra-node sharing coalesces fetches);
* read/write fault and page-transfer counts drop under two-level;
* twin maintenance (flush-updates / incoming diffs) appears only for the
  lock-based false-sharing application (Water); shootdowns only for 2LS;
* Barnes has the most directory updates + write notices and no locks.
"""

from conftest import run_once

from repro.experiments.table3 import run_table3


def test_table3_detailed_statistics(benchmark, bench_apps):
    results = run_once(benchmark, run_table3, apps=bench_apps)
    print()
    print(results.format())

    for app in bench_apps:
        stats = results.stats[app]
        # Two-level protocols move less data: hardware sharing inside the
        # node coalesces page fetches (the central claim of the paper).
        assert stats["2L"]["data_mbytes"] < stats["1LD"]["data_mbytes"], app
        assert stats["2L"]["page_transfers"] <= \
            stats["1LD"]["page_transfers"], app
        # Shootdowns happen only under 2LS; incoming diffs / flush-updates
        # only under 2L.
        assert stats["2L"]["shootdowns"] == 0
        assert stats["2LS"]["incoming_diffs"] == 0
        assert stats["2LS"]["flush_updates"] == 0
        # Barriers counted as episodes must agree across protocols.
        assert stats["2L"]["barriers"] == stats["1LD"]["barriers"], app

    if "Water" in bench_apps:
        water = results.stats["Water"]
        twin_traffic = (water["2L"]["flush_updates"]
                        + water["2L"]["incoming_diffs"])
        assert twin_traffic > 0, "Water should exercise two-way diffing"
        assert water["2LS"]["shootdowns"] > 0
    if "Barnes" in bench_apps:
        barnes = results.stats["Barnes"]
        assert barnes["2L"]["lock_flag_acquires"] == 0

"""Extension benchmark — the two-level advantage shrinks as computation
grows (the paper's computation-to-communication-ratio explanation, made
quantitative; see repro.experiments.sensitivity)."""

from conftest import run_once

from repro.experiments.sensitivity import run_sensitivity


def test_protocol_gap_tracks_compute_density(benchmark):
    results = run_once(benchmark, run_sensitivity, apps=("Em3d",),
                       scales=(0.25, 1.0, 4.0))
    print()
    print(results.format())

    per_scale = results.ratio["Em3d"]
    gaps = [per_scale[s]["1LD"] for s in sorted(per_scale)]
    # More compute per communicated byte -> smaller one-level penalty.
    assert gaps[0] > gaps[-1], gaps
    # The two-level advantage exists at every density.
    assert all(g >= 0.99 for g in gaps)

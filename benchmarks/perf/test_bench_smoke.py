"""Smoke test for the wall-clock bench harness (not a timing assertion).

Runs the quick suite once and checks the report's shape: every benchmark
present, positive wall times, simulator throughput reported for the full
runs, and the baseline comparison/regression gate wired up. Wall-clock
*values* are never asserted — CI machines are too variable — except
through the deliberately loose access gate exercised here with a
synthetic baseline.
"""

import json
import os

from repro.experiments.bench import (ACCESS_REGRESSION_FACTOR, BenchReport,
                                     BenchResult, run_bench)

_BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")

EXPECTED = {"access", "fault_storm", "barrier", "sor32", "water32",
            "sor_band_lowered", "sor_band_interp",
            "sweep_serial", "sweep_parallel", "sweep_warm"}


def test_quick_bench_report_shape():
    report = run_bench(quick=True, baseline_path=_BASELINE)
    data = report.to_json()
    assert data["schema"] == "cashmere-bench-3"
    assert data["quick"] is True
    assert isinstance(data["fastpath"], bool)
    assert isinstance(data["lowering"], bool)
    assert "jobs" in data
    assert set(data["benchmarks"]) == EXPECTED
    for name, entry in data["benchmarks"].items():
        assert entry["wall_s"] > 0, name
    for full in ("sor32", "water32", "fault_storm", "barrier",
                 "sor_band_lowered", "sor_band_interp"):
        assert data["benchmarks"][full]["sim_us"] > 0
        assert data["benchmarks"][full]["sim_us_per_wall_s"] > 0
    # The access microbench is all-warm: warm accesses charge nothing,
    # so its simulated time is honestly tiny — just the handful of cold
    # faults that warmed the pages up, orders of magnitude under the
    # other benches.
    assert 0 < data["benchmarks"]["access"]["sim_us"] < 1000.0
    # Lowered and interpreted runs covered the same simulated time and
    # the parity diffs passed.
    lowered = data["benchmarks"]["sor_band_lowered"]
    assert lowered["sim_us"] == data["benchmarks"]["sor_band_interp"]["sim_us"]
    assert lowered["parity"] == "ok"
    assert lowered["parity_sor32"] == "ok"
    # Honest sweep provenance: two-worker pool, measured speedup.
    par = data["benchmarks"]["sweep_parallel"]
    assert par["jobs"] == min(2, par["cores"])
    assert par["speedup"] > 0
    # The cache-warm sweep ran zero simulations (all cells cached) and
    # is far cheaper than the cold serial sweep.
    assert data["benchmarks"]["sweep_warm"]["executed"] == 0
    assert data["benchmarks"]["sweep_warm"]["misses"] == 0
    assert data["benchmarks"]["sweep_warm"]["hits"] > 0
    assert data["benchmarks"]["sweep_warm"]["wall_s"] < \
        0.5 * data["benchmarks"]["sweep_serial"]["wall_s"]
    # Baseline loaded and compared.
    assert data["baseline"]["schema"] == "cashmere-bench-1"
    assert set(data["speedup_vs_baseline"]) <= EXPECTED
    assert json.dumps(data)  # serializable


def test_regression_gate_fires_on_synthetic_baseline():
    report = BenchReport(results=[BenchResult("access", wall_s=1.0, reps=1)],
                         baseline={"benchmarks": {"access": {"wall_s": 0.1}}})
    message = report.check_regression()
    assert message is not None and "regressed" in message

    healthy = BenchReport(
        results=[BenchResult("access", wall_s=0.1, reps=1)],
        baseline={"benchmarks": {
            "access": {"wall_s": 0.1 / ACCESS_REGRESSION_FACTOR * 2.0}}})
    assert healthy.check_regression() is None


def test_lowering_gate_fires_on_parity_or_ratio_failure():
    mismatch = BenchReport(results=[
        BenchResult("sor_band_lowered", wall_s=0.1, reps=1,
                    extra={"parity": "MISMATCH", "parity_sor32": "ok"}),
        BenchResult("sor_band_interp", wall_s=0.5, reps=1)])
    message = mismatch.check_regression()
    assert message is not None and "parity" in message

    slow = BenchReport(results=[
        BenchResult("sor_band_lowered", wall_s=0.4, reps=1,
                    extra={"parity": "ok", "parity_sor32": "ok"}),
        BenchResult("sor_band_interp", wall_s=0.5, reps=1)])
    message = slow.check_regression()
    assert message is not None and "not batching" in message

    healthy = BenchReport(results=[
        BenchResult("sor_band_lowered", wall_s=0.1, reps=1,
                    extra={"parity": "ok", "parity_sor32": "ok"}),
        BenchResult("sor_band_interp", wall_s=0.5, reps=1)])
    assert healthy.check_regression() is None


def test_profile_rows_report_hot_functions():
    from repro.experiments.bench import _profile_rows, bench_barrier
    rows = _profile_rows([lambda: bench_barrier(episodes=5)], top=10)
    assert 0 < len(rows) <= 10
    for row in rows:
        assert row["ncalls"] >= 1
        assert row["cumtime_s"] >= row["tottime_s"] >= 0
    # Sorted by cumulative time, and the simulator shows up hot.
    cums = [r["cumtime_s"] for r in rows]
    assert cums == sorted(cums, reverse=True)


def test_sweep_warm_gate_fires_when_cache_not_serving():
    stale = BenchReport(results=[
        BenchResult("sweep_serial", wall_s=1.0, reps=1),
        BenchResult("sweep_warm", wall_s=0.9, reps=3)])
    message = stale.check_regression()
    assert message is not None and "cache" in message

    healthy = BenchReport(results=[
        BenchResult("sweep_serial", wall_s=1.0, reps=1),
        BenchResult("sweep_warm", wall_s=0.01, reps=3)])
    assert healthy.check_regression() is None

"""Smoke test for the wall-clock bench harness (not a timing assertion).

Runs the quick suite once and checks the report's shape: every benchmark
present, positive wall times, simulator throughput reported for the full
runs, and the baseline comparison/regression gate wired up. Wall-clock
*values* are never asserted — CI machines are too variable — except
through the deliberately loose access gate exercised here with a
synthetic baseline.
"""

import json
import os

from repro.experiments.bench import (ACCESS_REGRESSION_FACTOR, BenchReport,
                                     BenchResult, run_bench)

_BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")

EXPECTED = {"access", "fault_storm", "barrier", "sor32", "water32",
            "sweep_serial", "sweep_parallel", "sweep_warm"}


def test_quick_bench_report_shape():
    report = run_bench(quick=True, baseline_path=_BASELINE)
    data = report.to_json()
    assert data["schema"] == "cashmere-bench-2"
    assert data["quick"] is True
    assert isinstance(data["fastpath"], bool)
    assert "jobs" in data
    assert set(data["benchmarks"]) == EXPECTED
    for name, entry in data["benchmarks"].items():
        assert entry["wall_s"] > 0, name
    for full in ("sor32", "water32"):
        assert data["benchmarks"][full]["sim_us"] > 0
        assert data["benchmarks"][full]["sim_us_per_wall_s"] > 0
    # The cache-warm sweep ran zero simulations (all cells cached) and
    # is far cheaper than the cold serial sweep.
    assert data["benchmarks"]["sweep_warm"]["executed"] == 0
    assert data["benchmarks"]["sweep_warm"]["misses"] == 0
    assert data["benchmarks"]["sweep_warm"]["hits"] > 0
    assert data["benchmarks"]["sweep_warm"]["wall_s"] < \
        0.5 * data["benchmarks"]["sweep_serial"]["wall_s"]
    # Baseline loaded and compared.
    assert data["baseline"]["schema"] == "cashmere-bench-1"
    assert set(data["speedup_vs_baseline"]) <= EXPECTED
    assert json.dumps(data)  # serializable


def test_regression_gate_fires_on_synthetic_baseline():
    report = BenchReport(results=[BenchResult("access", wall_s=1.0, reps=1)],
                         baseline={"benchmarks": {"access": {"wall_s": 0.1}}})
    message = report.check_regression()
    assert message is not None and "regressed" in message

    healthy = BenchReport(
        results=[BenchResult("access", wall_s=0.1, reps=1)],
        baseline={"benchmarks": {
            "access": {"wall_s": 0.1 / ACCESS_REGRESSION_FACTOR * 2.0}}})
    assert healthy.check_regression() is None


def test_sweep_warm_gate_fires_when_cache_not_serving():
    stale = BenchReport(results=[
        BenchResult("sweep_serial", wall_s=1.0, reps=1),
        BenchResult("sweep_warm", wall_s=0.9, reps=3)])
    message = stale.check_regression()
    assert message is not None and "cache" in message

    healthy = BenchReport(results=[
        BenchResult("sweep_serial", wall_s=1.0, reps=1),
        BenchResult("sweep_warm", wall_s=0.01, reps=3)])
    assert healthy.check_regression() is None

"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints it (captured into bench_output.txt by the harness invocation).
Benchmarks are heavyweight end-to-end simulations, so they run with
one round / one iteration via ``benchmark.pedantic``.

Set ``CASHMERE_BENCH_FULL=1`` to run the full application x placement
matrices instead of the representative quick subsets.
"""

import os

import pytest

FULL = os.environ.get("CASHMERE_BENCH_FULL", "") == "1"

#: Representative application subset for quick benchmark runs: one
#: high-C:C barrier app, the lock app, the flag app, and the two
#: communication-bound apps where the two-level protocols matter most.
QUICK_APPS = ("SOR", "Water", "Gauss", "Em3d", "Barnes")


@pytest.fixture(scope="session")
def bench_apps():
    from repro.experiments.configs import APP_ORDER
    return APP_ORDER if FULL else QUICK_APPS


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

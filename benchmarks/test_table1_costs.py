"""Benchmark E1 — regenerate Table 1 (basic operation costs).

Prints the measured costs next to the paper's and asserts the
qualitative shape: exact lock costs, barrier crossover (two-level
costlier at 2 processors, cheaper at 32), and page-transfer ordering
(local < remote; one-level remote < two-level remote).
"""

from conftest import run_once

from repro.experiments.table1 import PAPER_TABLE1, run_table1


def test_table1_basic_operation_costs(benchmark):
    results = run_once(benchmark, run_table1)
    print()
    print(results.format())
    print("\nPaper values: lock 19/11 us; barrier(2p) 58/41; "
          "barrier(32p) 321/364; transfer local -/467, remote 824/777")

    # Lock acquire costs were calibrated to match Table 1 exactly.
    assert abs(results.lock_acquire["2L"] - 19.0) < 2.0
    assert abs(results.lock_acquire["1LD"] - 11.0) < 2.0

    # Barrier crossover: the two-level barrier pays an intra-node phase at
    # 2 processors but wins at 32 (fewer MC slots to scan).
    assert results.barrier_2p["2L"] > results.barrier_2p["1LD"]
    assert results.barrier_32p["2L"] < results.barrier_32p["1LD"]
    assert results.barrier_32p["1LD"] > 300.0  # paper: 364 us

    # Page transfers: local (bus) beats remote (Memory Channel); the
    # two-level fetch carries second-level directory overhead.
    assert results.page_transfer_local["2L"] is None
    assert results.page_transfer_local["1LD"] < \
        results.page_transfer_remote["1LD"]
    assert results.page_transfer_remote["2L"] > \
        results.page_transfer_remote["1LD"]
    for proto in ("2L", "1LD"):
        measured = results.page_transfer_remote[proto]
        paper = PAPER_TABLE1["page_transfer_remote"][proto]
        assert abs(measured - paper) / paper < 0.15

    # Directory modification: 5 us lock-free vs 16 us locked (Section 3.1).
    assert results.dir_update_lock_free == 5.0
    assert results.dir_update_locked == 16.0

"""Benchmark E2 — regenerate Table 2 (sequential baselines).

Runs every application's uninstrumented sequential execution at the
scaled problem sizes and prints the table with the paper's values
alongside. Asserts that the relative ordering of the heavyweight
applications is preserved (Water and TSP are the long runs in the paper;
Em3d is the shortest).
"""

from conftest import run_once

from repro.experiments.table2 import format_table2, run_table2


def test_table2_sequential_times(benchmark):
    rows = run_once(benchmark, run_table2)
    print()
    print(format_table2(rows))

    by_name = {r.app: r for r in rows}
    assert set(by_name) == {"SOR", "LU", "Water", "TSP", "Gauss", "Ilink",
                            "Em3d", "Barnes"}
    for row in rows:
        assert row.seq_time_s > 0
        assert row.shared_kbytes > 0

    # The compute-heavy applications dominate the scaled baselines just
    # as they dominate Table 2.
    assert by_name["Water"].seq_time_s > by_name["Em3d"].seq_time_s
    assert by_name["TSP"].seq_time_s > by_name["Em3d"].seq_time_s
    assert by_name["Gauss"].seq_time_s > by_name["Em3d"].seq_time_s

"""Benchmark E7 — Section 3.3.5 ablation: lock-free protocol structures.

Prints the lock-free vs global-lock comparison for 2L and asserts the
paper's finding: the applications with heavy directory/write-notice
traffic (Barnes, Em3d, Ilink) benefit from lock-free structures, while
quiet applications (SOR) see no significant difference; no application
is hurt appreciably by lock-freedom.
"""

from conftest import run_once

from repro.experiments.lockfree import run_lockfree_ablation
from repro.stats.report import pct_change


def test_lockfree_vs_global_locks(benchmark):
    results = run_once(benchmark, run_lockfree_ablation,
                       apps=("Barnes", "Em3d", "Ilink", "Water", "SOR"))
    print()
    print(results.format())

    gains = {
        app: pct_change(t["lock_free"], t["locked"])
        for app, t in results.exec_time_s.items()}

    # Lock-free never loses more than noise.
    for app, gain in gains.items():
        assert gain > -2.0, (app, gain)

    # Barnes has by far the most directory accesses + write notices and
    # must benefit; the quiet SOR must not change materially.
    assert results.dir_updates["Barnes"] >= results.dir_updates["SOR"]
    assert gains["Barnes"] > gains["SOR"] - 1.0
    assert gains["Barnes"] > 0.5
    assert abs(gains["SOR"]) < 3.0

"""Benchmark E8 — Memory Channel micro-benchmarks (Section 2.1 / 3.1).

Verifies that the simulated network reproduces the hardware's published
characteristics end to end: 5.2 us remote-write latency, 29 MB/s link
bandwidth, ~60 MB/s aggregate, total write ordering per region, and
loop-back visibility — and measures the simulator's own event throughput
(the only benchmark here that times the *simulator* rather than the
simulated machine).
"""

import pytest
from conftest import run_once

from repro.config import MachineConfig
from repro.memchannel.network import MemoryChannel
from repro.sim.engine import Simulator


def _drive_network():
    sim = Simulator()
    mc = MemoryChannel(sim, MachineConfig())
    region = mc.new_region("bench", 64)
    latencies = []
    for i in range(1000):
        t = float(i)
        visible = mc.write_word(region, i % 64, i, at=t)
        latencies.append(visible - t)
    transfers = [mc.transfer(0.0, 29000) for _ in range(4)]
    sim.run()
    return mc, region, latencies, transfers


def test_memchannel_characteristics(benchmark):
    mc, region, latencies, transfers = run_once(benchmark, _drive_network)

    # 5.2 us process-to-process write latency.
    assert all(lat == pytest.approx(5.2) for lat in latencies)

    # 29 MB/s per link; two links give ~58-60 MB/s aggregate: four
    # simultaneous 29 KB transfers take 2 x 1000 us, not 4 x 1000 us.
    send_times = sorted(done for done, _ in transfers)
    assert send_times[0] == pytest.approx(1000.0)
    assert send_times[1] == pytest.approx(1000.0)
    assert send_times[3] == pytest.approx(2000.0)

    print(f"\nMC micro: latency 5.2 us, link 29 MB/s, "
          f"aggregate ~{2 * 29} MB/s, "
          f"{region.write_count} ordered writes, "
          f"total traffic {mc.total_bytes} bytes")


def test_write_ordering_guarantee(benchmark):
    def ordered():
        sim = Simulator()
        mc = MemoryChannel(sim, MachineConfig())
        region = mc.new_region("order", 1)
        # Writes from different nodes to one region appear in one global
        # order in every receive region (Section 2.1).
        mc.write_word(region, 0, "first", at=10.0)
        mc.write_word(region, 0, "second", at=10.0)
        sim.run()
        return region

    region = run_once(benchmark, ordered)
    assert region.read(0, 100.0) == "second"
    history = region.words[0]._history
    times = [t for t, _ in history]
    assert times == sorted(times)

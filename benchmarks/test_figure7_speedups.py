"""Benchmark E5 — regenerate Figure 7 (speedups across placements).

Runs the placement ladder (quick subset by default: 4:1, 8:4, 32:4; set
CASHMERE_BENCH_FULL=1 for all nine placements) per application and
protocol, prints the speedup tables, and asserts the headline findings:

* Cashmere-2L beats 1LD at 32 processors for every application, with the
  big wins on the communication-bound ones (Gauss, Em3d, Barnes);
* 2L and 2LS perform essentially identically;
* speedups grow with processor count under the two-level protocols.
"""

from conftest import FULL, run_once

from repro.experiments.configs import PLACEMENT_ORDER, QUICK_PLACEMENTS
from repro.experiments.figure7 import run_figure7

PLACEMENTS = PLACEMENT_ORDER if FULL else QUICK_PLACEMENTS


def test_figure7_speedups(benchmark, bench_apps):
    results = run_once(benchmark, run_figure7, apps=bench_apps,
                       placements=PLACEMENTS)
    print()
    print(results.format())

    for app in bench_apps:
        sp = results.speedup[app]
        at32 = {proto: sp[proto]["32:4"] for proto in sp}
        # The two-level protocol is at least as fast as one-level diffing
        # at 32 processors, for every application (Section 3.3.2).
        assert at32["2L"] >= at32["1LD"] * 0.97, (app, at32)
        # 2L and 2LS are within a few percent of each other.
        assert abs(at32["2L"] - at32["2LS"]) / at32["2L"] < 0.10, app
        # Parallel execution beats sequential at 32 processors.
        assert at32["2L"] > 1.0, (app, at32["2L"])
        # Two-level speedup grows from 4 to 32 processors.
        assert at32["2L"] > sp["2L"]["4:1"], app

    # The communication-bound applications gain the most from two-level
    # coherence (paper: 22-46% over 1LD at 32 processors).
    for app in set(bench_apps) & {"Gauss", "Em3d", "Barnes"}:
        gain = results.speedup[app]["2L"]["32:4"] \
            / results.speedup[app]["1LD"]["32:4"]
        assert gain > 1.10, (app, gain)

"""Benchmark E6 — Section 3.3.4 ablation: shootdown vs two-way diffing.

Prints the 2L / 2LS-polling / 2LS-interrupt comparison and asserts the
paper's findings: polled shootdown matches two-way diffing within a few
percent; interrupt-based shootdown is measurably worse for Water (the
false-sharing lock application); shootdown counts concentrate in Water.
"""

from conftest import run_once

from repro.experiments.shootdown import run_shootdown_ablation


def test_shootdown_vs_two_way_diffing(benchmark):
    results = run_once(benchmark, run_shootdown_ablation,
                       apps=("Water", "SOR", "Em3d"))
    print()
    print(results.format())

    for app, times in results.exec_time_s.items():
        # Polled shootdown ~ two-way diffing (Section 3.3.4).
        assert abs(times["2LS-poll"] - times["2L"]) / times["2L"] < 0.08, app
        # Interrupts never beat polling for shootdown delivery.
        assert times["2LS-intr"] >= times["2LS-poll"] * 0.99, app

    # Shootdowns concentrate in the false-sharing lock application.
    assert results.shootdowns["Water"]["2LS-poll"] > 0
    assert results.shootdowns["Water"]["2LS-poll"] >= \
        results.shootdowns["SOR"]["2LS-poll"]

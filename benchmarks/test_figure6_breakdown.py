"""Benchmark E4 — regenerate Figure 6 (execution-time breakdown).

Prints, for each application, the User / Protocol / Polling / Comm&Wait /
Write-Doubling percentages normalized to the 2L total, and asserts the
structural properties: write-doubling time exists only under 1L, the 2L
bars sum to 100%, and the one-level protocols spend relatively more
non-user time than 2L for the communication-bound applications.
"""

import pytest
from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_figure6_time_breakdown(benchmark, bench_apps):
    results = run_once(benchmark, run_figure6, apps=bench_apps)
    print()
    print(results.format())

    for app in bench_apps:
        per_proto = results.breakdown[app]
        # Normalization: 2L's buckets sum to exactly 100%.
        assert sum(per_proto["2L"].values()) == pytest.approx(100.0)
        # Write doubling is charged only by 1L.
        for proto in ("2L", "2LS", "1LD"):
            assert per_proto[proto]["write_double"] == 0.0
        assert per_proto["1L"]["write_double"] > 0.0
        # Every protocol executes the same user computation; its absolute
        # time is protocol-independent, so the normalized User components
        # agree (polling too, which is proportional to yields).
        users = [per_proto[p]["user"] for p in per_proto]
        assert max(users) - min(users) < 12.0, app

    # The communication-bound applications lose the most to the one-level
    # protocols: their normalized totals exceed 2L's appreciably.
    for app in set(bench_apps) & {"Em3d", "Gauss", "Barnes"}:
        total_1ld = sum(results.breakdown[app]["1LD"].values())
        assert total_1ld > 110.0, (app, total_1ld)

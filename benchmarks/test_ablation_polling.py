"""Benchmark E10 — §2.3: polling beats interrupt request delivery.

The paper found polling superior for explicit-request delivery in almost
every case, even after kernel changes cut interrupt latency by an order
of magnitude. This bench reproduces the comparison for communication-
bound applications under 2L, including the unmodified-kernel latencies.
"""

from conftest import run_once

from repro.experiments.polling import run_polling_ablation


def test_polling_beats_interrupts(benchmark):
    results = run_once(benchmark, run_polling_ablation,
                       apps=("Em3d", "Barnes"))
    print()
    print(results.format())

    for app, times in results.exec_time_s.items():
        # Polling wins (the paper's finding for all apps but TSP).
        assert times["interrupts"] > times["polling"], app
        # Unmodified-kernel interrupts (980 us) are worse still.
        assert times["slow-intr"] > times["interrupts"], app

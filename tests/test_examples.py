"""Smoke test: every example script runs end to end in quick mode.

The examples are the package's user-facing documentation; they are
loaded by path (they are scripts, not a package) and driven through
``main(quick=True)``, which each one exposes for exactly this test.
They must also lint clean — they are the exemplars the README points
kernel authors at.
"""

import importlib.util
import os
import sys

import pytest

from repro.lint import run as lint_run

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO, "examples")

SCRIPTS = ["quickstart.py", "custom_application.py",
           "protocol_comparison.py", "clustering_study.py"]


def _load(script):
    spec = importlib.util.spec_from_file_location(
        f"example_{script[:-3]}", os.path.join(EXAMPLES, script))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs_quick(script, monkeypatch, capsys):
    # Examples read sys.argv; give them a bare one so pytest's own
    # arguments don't leak in.
    monkeypatch.setattr(sys, "argv", [script])
    module = _load(script)
    module.main(quick=True)
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_lint_clean():
    result = lint_run([EXAMPLES])
    assert result.diagnostics == [], result.format_text()

"""The event-tracing layer: ring-buffer tracer, determinism guarantee,
Chrome trace export, and the contention profiler.

The central promise is the determinism one: tracing is strictly
observational, so a traced run and an untraced run of the same program
must produce byte-identical statistics — execution time, every counter,
every time bucket, every traffic category — under every protocol.
"""

import json
from dataclasses import replace

import pytest

from repro import MachineConfig, run_app, tracing
from repro.apps import make_app
from repro.runtime.api import tracing_enabled
from repro.trace import (KIND_FAMILY, NO_PROC, ContentionProfile, TraceEvent,
                         Tracer, to_chrome_trace, write_chrome_trace)

SMALL = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)
TRACED = replace(SMALL, tracing=True)


class _FakeNode:
    def __init__(self, nid):
        self.id = nid


class _FakeProc:
    def __init__(self, gid, nid):
        self.global_id = gid
        self.node = _FakeNode(nid)


# ---------------------------------------------------------------------------
# Determinism: tracing must not perturb the simulation.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
@pytest.mark.parametrize("app_name", ["SOR", "Water"])
def test_tracing_does_not_perturb_run(app_name, protocol):
    app = make_app(app_name)
    plain = run_app(app, app.small_params(), SMALL, protocol)
    traced = run_app(make_app(app_name), app.small_params(), TRACED,
                     protocol)

    assert traced.exec_time_us == plain.exec_time_us
    assert traced.stats.aggregate.counters == plain.stats.aggregate.counters
    assert traced.stats.aggregate.buckets == plain.stats.aggregate.buckets
    assert traced.stats.mc_traffic_bytes == plain.stats.mc_traffic_bytes
    for t_ps, p_ps in zip(traced.stats.per_proc, plain.stats.per_proc):
        assert t_ps.counters == p_ps.counters
        assert t_ps.buckets == p_ps.buckets

    assert plain.trace is None
    assert traced.trace is not None and len(traced.trace) > 0


# ---------------------------------------------------------------------------
# Tracer mechanics.
# ---------------------------------------------------------------------------

class TestTracer:
    def test_span_records_proc_and_node(self):
        tr = Tracer()
        tr.span("page_fetch", _FakeProc(3, 1), 10.0, 5.0, obj=7, bytes=512)
        (ev,) = tr.events
        assert (ev.kind, ev.proc, ev.node) == ("page_fetch", 3, 1)
        assert ev.t0 == 10.0 and ev.dur == 5.0 and ev.t1 == 15.0
        assert ev.obj == 7 and ev.bytes == 512
        assert ev.family == "transfer"

    def test_none_proc_maps_to_no_proc(self):
        tr = Tracer()
        tr.instant("mc_word", None, 1.0, obj="lock")
        (ev,) = tr.events
        assert ev.proc == NO_PROC and ev.node == NO_PROC
        assert ev.dur == 0.0

    def test_ring_buffer_drops_oldest(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.instant("user", _FakeProc(0, 0), float(i))
        assert len(tr) == 4
        assert tr.emitted == 10
        assert tr.dropped == 6
        assert [ev.t0 for ev in tr] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_by_kind_and_counts(self):
        tr = Tracer()
        p = _FakeProc(0, 0)
        tr.span("lock_hold", p, 0.0, 2.0, obj="lock 1")
        tr.span("lock_wait", p, 0.0, 1.0, obj="lock 1")
        tr.span("lock_hold", p, 5.0, 1.0, obj="lock 1")
        assert len(tr.by_kind("lock_hold")) == 2
        assert len(tr.by_kind("lock_hold", "lock_wait")) == 3
        assert tr.kind_counts() == {"lock_hold": 2, "lock_wait": 1}

    def test_finalize_accumulates_meta(self):
        tr = Tracer()
        tr.finalize(app="SOR", protocol="2L")
        tr.finalize(exec_time_us=42.0)
        assert tr.meta == {"app": "SOR", "protocol": "2L",
                           "exec_time_us": 42.0, "trace_dropped": 0}

    def test_event_json_is_serializable(self):
        ev = TraceEvent("diff_out", 1, 0, 3.5, 0.0, 9, {"bytes": 64})
        doc = json.dumps(ev.to_json())
        assert json.loads(doc)["payload"]["bytes"] == 64

    def test_kind_family_covers_bucket_names(self):
        for bucket in ("user", "protocol", "polling", "comm_wait",
                       "write_double"):
            assert KIND_FAMILY[bucket] == "bucket"


# ---------------------------------------------------------------------------
# Wiring: config flag, context manager, RunResult.trace.
# ---------------------------------------------------------------------------

class TestWiring:
    def test_tracing_context_manager(self):
        plain = MachineConfig()
        assert not tracing_enabled(plain)
        with tracing():
            assert tracing_enabled(plain)
            with tracing():           # re-entrant
                assert tracing_enabled(plain)
            assert tracing_enabled(plain)
        assert not tracing_enabled(plain)

    def test_config_flag(self):
        assert tracing_enabled(MachineConfig(tracing=True))

    def test_context_manager_attaches_tracer(self):
        app = make_app("SOR")
        with tracing():
            result = run_app(app, app.small_params(), SMALL, "2L")
        assert result.trace is not None
        assert result.trace.meta["app"] == "SOR"
        assert result.trace.meta["protocol"] == "2L"
        assert result.trace.meta["exec_time_us"] == result.exec_time_us


# ---------------------------------------------------------------------------
# End-to-end consumers, sharing one traced run.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def traced_sor():
    app = make_app("SOR")
    return run_app(app, app.small_params(), TRACED, "2L")


class TestTraceContents:
    def test_protocol_events_present(self, traced_sor):
        counts = traced_sor.trace.kind_counts()
        assert counts.get("read_fault", 0) > 0
        assert counts.get("page_fetch", 0) > 0
        assert counts.get("page_flush", 0) > 0
        assert counts.get("barrier", 0) > 0
        assert counts.get("mc_transfer", 0) > 0
        assert counts.get("user", 0) > 0

    def test_fetch_events_carry_bytes(self, traced_sor):
        fetches = traced_sor.trace.by_kind("page_fetch")
        assert fetches and all(ev.bytes > 0 for ev in fetches)
        assert all(ev.dur > 0 for ev in fetches)

    def test_events_within_run_window(self, traced_sor):
        end = traced_sor.exec_time_us
        for ev in traced_sor.trace:
            assert 0.0 <= ev.t0 <= end + 1e-9
            assert ev.dur >= 0.0


class TestChromeExport:
    def test_document_structure(self, traced_sor):
        doc = to_chrome_trace(traced_sor.trace)
        json.dumps(doc)  # must be serializable as-is
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["app"] == "SOR"
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert {"X", "i", "M"} <= phases

    def test_one_track_per_processor(self, traced_sor):
        doc = to_chrome_trace(traced_sor.trace)
        tracks = {(ev["pid"], ev["tid"]) for ev in doc["traceEvents"]
                  if ev["ph"] == "X"}
        cfg = SMALL
        for proc in range(cfg.nodes * cfg.procs_per_node):
            assert (proc // cfg.procs_per_node, proc) in tracks

    def test_track_names(self, traced_sor):
        doc = to_chrome_trace(traced_sor.trace)
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert "cpu 0" in names and "wire" in names

    def test_write_chrome_trace_round_trip(self, traced_sor, tmp_path):
        out = tmp_path / "trace.json"
        n = write_chrome_trace(traced_sor.trace, str(out))
        doc = json.loads(out.read_text())
        assert n == len(doc["traceEvents"])
        assert n > len(traced_sor.trace)  # events + metadata records
        durations = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert durations and instants


class TestContentionProfile:
    def test_tables_render(self, traced_sor):
        report = ContentionProfile(traced_sor.trace).format()
        assert "Hot pages" in report
        assert "Barrier episodes" in report
        assert "Memory Channel traffic" in report

    def test_hot_pages_ranked_by_service_time(self, traced_sor):
        prof = ContentionProfile(traced_sor.trace)
        rows = prof.hot_pages()
        assert rows
        times = [ps.service_us for _, ps in rows]
        assert times == sorted(times, reverse=True)
        assert any(ps.faults > 0 for _, ps in rows)

    def test_barrier_episodes_have_spread(self, traced_sor):
        prof = ContentionProfile(traced_sor.trace)
        episodes = prof.barrier_table()
        assert episodes
        for _, ep in episodes:
            assert ep.spread_us >= 0.0
            assert len(ep.arrivals) <= SMALL.nodes * SMALL.procs_per_node

    def test_json_export(self, traced_sor):
        doc = ContentionProfile(traced_sor.trace).to_json()
        text = json.dumps(doc)
        back = json.loads(text)
        assert back["meta"]["app"] == "SOR"
        assert back["hot_pages"]
        assert back["dropped_events"] == 0

"""Property-based coherence testing with randomly generated data-race-free
programs.

Hypothesis generates small barrier-synchronized programs: each round,
every processor writes a disjoint slice of shared words (ownership is
re-drawn every round) and reads arbitrary words written in previous
rounds. Any such program is data-race-free, so under every protocol the
final memory must match a trivial sequential emulation — this hunts for
coherence bugs (lost writes, stale reads, diff/twin corruption) across
the whole protocol stack, including exclusive-mode transitions and
first-touch relocation.

The checked variant additionally draws the cluster shape (including
multi-node 4x2 and degenerate 2x1 / 1x4 layouts) and the protocol's
``lock_free`` flag, runs under the :mod:`repro.check` race detector +
coherence oracle, and asserts the detector reports zero races — the
programs are DRF by construction, so any report is a detector bug, and
any oracle exception is a protocol bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import attach_checker
from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier

pytestmark = pytest.mark.heavy  # long hypothesis suite

N_PROCS = 4
N_WORDS = 4 * 64  # 4 pages of 64 words

#: (nodes, procs_per_node) shapes for the checked variant, covering
#: multi-node, single-proc-per-node, and single-node-SMP layouts.
SHAPES = [(2, 2), (4, 2), (2, 1), (1, 4)]


@st.composite
def programs(draw):
    rounds = draw(st.integers(min_value=1, max_value=4))
    plan = []
    for r in range(rounds):
        # Disjoint write ownership for this round: a permutation split.
        perm = draw(st.permutations(range(16)))
        # Each of 16 word-groups (16 words each) is owned by one proc.
        owners = [perm[g] % N_PROCS for g in range(16)]
        writes = []
        for g, owner in enumerate(owners):
            count = draw(st.integers(min_value=0, max_value=4))
            offs = draw(st.lists(st.integers(0, 15), min_size=count,
                                 max_size=count, unique=True))
            writes.append((owner, [g * 16 + o for o in offs]))
        reads = draw(st.lists(
            st.tuples(st.integers(0, N_PROCS - 1),
                      st.integers(0, N_WORDS - 1)),
            max_size=8))
        plan.append((writes, reads))
    return plan


def run_plan(plan, protocol, nodes=2, ppn=2, first_touch=True):
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * 4, superpage_pages=2)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    barrier = Barrier(cluster, proto)
    if first_touch:
        proto.end_initialization()

    def value(rnd, word):
        return float(rnd * 1000 + word + 1)

    def worker(proc):
        rank = proc.global_id

        def gen():
            for rnd, (writes, reads) in enumerate(plan):
                for owner, words in writes:
                    if owner != rank:
                        continue
                    for w in words:
                        proto.store(proc, w // 64, w % 64, value(rnd, w))
                        yield Compute(1.0)
                for who, w in reads:
                    if who == rank:
                        proto.load(proc, w // 64, w % 64)
                        yield Compute(0.5)
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    proto.check_invariants()

    # Authoritative final memory.
    final = np.zeros(N_WORDS)
    for page in range(4):
        entry = proto.directory.entry(page)
        holder = entry.exclusive_holder()
        frame = proto.frames.frame(holder[0], page) if holder \
            else proto.master(page)
        final[page * 64:(page + 1) * 64] = frame
    return final


def emulate(plan):
    mem = np.zeros(N_WORDS)
    for rnd, (writes, _) in enumerate(plan):
        for owner, words in writes:
            for w in words:
                mem[w] = float(rnd * 1000 + w + 1)
    return mem


# --------------------------------------------------------------------------
# Checked variant: shape- and lock_free-polymorphic DRF programs run
# under the race detector and coherence oracle.
# --------------------------------------------------------------------------

@st.composite
def drf_programs(draw):
    """Two-phase rounds: disjoint writes, barrier, arbitrary reads,
    barrier. Reads are separated from every write by a barrier, so the
    program is data-race-free on *any* cluster shape (ownership maps to
    processors via ``perm[g] % nprocs`` at run time)."""
    rounds = draw(st.integers(min_value=1, max_value=3))
    plan = []
    for r in range(rounds):
        perm = draw(st.permutations(range(16)))
        writes = []
        for g in range(16):
            count = draw(st.integers(min_value=0, max_value=3))
            writes.append(draw(st.lists(st.integers(0, 15), min_size=count,
                                        max_size=count, unique=True)))
        reads = draw(st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, N_WORDS - 1)),
            max_size=8))
        plan.append((list(perm), writes, reads))
    return plan


def run_checked_plan(plan, protocol, nodes, ppn, *, lock_free=True):
    """Run a ``drf_programs`` plan under the checker; return
    ``(final_memory, check_context)``."""
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * 4, superpage_pages=2)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster, lock_free=lock_free)
    checker = attach_checker(cluster, proto)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()
    nprocs = cluster.num_procs

    def value(rnd, word):
        return float(rnd * 1000 + word + 1)

    def worker(proc):
        rank = proc.global_id

        def gen():
            for rnd, (perm, writes, reads) in enumerate(plan):
                for g in range(16):
                    if perm[g] % nprocs != rank:
                        continue
                    for o in writes[g]:
                        w = g * 16 + o
                        proto.store(proc, w // 64, w % 64, value(rnd, w))
                        yield Compute(1.0)
                yield from barrier.wait(proc)
                for who, w in reads:
                    if who % nprocs == rank:
                        proto.load(proc, w // 64, w % 64)
                        yield Compute(0.5)
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    checker.finalize()

    final = np.zeros(N_WORDS)
    for page in range(4):
        entry = proto.directory.entry(page)
        holder = entry.exclusive_holder()
        frame = proto.frames.frame(holder[0], page) if holder \
            else proto.master(page)
        final[page * 64:(page + 1) * 64] = frame
    return final, checker


def emulate_drf(plan):
    mem = np.zeros(N_WORDS)
    for rnd, (perm, writes, _) in enumerate(plan):
        for g, offs in enumerate(writes):
            for o in offs:
                w = g * 16 + o
                mem[w] = float(rnd * 1000 + w + 1)
    return mem


@settings(max_examples=25, deadline=None)
@given(programs())
@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
def test_random_drf_program_matches_emulation(protocol, plan):
    final = run_plan(plan, protocol)
    expected = emulate(plan)
    mismatch = np.nonzero(final != expected)[0]
    assert len(mismatch) == 0, (
        f"{protocol}: words {mismatch[:8]} differ: "
        f"got {final[mismatch[:8]]}, want {expected[mismatch[:8]]}")


@settings(max_examples=10, deadline=None)
@given(programs())
def test_random_program_deterministic(plan):
    a = run_plan(plan, "2L")
    b = run_plan(plan, "2L")
    assert (a == b).all()


@settings(max_examples=8, deadline=None)
@given(plan=drf_programs(), shape=st.sampled_from(SHAPES),
       lock_free=st.booleans())
@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
def test_random_checked_drf_program(protocol, plan, shape, lock_free):
    nodes, ppn = shape
    final, checker = run_checked_plan(plan, protocol, nodes, ppn,
                                      lock_free=lock_free)
    # DRF by construction: any report is a detector false positive (and
    # any CoherenceViolation out of run_checked_plan is a protocol bug).
    assert checker.races == [], (
        f"{protocol} {nodes}x{ppn} lock_free={lock_free}: "
        f"{checker.races[0].describe()}")
    expected = emulate_drf(plan)
    mismatch = np.nonzero(final != expected)[0]
    assert len(mismatch) == 0, (
        f"{protocol} {nodes}x{ppn}: words {mismatch[:8]} differ: "
        f"got {final[mismatch[:8]]}, want {expected[mismatch[:8]]}")

"""Property-based coherence testing with randomly generated data-race-free
programs.

Hypothesis generates small barrier-synchronized programs: each round,
every processor writes a disjoint slice of shared words (ownership is
re-drawn every round) and reads arbitrary words written in previous
rounds. Any such program is data-race-free, so under every protocol the
final memory must match a trivial sequential emulation — this hunts for
coherence bugs (lost writes, stale reads, diff/twin corruption) across
the whole protocol stack, including exclusive-mode transitions and
first-touch relocation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier

N_PROCS = 4
N_WORDS = 4 * 64  # 4 pages of 64 words


@st.composite
def programs(draw):
    rounds = draw(st.integers(min_value=1, max_value=4))
    plan = []
    for r in range(rounds):
        # Disjoint write ownership for this round: a permutation split.
        perm = draw(st.permutations(range(16)))
        # Each of 16 word-groups (16 words each) is owned by one proc.
        owners = [perm[g] % N_PROCS for g in range(16)]
        writes = []
        for g, owner in enumerate(owners):
            count = draw(st.integers(min_value=0, max_value=4))
            offs = draw(st.lists(st.integers(0, 15), min_size=count,
                                 max_size=count, unique=True))
            writes.append((owner, [g * 16 + o for o in offs]))
        reads = draw(st.lists(
            st.tuples(st.integers(0, N_PROCS - 1),
                      st.integers(0, N_WORDS - 1)),
            max_size=8))
        plan.append((writes, reads))
    return plan


def run_plan(plan, protocol, nodes=2, ppn=2, first_touch=True):
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * 4, superpage_pages=2)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    barrier = Barrier(cluster, proto)
    if first_touch:
        proto.end_initialization()

    def value(rnd, word):
        return float(rnd * 1000 + word + 1)

    def worker(proc):
        rank = proc.global_id

        def gen():
            for rnd, (writes, reads) in enumerate(plan):
                for owner, words in writes:
                    if owner != rank:
                        continue
                    for w in words:
                        proto.store(proc, w // 64, w % 64, value(rnd, w))
                        yield Compute(1.0)
                for who, w in reads:
                    if who == rank:
                        proto.load(proc, w // 64, w % 64)
                        yield Compute(0.5)
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    proto.check_invariants()

    # Authoritative final memory.
    final = np.zeros(N_WORDS)
    for page in range(4):
        entry = proto.directory.entry(page)
        holder = entry.exclusive_holder()
        frame = proto.frames.frame(holder[0], page) if holder \
            else proto.master(page)
        final[page * 64:(page + 1) * 64] = frame
    return final


def emulate(plan):
    mem = np.zeros(N_WORDS)
    for rnd, (writes, _) in enumerate(plan):
        for owner, words in writes:
            for w in words:
                mem[w] = float(rnd * 1000 + w + 1)
    return mem


@settings(max_examples=25, deadline=None)
@given(programs())
@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
def test_random_drf_program_matches_emulation(protocol, plan):
    final = run_plan(plan, protocol)
    expected = emulate(plan)
    mismatch = np.nonzero(final != expected)[0]
    assert len(mismatch) == 0, (
        f"{protocol}: words {mismatch[:8]} differ: "
        f"got {final[mismatch[:8]]}, want {expected[mismatch[:8]]}")


@settings(max_examples=10, deadline=None)
@given(programs())
def test_random_program_deterministic(plan):
    a = run_plan(plan, "2L")
    b = run_plan(plan, "2L")
    assert (a == b).all()

"""Bad: lock 0 is still held on the not-taken branch at exit."""


def worker(env, params):
    yield from env.acquire(0)
    if env.rank == 0:
        env.release(0)
    yield from env.barrier()

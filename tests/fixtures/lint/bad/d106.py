"""Bad: frozen specs must never be mutated after construction."""

from repro.experiments.sweep import RunSpec


def tweak():
    spec = RunSpec(experiment="t", app="sor", protocol="2L")
    spec.app = "water"
    return spec


def sneak(spec):
    object.__setattr__(spec, "app", "water")

"""Bad: not Python."""


def broken(:
    pass

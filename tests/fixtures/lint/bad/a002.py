"""Bad: the release is not dominated by an acquire."""


def worker(env, params):
    if env.rank == 0:
        yield from env.acquire(0)
    env.release(0)

"""Bad: every worker writes word 0 concurrently."""


def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    env.set(data, 0, 1.0)
    yield from env.barrier()

"""Bad: `counts` is locked by writers but read lock-free."""


def worker(env, params):
    counts = env.arr("counts")
    yield from env.barrier()
    yield from env.acquire(0)
    env.set(counts, 0, env.get(counts, 0) + 1.0)
    env.release(0)
    total = env.get(counts, 0)
    yield from env.barrier()
    return total

"""Bad: process-global RNG and an unseeded generator."""

import random


def jitter():
    rng = random.Random()
    return random.random() + rng.random()

"""Bad: unguarded write in the initialization phase."""


def worker(env, params):
    data = env.arr("data")
    env.set(data, 0, 1.0)
    yield from env.barrier()

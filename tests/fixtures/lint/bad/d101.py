"""Bad: simulated results must not depend on real time."""

import time


def stamp():
    return time.time()

"""Bad: overlapping self-copy through get_block/set_block."""


def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    if env.rank == 0:
        env.set_block(data, 0, env.get_block(data, 8, 16))
    yield from env.barrier()

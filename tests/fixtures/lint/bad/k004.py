"""K004: the interp body indexes through a modulo expression — outside
the affine domain, so the descriptor cannot be verified either way and
the analyzer must say so honestly."""
from repro.lower.regions import READ, RegionKernel


class Wrapped(RegionKernel):
    def __init__(self, env, a, n):
        super().__init__(env)
        self._a = a
        self._n = n
        self.n = 1
        self.cost = env.compute(1.0, 1.0)
        if not self.lowerable or self.n == 0:
            return
        self.touches = [[(READ, p) for p in self.span_pages(a, 0, n)]]

    def interp(self, env):
        env.get(self._a, self._n % 3)
        yield self.cost

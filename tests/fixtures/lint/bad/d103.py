"""Bad: set iteration order is not canonical."""


def order():
    out = []
    for item in {3, 1, 2}:
        out.append(item)
    return out

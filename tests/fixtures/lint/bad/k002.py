"""K002: the descriptor omits the source-span read the interp body
provably performs — the dangerous direction, since the executor would
skip the read fault the interpreter takes."""
from repro.lower.regions import WRITE, RegionKernel


class Underapprox(RegionKernel):
    def __init__(self, env, a, b, n):
        super().__init__(env)
        self._a = a
        self._b = b
        self._n = n
        self.n = 1
        self.cost = env.compute(1.0, 1.0)
        if not self.lowerable or self.n == 0:
            return
        self.touches = [[(WRITE, p) for p in self.span_pages(b, 0, n)]]

    def interp(self, env):
        vals = env.get_block(self._a, 0, self._n)
        env.set_block(self._b, 0, vals + 1.0)
        yield self.cost

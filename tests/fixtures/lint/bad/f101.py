"""F101: protocol handlers acting on transient (Pending) directory
state without the bounded timeout path."""


def fetch_page(proc, entry):
    # Raw read of the transient deadline outside _await_not_pending.
    if entry.pending_until > proc.clock:
        return None
    return entry


def spin_until_settled(proc, entry):
    # Unbounded poll: the bounded wait is _await_not_pending().
    while entry.is_pending(proc.clock):
        proc.charge(1.0, "comm_wait")

"""K003: a sync-free, step-shaped worker loop with affine accesses and
no RegionKernel anywhere in the module — provably lowerable, pointing
at the kernel-lowering backlog."""


def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    lo = env.rank * 8
    for i in range(8):
        vals = env.get_block(data, lo + i * 4, lo + i * 4 + 4)
        env.set_block(data, lo + i * 4, vals + 1.0)
        yield env.compute(1.0, 1.0)
    yield from env.barrier()

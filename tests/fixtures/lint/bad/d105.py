"""Bad: a hidden input the result-cache key cannot see."""

import os


def flag():
    return os.environ.get("CASHMERE_SECRET") or os.getenv("OTHER")

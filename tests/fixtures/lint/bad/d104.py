"""Bad: id() keys differ between runs."""


def register(registry, objs):
    for obj in objs:
        registry[id(obj)] = obj
    return sorted(objs, key=id)

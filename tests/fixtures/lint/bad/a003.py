"""Bad: only rank 0 reaches the barrier."""


def worker(env, params):
    if env.rank == 0:
        yield from env.barrier()

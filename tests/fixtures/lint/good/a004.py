"""Good: every access to the locked array holds the lock."""


def worker(env, params):
    counts = env.arr("counts")
    yield from env.barrier()
    yield from env.acquire(0)
    env.set(counts, 0, env.get(counts, 0) + 1.0)
    env.release(0)
    yield from env.barrier()

"""Good: acquire and release are balanced on every path."""


def worker(env, params):
    yield from env.acquire(0)
    env.release(0)
    yield from env.barrier()

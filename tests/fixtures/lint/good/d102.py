"""Good: explicitly seeded generators are deterministic."""

import random


def jitter(seed):
    rng = random.Random(seed)
    return rng.random()

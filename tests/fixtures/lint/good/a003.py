"""Good: every worker reaches every barrier."""


def worker(env, params):
    for _ in range(4):
        yield from env.barrier()

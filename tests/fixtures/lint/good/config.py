"""Good: config.py is a sanctioned module for environment reads."""

import os


def flag():
    return bool(os.environ.get("CASHMERE_SECRET"))

"""Good: bind the block before writing it back."""


def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    cur = env.get_block(data, 0, 8)
    env.set_block(data, env.rank * 8, cur)
    yield from env.barrier()

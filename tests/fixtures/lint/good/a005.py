"""Good: the write index is partitioned by rank."""


def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    env.set(data, env.rank, 1.0)
    yield from env.barrier()

"""K001 good twin: the descriptor mirrors the interp body's
first-touch order exactly — read the source span, write the
destination span."""
from repro.lower.regions import READ, WRITE, RegionKernel


class GoodOrder(RegionKernel):
    def __init__(self, env, a, b, n):
        super().__init__(env)
        self._a = a
        self._b = b
        self._n = n
        self.n = 1
        self.cost = env.compute(1.0, 1.0)
        if not self.lowerable or self.n == 0:
            return
        step = [(READ, p) for p in self.span_pages(a, 0, n)]
        step += [(WRITE, p) for p in self.span_pages(b, 0, n)]
        self.touches = [step]

    def interp(self, env):
        vals = env.get_block(self._a, 0, self._n)
        env.set_block(self._b, 0, vals + 1.0)
        yield self.cost

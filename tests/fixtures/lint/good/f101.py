"""F101 clean: transient directory state reached only through the
sanctioned paths — the bounded wait, or a conservative guard."""


class Handler:
    def _await_not_pending(self, proc, entry):
        # The one sanctioned reader of raw pending_until: it waits the
        # bounded window out and returns against a settled entry.
        if entry.pending_until > proc.clock:
            proc.charge(entry.pending_until - proc.clock, "comm_wait")

    def fetch_page(self, proc, entry):
        self._await_not_pending(proc, entry)
        if entry.is_pending(proc.clock):  # a guard, not a wait
            return None
        return entry

"""Good: derive a new spec instead of mutating."""

import dataclasses

from repro.experiments.sweep import RunSpec


def tweak():
    spec = RunSpec(experiment="t", app="sor", protocol="2L")
    return dataclasses.replace(spec, app="water")

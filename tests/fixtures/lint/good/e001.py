"""Good: plain valid Python."""


def fine():
    return 42

"""Good: the acquire dominates the release."""


def worker(env, params):
    yield from env.acquire(0)
    if env.rank == 0:
        env.release(0)
    else:
        env.release(0)

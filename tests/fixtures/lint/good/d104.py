"""Good: keyed by a stable name, not by identity."""


def register(registry, objs):
    for obj in objs:
        registry[obj.name] = obj
    return sorted(objs, key=lambda o: o.name)

"""Good: sorting fixes the iteration order."""


def order():
    out = []
    for item in sorted({3, 1, 2}):
        out.append(item)
    return out

"""K003 good twin: the same loop, lowered — the module defines a
verified RegionKernel and the worker dispatches through run_region, so
the backlog pointer stays quiet."""
from repro.lower.regions import READ, WRITE, RegionKernel


class Stride(RegionKernel):
    def __init__(self, env, data, lo, steps):
        super().__init__(env)
        self._data = data
        self._lo = lo
        self._steps = steps
        self.n = len(steps)
        self.cost = env.compute(1.0, 1.0)
        if not self.lowerable or self.n == 0:
            return
        touches = []
        for i in steps:
            step = [(READ, p) for p in self.span_pages(
                data, lo + i * 4, lo + i * 4 + 4)]
            step += [(WRITE, p) for p in self.span_pages(
                data, lo + i * 4, lo + i * 4 + 4)]
            touches.append(step)
        self.touches = touches

    def interp(self, env):
        data, lo = self._data, self._lo
        for i in self._steps:
            vals = env.get_block(data, lo + i * 4, lo + i * 4 + 4)
            env.set_block(data, lo + i * 4, vals + 1.0)
            yield self.cost


def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    lo = env.rank * 8
    kernel = Stride(env, data, lo, range(8))
    yield from env.run_region(kernel)
    yield from env.barrier()

"""Good: progress timing goes through the sanctioned helper."""

from repro.experiments.sweep import wall_clock


def stamp():
    return wall_clock()

"""K004 good twin: the same single-word probe with an affine index —
fully inside the domain, verified without complaint."""
from repro.lower.regions import READ, RegionKernel


class Probed(RegionKernel):
    def __init__(self, env, a, n):
        super().__init__(env)
        self._a = a
        self._n = n
        self.n = 1
        self.cost = env.compute(1.0, 1.0)
        if not self.lowerable or self.n == 0:
            return
        self.touches = [[(READ, p) for p in self.span_pages(
            a, n - 1, n)]]

    def interp(self, env):
        env.get(self._a, self._n - 1)
        yield self.cost

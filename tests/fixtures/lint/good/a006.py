"""Good: initialization writes are elected to rank 0."""


def worker(env, params):
    data = env.arr("data")
    if env.rank == 0:
        env.set(data, 0, 1.0)
    env.end_init()
    yield from env.barrier()

"""End-to-end contracts of the fault-injection layer (DESIGN.md §12).

Four properties, per ISSUE 6:

* **observer parity** — a zero-rate :class:`FaultConfig` is
  byte-identical to ``faults=None``: same timings, same statistics,
  same result arrays (the injection sites are inert unless a rate is
  non-zero);
* **recovery** — under aggressive injection (reordering, delayed and
  dropped notices, NAKs, a slowed node) every protocol still completes
  SOR and Water with results equal to the sequential run: the
  NAK-retry, pending-wait, and notice-resync paths genuinely recover;
* **replay** — the same seed reproduces the exact fault schedule, so
  any discovered failure is a one-line regression test;
* **crash-stop** — a crashed node surfaces as a deterministic
  :class:`NodeCrashedError`, identical across reruns.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import make_app
from repro.config import FaultConfig, MachineConfig
from repro.errors import NodeCrashedError
from repro.runtime.program import run_and_verify, run_app

BASE = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)

PROTOCOLS = ("2L", "2LS", "1LD", "1L")

#: Every fault class on at high rates: the recovery paths must all fire
#: (the assertions on the counters below prove they do), and the run
#: must still produce correct results.
STRESS = FaultConfig(seed=5, reorder_rate=0.3,
                     notice_delay_rate=0.4, notice_delay_us=400.0,
                     notice_drop_rate=0.3, nak_rate=0.3,
                     slow_nodes=(0,), slowdown=2.0)


def _run(app_name: str, protocol: str, faults: FaultConfig | None,
         config: MachineConfig = BASE):
    app = make_app(app_name)
    cfg = replace(config, faults=faults)
    return app, run_app(app, app.small_params(), cfg, protocol)


# --- observer parity ----------------------------------------------------------


def test_zero_rate_config_is_byte_identical_to_no_faults():
    """FaultConfig() draws no randomness and perturbs nothing."""
    app, base = _run("SOR", "2L", None)
    _, injected = _run("SOR", "2L", FaultConfig())
    assert injected.exec_time_us == base.exec_time_us
    assert injected.stats.table3_row() == base.stats.table3_row()
    for name in app.result_arrays(app.small_params()):
        assert np.array_equal(injected.array(name), base.array(name))


def test_zero_rate_injects_nothing():
    _, result = _run("SOR", "2L", FaultConfig())
    for counter in ("request_naks", "pending_waits",
                    "notice_stalls", "notice_resyncs"):
        assert result.stats.counter(counter) == 0


# --- recovery under aggressive injection --------------------------------------


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_sor_recovers_under_stress(protocol):
    app = make_app("SOR")
    cfg = replace(BASE, faults=STRESS)
    cmp = run_and_verify(app, app.small_params(), cfg, protocol)
    assert cmp.verified, (
        f"{protocol} under stress injection produced wrong results "
        f"(max error {cmp.max_error})")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_water_recovers_under_stress(protocol):
    app = make_app("Water")
    cfg = replace(BASE, faults=STRESS)
    cmp = run_and_verify(app, app.small_params(), cfg, protocol)
    assert cmp.verified, (
        f"{protocol} under stress injection produced wrong results "
        f"(max error {cmp.max_error})")


def test_recovery_paths_actually_fire():
    """The stress run is a real test only if the recovery machinery
    runs: NAK retries, pending-state waits, notice stalls, and
    notice-gap resyncs. 1LD exercises every path on this small config
    (its per-processor directory traffic reaches the exclusive-break
    and pending states far more often than 2L's per-node merging)."""
    _, result = _run("SOR", "1LD", STRESS)
    for counter in ("request_naks", "request_retries", "pending_waits",
                    "notice_stalls", "notice_resyncs"):
        assert result.stats.counter(counter) > 0, counter
    # The two-level protocol at least exercises the NAK-retry loop.
    _, result = _run("SOR", "2L", STRESS)
    assert result.stats.counter("request_naks") > 0
    assert result.stats.counter("request_retries") > 0


def test_faults_slow_the_run_down():
    """Injection is not free: the injected stalls show up in the
    simulated execution time (sanity check that injection happened)."""
    _, base = _run("SOR", "2L", None)
    _, injected = _run("SOR", "2L", STRESS)
    assert injected.exec_time_us > base.exec_time_us


# --- seed replay --------------------------------------------------------------


def test_same_seed_reproduces_the_exact_run():
    _, first = _run("SOR", "2L", STRESS)
    _, second = _run("SOR", "2L", STRESS)
    assert first.exec_time_us == second.exec_time_us
    assert first.stats.table3_row() == second.stats.table3_row()


def test_different_seed_changes_the_fault_schedule():
    _, first = _run("SOR", "2L", STRESS)
    _, second = _run("SOR", "2L", replace(STRESS, seed=6))
    # Identical timing under a different fault schedule would mean the
    # seed is not actually feeding the injector.
    assert first.exec_time_us != second.exec_time_us


# --- crash-stop ---------------------------------------------------------------

CRASH = FaultConfig(seed=1, crash_node=1, crash_at_us=500.0, max_retries=4)


def _crash_message() -> str:
    app = make_app("SOR")
    cfg = replace(BASE, faults=CRASH)
    with pytest.raises(NodeCrashedError) as exc:
        run_app(app, app.small_params(), cfg, "2L")
    return str(exc.value)


def test_crash_stop_raises_and_is_deterministic():
    first = _crash_message()
    second = _crash_message()
    assert "crashed" in first
    assert first == second

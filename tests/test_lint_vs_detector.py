"""Cross-validation: the static lockset pass vs the dynamic detector.

A corpus of tiny kernels with *known* data races is run both ways:

* dynamically, under the PR 1 vector-clock race detector
  (``MachineConfig(checking=True)``) — every corpus program's race must
  actually be observed at runtime, so the corpus stays honest;
* statically, through :func:`repro.lint.lint_source` — every
  dynamically-observed race must map to a static finding with the
  expected rule ID.

A DRF control program closes the loop: clean under both. Finally,
Water — whose barrier-fenced owner-slice accesses used to need two
``# cashmere: ignore[A004]`` suppressions before the integration phase
moved into a region kernel — is shown to lint clean with *no*
suppressions and to run race-free under the detector.
"""

import os

import pytest

from repro.apps import make_app
from repro.apps.base import Application
from repro.config import MachineConfig
from repro.errors import DataRaceError
from repro.lint import lint_source
from repro.runtime.program import ParallelRuntime

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: (name, expected static rule, shared arrays, kernel source).
RACY_CORPUS = [
    ("ww_unguarded", "A005", [("data", 8)], '''
def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    env.set(data, 0, float(env.rank))
    yield from env.barrier()
'''),
    ("mixed_lockset", "A004", [("acc", 8)], '''
def worker(env, params):
    acc = env.arr("acc")
    yield from env.barrier()
    if env.rank == 0:
        env.set(acc, 0, 1.0)
    else:
        yield from env.acquire(0)
        env.set(acc, 0, env.get(acc, 0) + 1.0)
        env.release(0)
    yield from env.barrier()
'''),
    ("partial_protect", "A004", [("best", 8)], '''
def worker(env, params):
    best = env.arr("best")
    yield from env.barrier()
    yield from env.acquire(1)
    env.set(best, 0, env.get(best, 0) + float(env.rank))
    env.release(1)
    peek = env.get(best, 0)
    yield from env.barrier()
    return peek
'''),
    ("init_race", "A006", [("data", 8)], '''
def worker(env, params):
    data = env.arr("data")
    env.set(data, 0, 1.0)
    yield from env.barrier()
    v = env.get(data, env.rank)
    yield from env.barrier()
    return v
'''),
]

DRF_CONTROL = ("drf_control", None, [("data", 8)], '''
def worker(env, params):
    data = env.arr("data")
    if env.rank == 0:
        for i in range(env.nprocs):
            env.set(data, i, 0.0)
    yield from env.barrier()
    env.set(data, env.rank, float(env.rank) + 1.0)
    yield from env.barrier()
    total = 0.0
    for i in range(env.nprocs):
        total = total + env.get(data, i)
    yield from env.barrier()
    env.set(data, env.rank, total)
    yield from env.barrier()
''')


class CorpusApp(Application):
    """Wrap one corpus kernel in the Application interface."""

    name = "Corpus"

    def __init__(self, source, arrays):
        namespace = {}
        exec(compile(source, "<corpus>", "exec"), namespace)
        self._fn = namespace["worker"]
        self._arrays = arrays

    def default_params(self):
        return {}

    def declare(self, segment, params):
        for name, words in self._arrays:
            segment.alloc(name, words)

    def worker(self, env, params):
        return self._fn(env, params)

    def result_arrays(self, params):
        return [name for name, _ in self._arrays]


def _dynamic_races(source, arrays):
    """Run a corpus kernel under the detector; return the race reports."""
    config = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                           shared_bytes=2048, superpage_pages=2,
                           checking=True)
    runtime = ParallelRuntime(CorpusApp(source, arrays), {}, config,
                              protocol="2L")
    try:
        runtime.run()
    except DataRaceError:
        pass
    return runtime.checker.races


def _static_rules(source):
    active, _ = lint_source(source, "corpus.py")
    return {d.rule for d in active}


@pytest.mark.parametrize("name,rule,arrays,source",
                         RACY_CORPUS, ids=[c[0] for c in RACY_CORPUS])
def test_dynamic_race_is_statically_flagged(name, rule, arrays, source):
    races = _dynamic_races(source, arrays)
    assert races, f"{name}: corpus program did not race dynamically"
    fired = _static_rules(source)
    assert rule in fired, \
        f"{name}: dynamic race not caught statically (static={fired})"


def test_drf_control_clean_both_ways():
    name, _, arrays, source = DRF_CONTROL
    races = _dynamic_races(source, arrays)
    assert not races, f"{name}: control program raced: {races}"
    assert _static_rules(source) == set(), \
        "static analyzer flagged the DRF control program"


def test_water_lints_clean_and_runs_race_free():
    """Water used to carry two ``ignore[A004]`` comments for a
    feasible-path over-approximation (barrier-fenced owner-slice
    accesses inside the locked phase's lockset). Moving the integration
    phase into ``_WaterIntegrate.interp`` removed the need: the file now
    lints clean with no suppressions at all. Keep the dynamic half of
    the old proof — Water under the detector reports zero races — so
    the lint silence is still cross-checked against reality."""
    with open(os.path.join(REPO, "src", "repro", "apps",
                           "water.py")) as fh:
        source = fh.read()
    active, suppressed = lint_source(source, "water.py")
    assert active == []
    assert suppressed == []

    app = make_app("Water")
    config = MachineConfig(nodes=2, procs_per_node=2, checking=True)
    runtime = ParallelRuntime(app, app.small_params(), config,
                              protocol="2L")
    runtime.run()  # DataRaceError here would invalidate the suppression
    assert runtime.checker.races == []

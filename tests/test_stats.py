"""Unit tests for statistics collection and aggregation."""

import pytest

from repro.errors import UnknownCounterError
from repro.sim.process import TIME_BUCKETS
from repro.stats.counters import COUNTER_NAMES, ProcStats, RunStats
from repro.stats.report import _fmt, format_table, kilo, pct_change


class TestProcStats:
    def test_charge_accumulates(self):
        ps = ProcStats()
        ps.charge(10.0, "user")
        ps.charge(5.0, "protocol")
        ps.charge(2.5, "user")
        assert ps.buckets["user"] == 12.5
        assert ps.total_time == 17.5

    def test_bump(self):
        ps = ProcStats()
        ps.bump("read_faults")
        ps.bump("read_faults", 3)
        assert ps.counters["read_faults"] == 4

    def test_merge(self):
        a, b = ProcStats(), ProcStats()
        a.charge(1.0, "user")
        a.bump("barriers")
        b.charge(2.0, "user")
        a.merged_into(b)
        assert b.buckets["user"] == 3.0
        assert b.counters["barriers"] == 1

    def test_counter_names_documented(self):
        assert "write_notices" in COUNTER_NAMES
        assert "shootdowns" in COUNTER_NAMES
        assert "check_events" in COUNTER_NAMES

    def test_counter_names_closed(self):
        """The canonical name set is strict: a typo'd counter raises
        instead of accumulating into a name nobody will ever read."""
        ps = ProcStats()
        with pytest.raises(UnknownCounterError, match="read_fautls"):
            ps.bump("read_fautls")
        assert not ps.counters  # nothing was recorded

    def test_unknown_counter_suggests_nearest_name(self):
        ps = ProcStats()
        with pytest.raises(UnknownCounterError,
                           match="did you mean 'read_faults'"):
            ps.bump("read_fautls")

    def test_unknown_counter_with_no_close_match(self):
        ps = ProcStats()
        with pytest.raises(UnknownCounterError) as exc:
            ps.bump("zzzzzzzz")
        assert "did you mean" not in str(exc.value)


class TestRunStats:
    def make(self):
        procs = []
        for i in range(4):
            ps = ProcStats()
            ps.charge(10.0 * (i + 1), "user")
            ps.charge(5.0, "comm_wait")
            ps.bump("page_transfers", i)
            procs.append(ps)
        return RunStats.collect(procs, exec_time_us=2_000_000.0,
                                mc_traffic={"page": 1_000_000,
                                            "diff": 500_000})

    def test_aggregation(self):
        run = self.make()
        assert run.aggregate.buckets["user"] == 100.0
        assert run.counter("page_transfers") == 6
        assert run.exec_time_s == pytest.approx(2.0)
        assert run.data_mbytes == pytest.approx(1.5)

    def test_counter_rejects_unknown_name(self):
        run = self.make()
        with pytest.raises(UnknownCounterError):
            run.counter("page_transferz")

    def test_counter_known_but_untouched_is_zero(self):
        run = self.make()
        assert run.counter("shootdowns") == 0

    def test_breakdown_fractions_normalized(self):
        run = self.make()
        fracs = run.breakdown_fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["user"] == pytest.approx(100.0 / 120.0)

    def test_breakdown_empty_run(self):
        run = RunStats()
        assert sum(run.breakdown_fractions().values()) == 0.0

    def test_breakdown_zero_time_covers_every_bucket(self):
        """The zero-time path must still return one entry per bucket so
        callers can index without KeyError."""
        fracs = RunStats().breakdown_fractions()
        assert set(fracs) == set(TIME_BUCKETS)
        assert all(v == 0.0 for v in fracs.values())

    def test_table3_row_fields(self):
        row = self.make().table3_row()
        assert row["page_transfers"] == 6
        assert row["exec_time_s"] == pytest.approx(2.0)
        assert row["data_mbytes"] == pytest.approx(1.5)


class TestReportFormatting:
    def test_fmt_none_is_dash(self):
        assert _fmt(None) == "-"

    def test_fmt_strings_pass_through(self):
        assert _fmt("2LS") == "2LS"

    def test_fmt_bools_before_ints(self):
        """bool is a subclass of int; it must render yes/no, not 1/0."""
        assert _fmt(True) == "yes"
        assert _fmt(False) == "no"

    def test_fmt_small_ints_plain(self):
        assert _fmt(0) == "0"
        assert _fmt(99999) == "99999"

    def test_fmt_large_ints_space_grouped(self):
        assert _fmt(100000) == "100 000"
        assert _fmt(1234567) == "1 234 567"

    def test_fmt_negative_ints(self):
        assert _fmt(-42) == "-42"
        assert _fmt(-1234567) == "-1 234 567"

    def test_fmt_float_magnitudes(self):
        assert _fmt(0.0) == "0"
        assert _fmt(3.14159) == "3.14"
        assert _fmt(12.345) == "12.3"
        assert _fmt(1234.5) == "1 234"

    def test_fmt_negative_floats(self):
        assert _fmt(-3.14159) == "-3.14"
        assert _fmt(-12.345) == "-12.3"
        assert _fmt(-1234.5) == "-1 234"

    def test_format_table_renders_all_rows(self):
        out = format_table("T", ["a", "b"],
                           [("row1", [1, None]), ("row2", [True, 2.5])])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "row1" in out and "row2" in out
        assert "-" in lines[4] and "yes" in lines[5]

    def test_kilo_and_pct_change(self):
        assert kilo(2500) == pytest.approx(2.5)
        assert pct_change(50.0, 100.0) == pytest.approx(50.0)
        assert pct_change(150.0, 100.0) == pytest.approx(-50.0)
        assert pct_change(1.0, 0.0) == 0.0

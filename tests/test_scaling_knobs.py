"""The big-cluster scaling knobs: barrier topology and home placement.

Both knobs are timing/placement policies layered under the coherence
protocol, so the contract mirrors the fast path's: the **data** a run
produces must be byte-identical across every knob setting — only
simulated time, traffic, and the knob's own counters may move. The
parity tests here enforce that for SOR and Water under all four
protocols; the unit tests pin the combining tree's accounting
(``barrier_combine_hops``, departure-latency bookkeeping) and the
placement policies' relocation counters.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import MachineConfig, run_app
from repro.apps import make_app
from repro.cluster.machine import Cluster
from repro.config import ConfigError
from repro.protocol import make_protocol
from repro.sim.process import ProcessGroup
from repro.sync import Barrier

FLAT = MachineConfig(nodes=4, procs_per_node=2, page_bytes=512)
TREE = replace(FLAT, barrier="tree")


def _run(app_name, cfg, protocol):
    app = make_app(app_name)
    result = run_app(app, app.small_params(), cfg, protocol)
    arrays = {name: result.array(name).tobytes()
              for name in app.result_arrays(app.small_params())}
    return result, arrays


# ---------------------------------------------------------------------------
# Barrier topology.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
@pytest.mark.parametrize("app_name", ["SOR", "Water"])
def test_tree_barrier_matches_flat_results(app_name, protocol):
    """Same data, same episode count; only timing and the combine-hop
    counter may differ between topologies. SOR (barrier-only sync) must
    match byte for byte; Water's lock-ordered force reductions reorder
    with timing, so it gets the sequential verifier's tolerance."""
    app = make_app(app_name)
    flat, flat_arrays = _run(app_name, FLAT, protocol)
    tree, tree_arrays = _run(app_name, TREE, protocol)
    if app_name == "SOR":
        assert tree_arrays == flat_arrays
    else:
        for name in app.result_arrays(app.small_params()):
            np.testing.assert_allclose(tree.array(name),
                                       flat.array(name),
                                       rtol=1e-8, atol=1e-8)
    agg_flat = flat.stats.aggregate.counters
    agg_tree = tree.stats.aggregate.counters
    assert agg_tree["barriers_crossed"] == agg_flat["barriers_crossed"]
    assert agg_flat["barrier_combine_hops"] == 0
    assert agg_tree["barrier_combine_hops"] > 0


def test_flat_is_the_default_and_unchanged():
    """``barrier="flat"`` spells the default explicitly: identical
    stats, byte for byte (the no-regression gate for old configs)."""
    base, base_arrays = _run("SOR", FLAT, "2L")
    spelled, spelled_arrays = _run("SOR", replace(FLAT, barrier="flat"),
                                   "2L")
    assert spelled_arrays == base_arrays
    assert spelled.stats.exec_time_us == base.stats.exec_time_us
    assert dict(spelled.stats.aggregate.counters) == \
        dict(base.stats.aggregate.counters)


def test_tree_departure_latency_accounted():
    """The barrier object accumulates per-episode departure latency
    (the scale experiment's barrier-cost series) and hop counts land
    only on interior-slot representatives."""
    cfg = replace(MachineConfig(nodes=4, procs_per_node=2,
                                page_bytes=512, shared_bytes=512 * 8),
                  barrier="tree")
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    barrier = Barrier(cluster, proto)
    assert barrier.tree and barrier._interior == 2

    def worker(proc):
        for _ in range(3):
            yield from barrier.wait(proc)

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    assert barrier.episodes == 3
    assert barrier.depart_latency_us > 0.0
    hops = sum(p.stats.counters["barrier_combine_hops"]
               for p in cluster.processors)
    # One combine write per interior slot per episode.
    assert hops == barrier._interior * 3


def test_unknown_barrier_topology_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(nodes=2, procs_per_node=2, barrier="mesh")


# ---------------------------------------------------------------------------
# Home-placement policies.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["2L", "1LD"])
@pytest.mark.parametrize("policy", ["first_touch", "round_robin",
                                    "migrate"])
def test_home_policies_preserve_results(policy, protocol):
    """Placement moves pages, never values: every policy produces the
    first-touch run's bytes."""
    base, base_arrays = _run("SOR", FLAT, protocol)
    _, arrays = _run("SOR", replace(FLAT, home_policy=policy), protocol)
    assert arrays == base_arrays


def test_round_robin_never_relocates():
    result, _ = _run("SOR", replace(FLAT, home_policy="round_robin"),
                     "2L")
    assert result.stats.aggregate.counters["home_relocations"] == 0


def test_migrate_extends_first_touch():
    """``migrate`` keeps the first-touch relocation and may add
    migrations on repeated remote-diff streaks."""
    ft, _ = _run("SOR", FLAT, "2L")
    mig, _ = _run("SOR", replace(FLAT, home_policy="migrate"), "2L")
    assert mig.stats.aggregate.counters["home_relocations"] >= \
        ft.stats.aggregate.counters["home_relocations"]


def test_unknown_home_policy_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(nodes=2, procs_per_node=2, home_policy="static")

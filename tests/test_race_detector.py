"""The happens-before race detector and the coherence oracle.

Hand-written racy programs (write-write, write-read across a missing
release) must be flagged with full provenance; known data-race-free
programs (barrier rounds, lock-protected counters, flag-synchronized
producer/consumer chains) must come out clean; and protocol-level data
corruption — injected behind the protocol's back — must raise a
structured :class:`CoherenceViolation` naming the divergent word.
"""

import pytest

from repro.check import CheckContext, attach_checker
from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.errors import CoherenceViolation, DataRaceError
from repro.protocol import make_protocol
from repro.runtime import checking
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier, FlagSet, MCLock

PROTOCOLS = ["2L", "2LS", "1LD", "1L"]


def build(protocol="2L", nodes=2, ppn=2, *, fail_fast=False,
          flags=None, locks=0):
    """A small checked cluster plus the sync objects a test needs."""
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * 4, superpage_pages=2)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    checker = attach_checker(cluster, proto, fail_fast=fail_fast)
    barrier = Barrier(cluster, proto)
    lock_objs = [MCLock(cluster, proto, i) for i in range(locks)]
    flag_objs = {name: FlagSet(cluster, proto, name, count)
                 for name, count in (flags or {}).items()}
    return cluster, proto, checker, barrier, lock_objs, flag_objs


def run(cluster, make_worker):
    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, make_worker(proc), f"p{proc.global_id}")
    group.run()


# --------------------------------------------------------------------------
# Racy programs must be flagged.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_write_write_race_flagged(protocol):
    cluster, proto, checker, barrier, _, _ = build(protocol)

    def make_worker(proc):
        def gen():
            proto.store(proc, 0, 5, float(proc.global_id))
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    assert checker.races, f"{protocol}: unsynchronized writes not flagged"
    assert all(r.kind == "write-write" for r in checker.races)
    assert {r.word for r in checker.races} == {5}


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_write_read_race_across_missing_release_flagged(protocol):
    """p0 publishes data with a plain store; p1 reads it with nothing but
    compute delay in between — no release/acquire pair, so it races."""
    cluster, proto, checker, barrier, _, _ = build(protocol)

    def make_worker(proc):
        def gen():
            rank = proc.global_id
            if rank == 0:
                proto.store(proc, 1, 7, 42.0)
            yield Compute(5.0)
            if rank == 1:
                proto.load(proc, 1, 7)
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    kinds = {r.kind for r in checker.races}
    assert kinds, f"{protocol}: missing-release read not flagged"
    assert kinds <= {"write-read", "read-write"}
    (report,) = checker.races
    assert {report.first.proc, report.second.proc} == {0, 1}


def test_flag_peek_creates_no_ordering():
    """Spinning on flag_peek (no acquire) and then reading the data is
    the classic missing-release bug; the detector must flag it."""
    cluster, proto, checker, barrier, _, flags = build(
        flags={"ready": 1})
    ready = flags["ready"]

    def make_worker(proc):
        def gen():
            rank = proc.global_id
            if rank == 0:
                proto.store(proc, 0, 9, 7.0)
                yield Compute(1.0)
                ready.set(proc, 0)
            elif rank == 1:
                while not ready.peek(proc, 0):
                    yield Compute(1.0)
                proto.load(proc, 0, 9)  # peek performed no acquire
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    assert [r.kind for r in checker.races] == ["write-read"]


def test_race_report_provenance():
    cluster, proto, checker, barrier, _, _ = build(nodes=2, ppn=1)

    def make_worker(proc):
        def gen():
            proto.store(proc, 2, 11, 1.0)
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    (report,) = checker.races
    assert report.page == 2
    assert report.offset == 11
    assert report.word == 2 * 64 + 11
    first, second = report.first, report.second
    assert {first.proc, second.proc} == {0, 1}
    assert {first.node, second.node} == {0, 1}
    assert first.kind == second.kind == "write"
    assert first.sim_time >= 0.0 and second.sim_time >= 0.0
    assert "page 2 word 11" in report.describe()


def test_fail_fast_raises_at_the_racing_access():
    cluster, proto, checker, barrier, _, _ = build(fail_fast=True)

    def make_worker(proc):
        def gen():
            proto.store(proc, 0, 0, float(proc.global_id))
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    with pytest.raises(DataRaceError, match="page 0 word 0"):
        run(cluster, make_worker)


def test_finalize_raises_on_collected_races():
    cluster, proto, checker, barrier, _, _ = build()

    def make_worker(proc):
        def gen():
            proto.store(proc, 0, 0, float(proc.global_id))
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    with pytest.raises(DataRaceError, match="data race"):
        checker.finalize()


# --------------------------------------------------------------------------
# Data-race-free programs must come out clean.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_barrier_rounds_are_clean(protocol):
    """Disjoint writes per round, arbitrary reads after the barrier."""
    cluster, proto, checker, barrier, _, _ = build(protocol)
    nprocs = cluster.num_procs

    def make_worker(proc):
        def gen():
            rank = proc.global_id
            for rnd in range(3):
                for off in range(rank * 8, rank * 8 + 8):
                    proto.store(proc, rnd % 4, off, float(rnd * 100 + off))
                    yield Compute(1.0)
                yield from barrier.wait(proc)
                for off in range(0, nprocs * 8, 3):
                    proto.load(proc, rnd % 4, off)
                    yield Compute(0.5)
                yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    checker.finalize()
    assert checker.races == []
    # Barrier episodes plus end-of-run all cross-checked the golden image.
    assert checker.oracle.global_checks == 7


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_lock_protected_counters_are_clean(protocol):
    cluster, proto, checker, barrier, locks, _ = build(protocol, locks=2)

    def make_worker(proc):
        def gen():
            rank = proc.global_id
            for i in range(3):
                lock = locks[(rank + i) % 2]
                word = 3 + (rank + i) % 2
                yield from lock.acquire(proc)
                value = proto.load(proc, 0, word)
                yield Compute(2.0)
                proto.store(proc, 0, word, value + 1.0)
                lock.release(proc)
                yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    checker.finalize()
    assert checker.races == []
    assert proto.master(0)[3] + proto.master(0)[4] == 12.0


def test_flag_producer_consumer_chain_is_clean():
    """Transitive happens-before through a chain of flags: p0 -> p1 -> p2
    -> p3, each reading its predecessor's data and appending its own."""
    cluster, proto, checker, barrier, _, flags = build(
        flags={"stage": 4})
    stage = flags["stage"]

    def make_worker(proc):
        def gen():
            rank = proc.global_id
            if rank > 0:
                yield from stage.wait(proc, rank - 1)
                for r in range(rank):
                    value = proto.load(proc, 0, r)
                    assert value == float(r + 1), (rank, r, value)
            proto.store(proc, 0, rank, float(rank + 1))
            yield Compute(1.0)
            stage.set(proc, rank)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    checker.finalize()
    assert checker.races == []


# --------------------------------------------------------------------------
# The coherence oracle must catch protocol-level corruption.
# --------------------------------------------------------------------------

def test_oracle_catches_corruption_at_read():
    """Corrupt the master copy behind the protocol's back: the next
    checked read of that word must raise with full provenance."""
    cluster, proto, checker, barrier, _, _ = build()

    def make_worker(proc):
        def gen():
            rank = proc.global_id
            if rank == 0:
                proto.store(proc, 1, 3, 42.0)
            yield Compute(1.0)
            yield from barrier.wait(proc)
            if rank == 2:
                proto.master(1)[3] = 99.0  # simulated protocol bug
                proto.load(proc, 1, 3)
            yield from barrier.wait(proc)
        return gen()

    with pytest.raises(CoherenceViolation) as info:
        run(cluster, make_worker)
    exc = info.value
    assert exc.check == "read-value"
    assert (exc.page, exc.offset, exc.word) == (1, 3, 67)
    assert exc.expected == 42.0
    assert exc.actual == 99.0
    assert exc.event is not None and exc.event.proc == 2


def test_oracle_global_check_catches_divergence():
    """A lost write (master corrupted after the run) is caught by the
    end-of-run golden-image sweep even though nobody reads the word."""
    cluster, proto, checker, barrier, _, _ = build()

    def make_worker(proc):
        def gen():
            if proc.global_id == 3:
                proto.store(proc, 3, 60, 5.0)
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)
    proto.master(3)[60] = 0.0  # drop the write behind the protocol's back
    with pytest.raises(CoherenceViolation) as info:
        checker.finalize()
    exc = info.value
    assert exc.check == "page-content"
    assert (exc.page, exc.offset) == (3, 60)
    assert exc.expected == 5.0 and exc.actual == 0.0


def test_oracle_skips_value_checks_on_racy_words():
    """Racy words have no well-defined golden value: the detector must
    flag the race, and the oracle must not pile a spurious
    CoherenceViolation on top."""
    cluster, proto, checker, barrier, _, _ = build()

    def make_worker(proc):
        def gen():
            rank = proc.global_id
            proto.store(proc, 0, 0, float(rank))
            yield Compute(float(rank))
            proto.load(proc, 0, 0)
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    run(cluster, make_worker)  # must not raise CoherenceViolation
    assert checker.race_count > 0
    with pytest.raises(DataRaceError):
        checker.finalize()


# --------------------------------------------------------------------------
# End-to-end wiring: config flag, context manager, stats surfacing.
# --------------------------------------------------------------------------

def _sor_app():
    from repro.apps import SOR
    app = SOR()
    return app, app.small_params()


def test_run_app_under_config_flag():
    from repro.runtime import run_app
    app, params = _sor_app()
    config = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                           checking=True)
    result = run_app(app, params, config, protocol="2L")
    checker = result.runtime.checker
    assert isinstance(checker, CheckContext)
    assert checker.races == []
    assert checker.oracle.global_checks > 0
    # Detector statistics surface through the run's aggregated counters.
    assert result.stats.counter("check_events") > 0
    assert result.stats.counter("check_vc_merges") > 0
    assert result.stats.counter("check_races") == 0


def test_run_app_under_checking_context_manager():
    from repro.runtime import run_app
    app, params = _sor_app()
    config = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)
    with checking():
        result = run_app(app, params, config, protocol="2LS")
    assert result.runtime.checker is not None
    assert result.stats.counter("check_events") > 0
    # Outside the block, checking reverts to the config flag (off here).
    result = run_app(app, params, config, protocol="2LS")
    assert result.runtime.checker is None
    assert result.stats.counter("check_events") == 0

"""Property-based tests for the interval-timeline resources."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import MultiChannelResource, SerialResource

pytestmark = pytest.mark.heavy  # long hypothesis suite

bookings = st.lists(
    st.tuples(st.floats(min_value=0, max_value=1000),
              st.floats(min_value=0.1, max_value=50)),
    min_size=1, max_size=60)


@settings(max_examples=200, deadline=None)
@given(bookings)
def test_serial_resource_never_overlaps(reqs):
    bus = SerialResource("bus")
    granted = []
    for start, dur in reqs:
        begin, end = bus.acquire(start, dur)
        assert begin >= start
        assert abs((end - begin) - dur) < 1e-9
        granted.append((begin, end))
    granted.sort()
    for (b1, e1), (b2, e2) in zip(granted, granted[1:]):
        assert e1 <= b2 + 1e-9, "bookings overlap"


@settings(max_examples=100, deadline=None)
@given(bookings)
def test_serial_resource_busy_time_conserved(reqs):
    bus = SerialResource("bus")
    for start, dur in reqs:
        bus.acquire(start, dur)
    assert abs(bus.busy_time - sum(d for _, d in reqs)) < 1e-6
    # The merged timeline covers exactly busy_time worth of intervals.
    covered = sum(e - b for b, e in bus._intervals)
    assert abs(covered - bus.busy_time) < 1e-6


@settings(max_examples=100, deadline=None)
@given(bookings)
def test_serial_resource_work_conserving(reqs):
    """Every booking takes the EARLIEST gap that fits (no needless delay):
    re-asking for the same slot after booking must land strictly later."""
    bus = SerialResource("bus")
    for start, dur in reqs:
        begin, end = bus.acquire(start, dur)
        assert bus.peek(start, dur) >= end - 1e-9


@settings(max_examples=100, deadline=None)
@given(bookings, st.integers(min_value=1, max_value=4))
def test_multichannel_capacity_respected(reqs, channels):
    mc = MultiChannelResource(channels)
    granted = []
    for start, dur in reqs:
        begin, end = mc.acquire(start, dur)
        assert begin >= start
        granted.append((begin, end))
    # At no grant boundary do more than `channels` bookings overlap.
    for point, _ in granted:
        active = sum(1 for b, e in granted if b <= point < e)
        assert active <= channels

"""Cross-validation of the symbolic touch inference (lint engine 4)
against the live lowering pipeline.

Three closing-the-loop checks, per ISSUE:

* **static vs. concrete** — the access summary inferred from each
  kernel's ``interp`` source, instantiated on a live kernel with
  :func:`repro.lint.symbolic.evaluate_summary`, must equal the exact
  per-step ``(need, page)`` lists the kernel built for the executor
  (and so must the summary inferred from the descriptor construction);
* **dynamic fault traces** — every protocol fault the batched executor
  replays while driving a region must land on a page the inferred
  summary predicted, at the predicted mode;
* **seeded mutations** — corrupting the committed SOR descriptor (span
  shrink, order swap, wrong mode) must be caught by the K-rules, in
  the right direction (K002 for the dangerous under-approximation).

Plus the descriptor round-trip: ``describe()`` serializes the touch
lists and ``to_touches()`` parses them back bit-for-bit.
"""

import ast
import inspect

import pytest

from repro import MachineConfig, run_app
from repro.apps import make_app
from repro.lint import lint_source
from repro.lint.symbolic import evaluate_summary
from repro.lint.touch import kernel_classes, summarize_kernel_class
from repro.lower import WRITE
from repro.lower.exec import LoweredRun
from repro.protocol.cashmere2l import Cashmere2L
from repro.runtime.env import WorkerEnv

SOLO = MachineConfig(nodes=1, procs_per_node=1, page_bytes=512)
SMALL = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)

#: Every app shipping RegionKernels (SOR/Water/LU/Gauss plus the two
#: ported in this PR).
APPS = ["SOR", "Water", "LU", "Gauss", "Em3d", "Ilink"]


def _capture(app_name, cfg=SOLO, protocol="2L"):
    """Run an app lowered and keep every distinct kernel instance that
    entered ``run_region`` with a populated touch list."""
    app = make_app(app_name)
    captured = {}
    orig = WorkerEnv.run_region

    def spy(self, kernel):
        if kernel.lowerable and kernel.n > 0 and kernel.touches:
            captured.setdefault(id(kernel), kernel)
        return orig(self, kernel)

    WorkerEnv.run_region = spy
    try:
        run_app(app, app.small_params(), cfg, protocol)
    finally:
        WorkerEnv.run_region = orig
    assert captured, f"{app_name} entered no lowerable regions"
    return list(captured.values())


def _summaries(kernel_cls):
    """(code, descriptor) summaries of a live kernel class, re-inferred
    from its defining module's source."""
    module = inspect.getmodule(kernel_cls)
    tree = ast.parse(inspect.getsource(module))
    for cls in kernel_classes(tree):
        if cls.name == kernel_cls.__name__:
            return summarize_kernel_class(cls, tree)
    raise AssertionError(f"no kernel class {kernel_cls.__name__} in "
                         f"{module.__name__}")


def _concrete(kernel):
    """The kernel's own touch lists in evaluate_summary's vocabulary."""
    return [[("W" if need >= WRITE else "R", page) for need, page in step]
            for step in kernel.touches]


_NEED = {"R": 1, "W": 2}


def _first_touch(step):
    """First-touch normalization of one step: a repeat touch of a page
    at a dominated mode is a warm replay (it can never fault), so both
    the hand-merged descriptor spans and the interp body's abutting
    row reads reduce to the same canonical list."""
    out, seen = [], {}
    for mode, page in step:
        if seen.get(page, 0) >= _NEED[mode]:
            continue
        seen[page] = _NEED[mode]
        out.append((mode, page))
    return out


# --- static inference vs. the live touch lists -------------------------------


@pytest.mark.parametrize("app_name", APPS)
def test_inferred_summaries_match_live_touch_lists(app_name):
    """Both inferred summaries — from interp (the ground truth) and
    from the descriptor construction — instantiate to exactly the
    per-step page lists the executor replays, for every kernel
    instance a real run constructs."""
    kernels = _capture(app_name)
    cache = {}
    for kernel in kernels:
        cls = type(kernel)
        if cls not in cache:
            cache[cls] = _summaries(cls)
        code, desc = cache[cls]
        expected = [_first_touch(s) for s in _concrete(kernel)]
        got_code = [_first_touch(s) for s in
                    evaluate_summary(code, kernel)]
        got_desc = [_first_touch(s) for s in
                    evaluate_summary(desc, kernel)]
        assert got_code == expected, \
            f"{cls.__name__}: interp summary diverges"
        assert got_desc == expected, \
            f"{cls.__name__}: descriptor summary diverges"


@pytest.mark.parametrize("app_name", APPS)
def test_descriptor_round_trips_exact_touch_lists(app_name):
    """Satellite: every committed kernel's ``describe()`` output parses
    back into the exact span lists the executor replays."""
    for kernel in _capture(app_name):
        desc = kernel.describe()
        assert desc.to_touches() == [list(step) for step in
                                     kernel.touches]
        assert desc.n == kernel.n


# --- dynamic fault traces ----------------------------------------------------


def test_replayed_faults_land_inside_inferred_summaries():
    """Every fault the batched executor replays while driving a region
    hits a (mode, page) the symbolic summary predicted for that
    kernel. Run on the clustered placement so regions actually fault
    (remote pages, invalidations between iterations)."""
    faults = []
    current = [None]

    orig_drive = LoweredRun.drive
    orig_cont = LoweredRun._continue

    def drive(self, sp):
        current[0] = self.kernel
        try:
            orig_drive(self, sp)
        finally:
            current[0] = None

    def cont(self):
        current[0] = self.kernel
        try:
            orig_cont(self)
        finally:
            current[0] = None

    orig_read = Cashmere2L.read_fault
    orig_write = Cashmere2L.write_fault

    def read_fault(self, proc, st, page):
        if current[0] is not None:
            faults.append((current[0], "R", page))
        return orig_read(self, proc, st, page)

    def write_fault(self, proc, st, page):
        if current[0] is not None:
            faults.append((current[0], "W", page))
        return orig_write(self, proc, st, page)

    LoweredRun.drive = drive
    LoweredRun._continue = cont
    Cashmere2L.read_fault = read_fault
    Cashmere2L.write_fault = write_fault
    try:
        kernels = []
        for app_name in ("SOR", "Water", "LU", "Gauss"):
            kernels.extend(_capture(app_name, cfg=SMALL))
    finally:
        LoweredRun.drive = orig_drive
        LoweredRun._continue = orig_cont
        Cashmere2L.read_fault = orig_read
        Cashmere2L.write_fault = orig_write

    assert faults, "no region faults replayed on the clustered run"
    predicted = {}
    cache = {}
    for kernel, mode, page in faults:
        if id(kernel) not in predicted:
            cls = type(kernel)
            if cls not in cache:
                cache[cls] = _summaries(cls)[0]  # interp = ground truth
            predicted[id(kernel)] = {
                t for step in evaluate_summary(cache[cls], kernel)
                for t in step}
        assert (mode, page) in predicted[id(kernel)], \
            (type(kernel).__name__, mode, page)


# --- seeded descriptor mutations --------------------------------------------


_K = frozenset({"K001", "K002", "K003", "K004"})


def _mutated_sor_rules(old, new):
    import repro.apps.sor as sor_mod
    src = inspect.getsource(sor_mod)
    mutated = src.replace(old, new)
    assert mutated != src, "mutation did not apply"
    active, _ = lint_source(mutated, "sor.py", _K)
    return {d.rule for d in active}


def test_pristine_sor_is_clean():
    import repro.apps.sor as sor_mod
    active, _ = lint_source(inspect.getsource(sor_mod), "sor.py", _K)
    assert active == []


def test_shrunk_read_span_is_k002():
    """Dropping most of the down-row read under-approximates: the
    executor would skip faults the interp body takes. The dangerous
    direction must be K002."""
    rules = _mutated_sor_rules(
        "base + halfc, base + 2 * halfc)",
        "base + halfc, base + halfc + 1)")
    assert "K002" in rules


def test_swapped_touch_order_is_k001():
    """Descriptor lists the destination write before the source reads;
    the interp body reads first — fault replay order would diverge."""
    rules = _mutated_sor_rules(
        "            step += [(WRITE, p) for p in self.span_pages(\n"
        "                dst, base, base + halfc)]\n"
        "            touches.append(step)",
        "            step = [(WRITE, p) for p in self.span_pages(\n"
        "                dst, base, base + halfc)] + step\n"
        "            touches.append(step)")
    assert "K001" in rules
    assert "K002" not in rules


def test_wrong_mode_is_k001():
    """Declaring the destination-row touch as READ keeps the span but
    replays the wrong fault kind."""
    rules = _mutated_sor_rules("step += [(WRITE, p)",
                               "step += [(READ, p)")
    assert "K001" in rules

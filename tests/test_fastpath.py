"""The inline page-access cache (fast path): determinism and edge cases.

The fast path is a pure wall-clock optimization — a warm access skips
protocol dispatch entirely, which is only sound if the skipped dispatch
would have charged nothing and mutated nothing. The determinism tests
enforce that end to end: a run with the fast path enabled must produce
**byte-identical** statistics and final data to the same run forced down
the slow path, for every protocol, with and without the observers
(checker + tracer) attached.

The edge-case tests exercise the block paths (empty ranges, page
boundaries, multi-page spans, dtype/stride oddities) and the aliasing
contract: ``get_block`` always returns a private copy even when served
from the cache, because the protocol's ``load_range`` hands back a live
view of the owner's frame.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import MachineConfig, run_app
from repro.apps import make_app
from repro.runtime.api import fastpath_enabled
from repro.runtime.env import WorkerEnv
from repro.runtime.program import ParallelRuntime

SMALL = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)
OBSERVED = replace(SMALL, checking=True, tracing=True)


def _fingerprint(result, app):
    """Everything a run produces, for byte-identical comparison."""
    stats = result.stats
    return (
        stats.exec_time_us,
        dict(stats.aggregate.counters),
        dict(stats.aggregate.buckets),
        stats.mc_traffic_bytes,
        [(dict(ps.counters), dict(ps.buckets)) for ps in stats.per_proc],
        {name: result.array(name).tobytes()
         for name in app.result_arrays(app.small_params())},
    )


# ---------------------------------------------------------------------------
# Determinism: fast path vs forced slow path.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
@pytest.mark.parametrize("app_name", ["SOR", "Water"])
@pytest.mark.parametrize("observers", ["off", "on"])
def test_fastpath_matches_forced_slowpath(app_name, protocol, observers):
    cfg = SMALL if observers == "off" else OBSERVED
    app = make_app(app_name)
    fast = run_app(app, app.small_params(), cfg, protocol)
    slow_app = make_app(app_name)
    slow = run_app(slow_app, slow_app.small_params(),
                   replace(cfg, fastpath=False), protocol)
    assert _fingerprint(fast, app) == _fingerprint(slow, slow_app)


def test_env_var_forces_slow_path(monkeypatch):
    monkeypatch.setenv("CASHMERE_NO_FASTPATH", "1")
    assert not fastpath_enabled(SMALL)
    app = make_app("SOR")
    rt = ParallelRuntime(app, app.small_params(), SMALL, "2L")
    assert rt.fastpath is False
    env = WorkerEnv(rt, rt.cluster.processors[0])
    assert not env._fast_read and not env._fast_write


def test_checker_sees_every_per_word_access():
    """With checking on, the fast path must not swallow access events."""
    checked = replace(SMALL, checking=True)
    app = make_app("SOR")
    fast = run_app(app, app.small_params(), checked, "2L")
    slow_app = make_app("SOR")
    slow = run_app(slow_app, slow_app.small_params(),
                   replace(checked, fastpath=False), "2L")
    n = fast.stats.aggregate.counters["check_events"]
    assert n > 0
    assert n == slow.stats.aggregate.counters["check_events"]


def test_checker_disables_caches_tracer_does_not():
    app = make_app("SOR")
    rt = ParallelRuntime(app, app.small_params(),
                         replace(SMALL, checking=True), "2L")
    env = WorkerEnv(rt, rt.cluster.processors[0])
    assert not env._fast_read and not env._fast_write

    app2 = make_app("SOR")
    rt2 = ParallelRuntime(app2, app2.small_params(),
                          replace(SMALL, tracing=True), "2L")
    env2 = WorkerEnv(rt2, rt2.cluster.processors[0])
    # The event tracer only records faults and transfers, which warm
    # accesses never generate — the caches can stay on under tracing.
    assert env2._fast_read and env2._fast_write


def test_write_through_keeps_write_cache_off():
    """1L must keep doubling every store to the master copy."""
    rt, env, arr = _solo_env("1L")
    assert env._fast_read and not env._fast_write
    wpp = rt.config.words_per_page
    env.set(arr, 3, 7.5)
    env.set(arr, 3, 8.5)  # a cached write would skip the second doubling
    page, off = divmod(arr.base + 3, wpp)
    assert rt.protocol.master(page)[off] == 8.5


# ---------------------------------------------------------------------------
# Block-access edge cases (1 node x 1 proc, 512-byte pages = 64 words).
# ---------------------------------------------------------------------------

def _solo_env(protocol="2L"):
    app = make_app("SOR")
    rt = ParallelRuntime(app, app.small_params(),
                         MachineConfig(nodes=1, procs_per_node=1,
                                       page_bytes=512), protocol)
    rt.protocol.end_initialization()
    env = WorkerEnv(rt, rt.cluster.processors[0])
    # "red" is 18 * 8 = 144 words: spans three 64-word pages.
    return rt, env, rt.segment.array("red")


def test_empty_block_ranges_are_noops():
    rt, env, arr = _solo_env()
    env.set_block(arr, 0, np.arange(144.0))
    before = rt.read_array("red")
    assert env.get_block(arr, 5, 5).shape == (0,)
    env.set_block(arr, 5, np.empty(0))
    np.testing.assert_array_equal(rt.read_array("red"), before)


def test_blocks_at_page_boundaries():
    rt, env, arr = _solo_env()
    env.set_block(arr, 0, np.zeros(144))
    # Straddle the page 0 / page 1 boundary (words 63 and 64).
    env.set_block(arr, 63, np.array([1.0, 2.0]))
    assert list(env.get_block(arr, 63, 65)) == [1.0, 2.0]
    # Exactly page 1.
    env.set_block(arr, 64, np.arange(64.0))
    np.testing.assert_array_equal(env.get_block(arr, 64, 128),
                                  np.arange(64.0))
    # Scalar access at the same boundary agrees.
    assert env.get(arr, 63) == 1.0
    assert env.get(arr, 64) == 0.0


def test_three_page_span_roundtrip():
    rt, env, arr = _solo_env()
    data = np.arange(144.0) * 1.5
    env.set_block(arr, 0, data)
    np.testing.assert_array_equal(env.get_block(arr, 0, 144), data)
    # The authoritative (protocol-side) contents agree word for word.
    np.testing.assert_array_equal(rt.read_array("red"), data)
    # Repeat warm: both accesses now hit the cache, same answer.
    np.testing.assert_array_equal(env.get_block(arr, 0, 144), data)


def test_get_block_returns_private_copy():
    """Aliasing regression: load_range yields a live frame view, and
    get_block must be the copying boundary — warm or cold."""
    rt, env, arr = _solo_env()
    env.set_block(arr, 0, np.arange(144.0))
    cold = env.get_block(arr, 0, 16)     # first read: cold path
    cold[:] = -99.0
    assert env.get(arr, 0) == 0.0
    warm = env.get_block(arr, 0, 16)     # second read: cache hit
    assert warm[0] == 0.0
    warm[:] = -77.0
    np.testing.assert_array_equal(env.get_block(arr, 0, 16),
                                  np.arange(16.0))
    np.testing.assert_array_equal(rt.read_array("red")[:16],
                                  np.arange(16.0))


def test_set_block_casts_and_handles_strides():
    rt, env, arr = _solo_env()
    env.set_block(arr, 0, np.zeros(144))
    # Integer source: cast like ndarray assignment would.
    env.set_block(arr, 0, np.arange(8))
    np.testing.assert_array_equal(env.get_block(arr, 0, 8), np.arange(8.0))
    # Non-contiguous source (every other element of a larger array).
    env.set_block(arr, 8, np.arange(16.0)[::2])
    np.testing.assert_array_equal(env.get_block(arr, 8, 16),
                                  np.arange(0.0, 16.0, 2.0))
    # Multi-page write with an integer source.
    env.set_block(arr, 60, np.arange(10))
    np.testing.assert_array_equal(env.get_block(arr, 60, 70),
                                  np.arange(10.0))

"""The metrics subsystem: sampled series, parity, the sqlite run store,
the trend/regression dashboard, and the ``metrics`` CLI.

The central promise mirrors the checker's and the tracer's: metrics
collection is strictly observational, so a metered run and an unmetered
run of the same program produce byte-identical statistics *and result
arrays* — under every protocol. And because the simulator is
deterministic, the same metered run recorded twice yields identical
series, making any series change between source revisions a real
behavioral difference.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro import MachineConfig, metering, run_app
from repro.apps import make_app
from repro.metrics import DEFAULT_INTERVAL_US, MetricsCollector
from repro.metrics.dashboard import TrendReport, render_html, sparkline
from repro.metrics.store import (BENCH_SCHEMAS, STORE_SCHEMA, RunStore,
                                 StoreError)
from repro.runtime.api import metrics_enabled

SMALL = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)
METERED = replace(SMALL, metrics=True)


# ---------------------------------------------------------------------------
# Parity: metrics must not perturb the simulation.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
@pytest.mark.parametrize("app_name", ["SOR", "Water"])
def test_metrics_do_not_perturb_run(app_name, protocol):
    app = make_app(app_name)
    plain = run_app(app, app.small_params(), SMALL, protocol)
    metered = run_app(make_app(app_name), app.small_params(), METERED,
                      protocol)

    assert metered.exec_time_us == plain.exec_time_us
    assert metered.stats.aggregate.counters == \
        plain.stats.aggregate.counters
    assert metered.stats.aggregate.buckets == plain.stats.aggregate.buckets
    assert metered.stats.mc_traffic_bytes == plain.stats.mc_traffic_bytes
    for m_ps, p_ps in zip(metered.stats.per_proc, plain.stats.per_proc):
        assert m_ps.counters == p_ps.counters
        assert m_ps.buckets == p_ps.buckets
    for name in app.result_arrays(app.small_params()):
        assert np.array_equal(metered.array(name), plain.array(name))

    assert plain.metrics is None
    assert metered.metrics is not None
    assert metered.metrics.num_samples > 0


def test_same_run_recorded_twice_yields_identical_series():
    app = make_app("SOR")
    a = run_app(app, app.small_params(), METERED, "2L")
    b = run_app(make_app("SOR"), app.small_params(), METERED, "2L")
    assert a.metrics.to_payload()["series"] == \
        b.metrics.to_payload()["series"]


# ---------------------------------------------------------------------------
# Wiring: config flag, context manager, RunResult.metrics.
# ---------------------------------------------------------------------------

class TestWiring:
    def test_metering_context_manager(self):
        plain = MachineConfig()
        assert not metrics_enabled(plain)
        with metering():
            assert metrics_enabled(plain)
            with metering():          # re-entrant
                assert metrics_enabled(plain)
            assert metrics_enabled(plain)
        assert not metrics_enabled(plain)

    def test_config_flag(self):
        assert metrics_enabled(MachineConfig(metrics=True))

    def test_context_manager_attaches_collector(self):
        app = make_app("SOR")
        with metering():
            result = run_app(app, app.small_params(), SMALL, "2L")
        assert result.metrics is not None
        assert result.metrics.meta["app"] == "SOR"
        assert result.metrics.meta["protocol"] == "2L"


# ---------------------------------------------------------------------------
# Collector contents, sharing one metered run.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def metered_sor():
    app = make_app("SOR")
    return run_app(app, app.small_params(), METERED, "2L")


class TestCollectorContents:
    def test_expected_series_present(self, metered_sor):
        series = metered_sor.metrics.series
        for name in ("ctr.read_faults", "ctr.page_transfers", "mc.util",
                     "reqq.total", "dir.occ.total", "pages.invalid",
                     "pages.read", "pages.write", "pages.excl",
                     "proto.twins", "tlb.hits", "tlb.misses",
                     "tlb.hit_rate"):
            assert name in series, name

    def test_sample_times_are_interval_aligned(self, metered_sor):
        times, values = metered_sor.metrics.series["reqq.total"]
        assert len(times) == len(values)
        # Every boundary except the final partial-interval sample lands
        # on a multiple of the sampling interval.
        for t in times[:-1]:
            assert t % DEFAULT_INTERVAL_US == 0.0
        assert times == sorted(times)
        assert times[-1] == pytest.approx(metered_sor.exec_time_us)

    def test_counter_deltas_sum_to_final_totals(self, metered_sor):
        final = metered_sor.stats.aggregate.counters
        series = metered_sor.metrics.series
        for counter in ("read_faults", "write_faults", "page_transfers",
                        "directory_updates"):
            _, deltas = series[f"ctr.{counter}"]
            assert sum(deltas) == final[counter], counter

    def test_mc_byte_deltas_sum_to_traffic(self, metered_sor):
        traffic = metered_sor.stats.mc_traffic_bytes
        series = metered_sor.metrics.series
        for category, total in traffic.items():
            _, deltas = series[f"mc.bytes.{category}"]
            assert sum(deltas) == total, category

    def test_page_state_histogram_covers_all_pages(self, metered_sor):
        series = metered_sor.metrics.series
        pages = metered_sor.runtime.config.num_pages
        states = [series[f"pages.{s}"][1]
                  for s in ("invalid", "read", "write", "excl")]
        for counts in zip(*states):
            assert sum(counts) == pages

    def test_utilization_bounded(self, metered_sor):
        _, util = metered_sor.metrics.series["mc.util"]
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in util)

    def test_tlb_rate_consistent_with_cells(self, metered_sor):
        coll = metered_sor.metrics
        hits, misses = coll.tlb
        assert hits > 0 and misses > 0
        assert sum(coll.series["tlb.hits"][1]) == hits
        assert sum(coll.series["tlb.misses"][1]) == misses

    def test_payload_is_json_serializable(self, metered_sor):
        payload = metered_sor.metrics.to_payload()
        doc = json.loads(json.dumps(payload))
        assert doc["interval_us"] == DEFAULT_INTERVAL_US
        assert doc["meta"]["app"] == "SOR"
        assert set(doc["series"]) == set(metered_sor.metrics.series)

    def test_finalize_is_idempotent(self):
        coll = MetricsCollector()
        assert coll.interval_us == DEFAULT_INTERVAL_US
        with pytest.raises(ValueError):
            MetricsCollector(interval_us=0)


def test_metrics_compose_with_tracing():
    app = make_app("SOR")
    both = replace(SMALL, metrics=True, tracing=True)
    result = run_app(app, app.small_params(), both, "2L")
    assert result.trace is not None and result.metrics is not None
    _, dropped = result.metrics.series["trace.dropped"]
    assert dropped[-1] == result.trace.dropped


def test_trace_dropped_surfaces_in_meta_and_profile():
    from repro.trace import ContentionProfile
    app = make_app("SOR")
    result = run_app(app, app.small_params(),
                     replace(SMALL, tracing=True), "2L")
    assert result.trace.meta["trace_dropped"] == result.trace.dropped
    profile = ContentionProfile(result.trace)
    assert f"trace_dropped={result.trace.dropped}" in profile.format()
    assert profile.to_json()["trace_dropped"] == result.trace.dropped


# ---------------------------------------------------------------------------
# The sqlite run store.
# ---------------------------------------------------------------------------

def _bench_doc(schema="cashmere-bench-2", wall=0.1, **extras):
    doc = {
        "schema": schema,
        "timestamp": "2026-01-01T00:00:00",
        "python": "3.11.7", "numpy": "1.0", "platform": "test",
        "quick": True,
        "benchmarks": {
            "access": {"wall_s": wall, "reps": 3},
            "sor32": {"wall_s": wall * 2, "reps": 3, "sim_us": 1000.0,
                      "sim_us_per_wall_s": 1000.0 / (wall * 2)},
        },
    }
    doc.update(extras)
    return doc


class TestRunStore:
    def test_ingest_result_roundtrip(self, metered_sor, tmp_path):
        with RunStore(str(tmp_path / "m.db")) as store:
            run_id = store.ingest_result(metered_sor)
            (run,) = store.runs()
            assert run["id"] == run_id
            assert run["kind"] == "run"
            assert run["app"] == "SOR" and run["protocol"] == "2L"
            assert run["schema_version"] == STORE_SCHEMA
            manifest = store.manifest(run_id)
            assert manifest["source_digest"]
            assert manifest["config_key"]
            counters = store.counters(run_id)
            assert counters["exec_time_us"] == metered_sor.exec_time_us
            assert counters["ctr.read_faults"] == \
                metered_sor.stats.aggregate.counters["read_faults"]
            names = store.series_names(run_id)
            assert set(names) == set(metered_sor.metrics.series)
            times, values = store.series(run_id, "reqq.total")
            src_t, src_v = metered_sor.metrics.series["reqq.total"]
            assert times == src_t and values == src_v

    def test_ingest_requires_metrics(self, tmp_path):
        app = make_app("SOR")
        plain = run_app(app, app.small_params(), SMALL, "2L")
        with RunStore(str(tmp_path / "m.db")) as store:
            with pytest.raises(StoreError):
                store.ingest_result(plain)

    def test_import_both_bench_schemas(self, tmp_path):
        db = str(tmp_path / "m.db")
        with RunStore(db) as store:
            for schema in BENCH_SCHEMAS:
                path = tmp_path / f"BENCH_{schema}.json"
                path.write_text(json.dumps(_bench_doc(schema=schema)))
                store.import_bench_json(str(path))
            runs = store.runs(kind="bench")
            assert [r["schema_version"] for r in runs] == \
                list(BENCH_SCHEMAS)
            for run in runs:
                assert store.counters(run["id"])["access.wall_s"] == 0.1

    def test_unknown_bench_schema_rejected(self, tmp_path):
        with RunStore(str(tmp_path / "m.db")) as store:
            with pytest.raises(StoreError):
                store.ingest_bench(_bench_doc(schema="bogus-9"),
                                   label="x")

    def test_store_schema_mismatch_rejected(self, tmp_path):
        db = str(tmp_path / "m.db")
        with RunStore(db) as store:
            store.db.execute(
                "UPDATE meta SET value = 'other-schema'"
                " WHERE key = 'schema'")
            store.db.commit()
        with pytest.raises(StoreError):
            RunStore(db)

    def test_committed_bench_history_imports(self, tmp_path,
                                             repo_root=None):
        import os
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        committed = [os.path.join(root, name)
                     for name in ("BENCH_sweep.json", "BENCH_fastpath.json")]
        for path in committed:
            assert os.path.isfile(path), path
        with RunStore(str(tmp_path / "m.db")) as store:
            for path in committed:
                store.import_bench_json(path)
            runs = store.runs(kind="bench")
            assert len(runs) == 2
            report = TrendReport(store)
            assert len(report.trends) > 0


# ---------------------------------------------------------------------------
# Trend report and regression gate.
# ---------------------------------------------------------------------------

class TestTrendReport:
    def test_no_regression_on_flat_history(self, tmp_path):
        with RunStore(str(tmp_path / "m.db")) as store:
            store.ingest_bench(_bench_doc(wall=0.1), label="a")
            store.ingest_bench(_bench_doc(wall=0.11), label="b")
            report = TrendReport(store)
            assert report.ok
            assert "no gated regressions" in report.format()

    def test_synthetic_regression_detected(self, tmp_path):
        with RunStore(str(tmp_path / "m.db")) as store:
            store.ingest_bench(_bench_doc(wall=0.1), label="before")
            store.ingest_bench(_bench_doc(wall=1.0), label="after")
            report = TrendReport(store)
            assert not report.ok
            names = {t.name for t in report.regressions()}
            assert "access.wall_s" in names
            assert "REGRESSED" in report.format()

    def test_sim_counters_never_gate(self, tmp_path):
        # Simulated-time counters may legitimately change with the
        # source; only wall-clock counters participate in the gate.
        with RunStore(str(tmp_path / "m.db")) as store:
            a = _bench_doc(wall=0.1)
            b = _bench_doc(wall=0.1)
            b["benchmarks"]["sor32"]["sim_us"] = 99999.0
            store.ingest_bench(a, label="a")
            store.ingest_bench(b, label="b")
            assert TrendReport(store).ok

    def test_gate_factor_respected(self, tmp_path):
        with RunStore(str(tmp_path / "m.db")) as store:
            store.ingest_bench(_bench_doc(wall=0.1), label="a")
            store.ingest_bench(_bench_doc(wall=0.25), label="b")
            assert not TrendReport(store, gate_factor=2.0).ok
            assert TrendReport(store, gate_factor=3.0).ok

    def test_single_run_is_ok(self, tmp_path):
        with RunStore(str(tmp_path / "m.db")) as store:
            store.ingest_bench(_bench_doc(), label="only")
            report = TrendReport(store)
            assert report.ok and "need two runs" in report.format()

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3 and line[0] == "▁" and line[-1] == "█"


class TestHtmlDashboard:
    def test_renders_trends_and_series(self, metered_sor, tmp_path):
        with RunStore(str(tmp_path / "m.db")) as store:
            store.ingest_bench(_bench_doc(wall=0.1), label="a")
            store.ingest_bench(_bench_doc(wall=1.0), label="b")
            store.ingest_result(metered_sor)
            doc = render_html(store)
        assert doc.startswith("<!doctype html>")
        assert "access.wall_s" in doc
        assert "regression" in doc
        assert "<svg" in doc          # series charts
        assert "dir.occ.total" in doc


# ---------------------------------------------------------------------------
# CLI end-to-end (through the cashmere-repro dispatcher).
# ---------------------------------------------------------------------------

class TestCli:
    def _main(self, *argv):
        from repro.experiments.runner import main
        return main(list(argv))

    def test_full_flow(self, tmp_path, capsys):
        import os
        db = str(tmp_path / "m.db")
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        a = os.path.join(root, "BENCH_sweep.json")
        b = os.path.join(root, "BENCH_fastpath.json")
        assert self._main("metrics", "import", a, b, "--db", db) == 0
        assert self._main("metrics", "list", "--db", db) == 0
        out = capsys.readouterr().out
        assert "BENCH_sweep.json" in out
        rc = self._main("metrics", "report", "--db", db, "--gate", "1e9")
        assert rc == 0

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        db = str(tmp_path / "m.db")
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps(_bench_doc(wall=0.1)))
        after.write_text(json.dumps(_bench_doc(wall=1.0)))
        assert self._main("metrics", "import", str(before), str(after),
                          "--db", db) == 0
        assert self._main("metrics", "report", "--db", db) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_html_subcommand(self, tmp_path, capsys):
        db = str(tmp_path / "m.db")
        doc = tmp_path / "d.json"
        doc.write_text(json.dumps(_bench_doc()))
        assert self._main("metrics", "import", str(doc), "--db", db) == 0
        out = tmp_path / "dash.html"
        assert self._main("metrics", "html", "--db", db,
                          "--out", str(out)) == 0
        assert out.read_text().startswith("<!doctype html>")

    def test_bad_import_reports_error(self, tmp_path, capsys):
        db = str(tmp_path / "m.db")
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{not json")
        assert self._main("metrics", "import", str(bogus),
                          "--db", db) == 2
        assert "error" in capsys.readouterr().err

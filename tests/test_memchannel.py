"""Unit tests for the simulated Memory Channel."""

import pytest

from repro.config import MachineConfig
from repro.errors import MemoryChannelError
from repro.memchannel.network import MC_WORD_BYTES, MemoryChannel
from repro.memchannel.regions import MappingTable, MCRegion, VersionedWord
from repro.sim.engine import Simulator


class TestVersionedWord:
    def test_initial_value_visible_at_time_zero(self):
        w = VersionedWord(7)
        assert w.read(0.0) == 7

    def test_write_invisible_before_visibility_time(self):
        w = VersionedWord(0)
        w.write(10.0, 1)
        assert w.read(9.99) == 0
        assert w.read(10.0) == 1

    def test_reader_sees_latest_visible_write(self):
        w = VersionedWord(0)
        w.write(5.0, 1)
        w.write(8.0, 2)
        assert w.read(6.0) == 1
        assert w.read(9.0) == 2

    def test_hub_enforces_write_ordering(self):
        # A later-accepted write cannot become visible before an earlier one.
        w = VersionedWord(0)
        w.write(10.0, 1)
        w.write(7.0, 2)  # accepted second: ordered after the first
        assert w.read(9.0) == 0
        assert w.read(11.0) == 2

    def test_history_pruning_keeps_latest(self):
        w = VersionedWord(0)
        for i in range(50):
            w.write(float(i), i)
        assert w.latest() == 49
        assert w.read(100.0) == 49


class TestMCRegion:
    def test_post_and_read(self):
        sim = Simulator()
        region = MCRegion(sim, "r", 4, initial=0)
        region.post(2, 9, visible_at=5.0)
        sim.run()
        assert region.read(2, 6.0) == 9
        assert region.read(2, 4.0) == 0

    def test_post_fires_condition_at_visibility(self):
        sim = Simulator()
        region = MCRegion(sim, "r", 1)
        woken = []
        region.visible.park(0.0, lambda at: woken.append(at))
        region.post(0, 1, visible_at=7.0)
        sim.run()
        assert woken == [7.0]

    def test_waiter_parked_after_post_still_woken(self):
        # Regression: the fire must be scheduled even with no waiters yet.
        sim = Simulator()
        region = MCRegion(sim, "r", 1)
        woken = []
        region.post(0, 1, visible_at=7.0)
        sim.schedule(1.0, lambda: region.visible.park(
            1.0, lambda at: woken.append(at)))
        sim.run()
        assert woken == [7.0]

    def test_empty_region_rejected(self):
        with pytest.raises(MemoryChannelError):
            MCRegion(Simulator(), "r", 0)

    def test_read_all(self):
        sim = Simulator()
        region = MCRegion(sim, "r", 3, initial=1)
        region.post(1, 5, visible_at=2.0)
        assert region.read_all(3.0) == [1, 5, 1]


class TestMappingTable:
    def test_allocation_within_budget(self):
        table = MappingTable(max_connections=10)
        table.allocate("a", 4)
        table.allocate("b", 6)
        assert table.used == 10

    def test_exhaustion_raises(self):
        table = MappingTable(max_connections=4)
        table.allocate("a", 3)
        with pytest.raises(MemoryChannelError, match="exhausted"):
            table.allocate("b", 2)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(MemoryChannelError):
            MappingTable().allocate("a", 0)


class TestMemoryChannel:
    def make(self):
        sim = Simulator()
        return sim, MemoryChannel(sim, MachineConfig(nodes=2,
                                                     procs_per_node=1))

    def test_write_word_visibility_latency(self):
        sim, mc = self.make()
        region = mc.new_region("r", 2)
        visible = mc.write_word(region, 0, 42, at=10.0)
        assert visible == pytest.approx(10.0 + mc.latency)
        sim.run()
        assert region.read(0, visible) == 42

    def test_duplicate_region_name_rejected(self):
        _, mc = self.make()
        mc.new_region("r", 1)
        with pytest.raises(MemoryChannelError):
            mc.new_region("r", 1)

    def test_transfer_bandwidth(self):
        _, mc = self.make()
        send_done, visible = mc.transfer(0.0, 29000)  # 29 KB at 29 MB/s
        assert send_done == pytest.approx(1000.0)
        assert visible == pytest.approx(1000.0 + mc.latency)

    def test_concurrent_transfers_use_both_links(self):
        _, mc = self.make()
        d1, _ = mc.transfer(0.0, 29000)
        d2, _ = mc.transfer(0.0, 29000)
        d3, _ = mc.transfer(0.0, 29000)
        assert d1 == pytest.approx(1000.0)
        assert d2 == pytest.approx(1000.0)   # second link
        assert d3 == pytest.approx(2000.0)   # queued behind one of them

    def test_traffic_accounting(self):
        _, mc = self.make()
        region = mc.new_region("r", 1)
        mc.write_word(region, 0, 1, 0.0, category="sync")
        mc.transfer(0.0, 100, category="page")
        assert mc.traffic["sync"] == MC_WORD_BYTES
        assert mc.traffic["page"] == 100
        assert mc.total_bytes == 100 + MC_WORD_BYTES

    def test_negative_transfer_rejected(self):
        _, mc = self.make()
        with pytest.raises(MemoryChannelError):
            mc.transfer(0.0, -5)

    def test_broadcast_accounts_fanout(self):
        _, mc = self.make()
        region = mc.new_region("r", 1)
        mc.broadcast_write(region, 0, 3, 0.0, fanout=8, category="directory")
        assert mc.traffic["directory"] == MC_WORD_BYTES * 8

"""The staged kernel-lowering pipeline: parity, gating, and edge cases.

Lowering is a pure wall-clock optimization, exactly like the PR 3 fast
path one layer up: a batched region execution must produce
**byte-identical** statistics and final data to the same run forced
through the per-step interpreter. The parity tests enforce that end to
end for every kernelized app (SOR, Water, LU) under every protocol, on
both a batching-friendly solo placement and a lockstep-contended
multi-node one, with and without the observers attached (observers force
per-step interpretation, so those runs double as fallback-parity runs).

The remaining tests cover the pipeline's three stages directly: the
stage-1 lowerability proof (sync calls and ``yield from`` are hard
errors, legal bodies produce a report), the stage-2 descriptors, and the
stage-3 gating/adaptive machinery (env-var kill switch, observer and
fault-injection suppression, write-through protocols, the sequential
environment, empty regions, and the steps-per-batch fallback policy).
"""

import ast
import textwrap
from dataclasses import replace

import pytest

from repro import MachineConfig, run_app
from repro.apps import make_app
from repro.apps.sor import _SorSweep
from repro.config import FaultConfig
from repro.errors import LoweringError
from repro.lower import (READ, WRITE, RegionKernel, analyze_region,
                         check_kernel_class)
from repro.runtime.api import lowering_enabled
from repro.runtime.env import WorkerEnv
from repro.runtime.program import ParallelRuntime
from repro.runtime.sequential import run_sequential

SOLO = MachineConfig(nodes=1, procs_per_node=1, page_bytes=512)
SMALL = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)
OBSERVED = replace(SMALL, checking=True, tracing=True)


def _fingerprint(result, app):
    """Everything a run produces, for byte-identical comparison."""
    stats = result.stats
    return (
        stats.exec_time_us,
        dict(stats.aggregate.counters),
        dict(stats.aggregate.buckets),
        stats.mc_traffic_bytes,
        [(dict(ps.counters), dict(ps.buckets)) for ps in stats.per_proc],
        {name: result.array(name).tobytes()
         for name in app.result_arrays(app.small_params())},
    )


def _run(app_name, cfg, protocol):
    app = make_app(app_name)
    return _fingerprint(run_app(app, app.small_params(), cfg, protocol),
                        app)


# ---------------------------------------------------------------------------
# Determinism: lowered vs forced per-step interpretation.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
@pytest.mark.parametrize("app_name", ["SOR", "Water", "LU", "Gauss",
                                      "Em3d", "Ilink"])
@pytest.mark.parametrize("placement", ["solo", "clustered"])
def test_lowered_matches_interpreted(app_name, protocol, placement,
                                     monkeypatch):
    """The core parity bar (the PR 3 fast-vs-forced-slow pattern, one
    layer up): same stats, same clocks, same result bytes. ``solo``
    exercises long batches; ``clustered`` exercises the lockstep
    horizon (batch length 1) and the adaptive fallback."""
    cfg = SOLO if placement == "solo" else SMALL
    lowered = _run(app_name, cfg, protocol)
    interpreted = _run(app_name, replace(cfg, lowering=False), protocol)
    assert lowered == interpreted


@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
@pytest.mark.parametrize("app_name", ["SOR", "Water"])
def test_observers_fall_back_byte_identically(app_name, protocol):
    """Observers force per-step interpretation; an observed run of a
    kernelized app must match an observed run with lowering configured
    off — i.e. the fallback really is the old fastpath, bit for bit."""
    observed = _run(app_name, OBSERVED, protocol)
    forced = _run(app_name, replace(OBSERVED, lowering=False), protocol)
    assert observed == forced


def test_env_var_forces_interpreter(monkeypatch):
    """``CASHMERE_NO_LOWERING`` is the whole-process kill switch — and a
    killed run stays byte-identical to a lowered one."""
    lowered = _run("SOR", SOLO, "2L")
    monkeypatch.setenv("CASHMERE_NO_LOWERING", "1")
    assert not lowering_enabled(SOLO)
    app = make_app("SOR")
    rt = ParallelRuntime(app, app.small_params(), SOLO, "2L")
    assert rt.lowering is False
    assert _run("SOR", SOLO, "2L") == lowered


# ---------------------------------------------------------------------------
# Stage-3 gating: who lowers, who interprets.
# ---------------------------------------------------------------------------

def _runtime(cfg, protocol="2L"):
    app = make_app("SOR")
    return ParallelRuntime(app, app.small_params(), cfg, protocol)


def test_observers_and_faults_suppress_lowering():
    assert _runtime(SMALL).lowering is True
    assert _runtime(replace(SMALL, checking=True)).lowering is False
    assert _runtime(replace(SMALL, tracing=True)).lowering is False
    assert _runtime(replace(SMALL, metrics=True)).lowering is False
    assert _runtime(replace(SMALL, fastpath=False)).lowering is False
    faulty = replace(SMALL, faults=FaultConfig(seed=7))
    assert _runtime(faulty).lowering is False


def test_write_through_disables_lowering_per_env():
    """1L keeps the write cache off, so its envs never lower — parity
    for it is trivially the interpreter against itself."""
    rt = _runtime(SMALL, "1L")
    assert rt.lowering is True                     # runtime-level gate
    env = WorkerEnv(rt, rt.cluster.processors[0])
    assert env._lowering is False                  # env-level gate

    rt2 = _runtime(SMALL, "2L")
    env2 = WorkerEnv(rt2, rt2.cluster.processors[0])
    assert env2._lowering is True


def test_sequential_env_always_interprets():
    """SequentialEnv.run_region is the interp body verbatim: the
    sequential SOR result matches the lowered 1-proc parallel run's
    array bytes (the sequential baseline the verifier diffs against)."""
    app = make_app("SOR")
    env, _ = run_sequential(app, app.small_params(), SOLO)
    par = run_app(make_app("SOR"), app.small_params(), SOLO, "2L")
    for name in app.result_arrays(app.small_params()):
        arr = env.arr(name)
        seq_bytes = env.mem[arr.base:arr.base + arr.length].tobytes()
        assert seq_bytes == par.array(name).tobytes()


def test_empty_region_is_a_noop():
    """A zero-step region yields nothing — matching the pre-lowering
    workers' ``if hi > lo`` guards (no Compute is ever charged)."""
    rt = _runtime(SOLO)
    env = WorkerEnv(rt, rt.cluster.processors[0])
    kernel = _SorSweep(env, rt.segment.array("black"),
                       rt.segment.array("red"), range(0), 8, red=True)
    assert kernel.n == 0
    assert list(env.run_region(kernel)) == []


# ---------------------------------------------------------------------------
# Stage 2: descriptors and the adaptive policy.
# ---------------------------------------------------------------------------

def test_descriptor_reports_pages_and_cost():
    rt = _runtime(SOLO)
    env = WorkerEnv(rt, rt.cluster.processors[0])
    red, black = rt.segment.array("red"), rt.segment.array("black")
    kernel = _SorSweep(env, black, red, range(1, 17), 8, red=True)
    desc = kernel.describe()
    assert desc.n == 16
    assert desc.cpu_us == kernel.cost.cpu_us > 0
    assert desc.mem_bytes == kernel.cost.mem_bytes > 0
    assert desc.pages_read and desc.pages_written
    assert list(desc.pages_read) == sorted(desc.pages_read)
    # Red sweep: reads the black array's pages, writes the red array's.
    wpp = rt.config.words_per_page
    assert all(black.base // wpp <= p for p in desc.pages_read)
    assert all(red.base // wpp <= p < black.base // wpp
               for p in desc.pages_written)


def test_touch_lists_mirror_the_window_slide():
    """Step 0 reads three source rows; later steps first-touch only
    their ``down`` row. With 8-word rows on 64-word pages, that is
    visible as strictly fewer read pages after step 0."""
    rt = _runtime(SOLO)
    env = WorkerEnv(rt, rt.cluster.processors[0])
    kernel = _SorSweep(env, rt.segment.array("black"),
                       rt.segment.array("red"), range(1, 17), 8, red=True)
    reads0 = [p for need, p in kernel.touches[0] if need is READ]
    writes0 = [p for need, p in kernel.touches[0] if need is WRITE]
    assert reads0 and writes0
    for step in kernel.touches[1:]:
        assert len([p for need, p in step if need is READ]) <= len(reads0)


class _Adaptive(RegionKernel):  # cashmere: ignore[K004]
    """Fresh class-level adaptive state for policy tests (no interp
    body, so the touch verifier is told to look away)."""

    def __init__(self):  # no env: policy state only
        self.lowerable = False


def test_adaptive_policy_probes_and_falls_back():
    _Adaptive._adapt_execs = 0
    _Adaptive._adapt_ratio = float("inf")
    k = _Adaptive()
    # First execution always probes.
    assert k.want_lowered() is True
    # A degenerate batch ratio (1 step per batch) flips to interpreting…
    k.note_execution(steps=10, batches=10)
    for _ in range(_Adaptive._adapt_probe - 1):
        assert k.want_lowered() is False
    # …until the periodic probe re-measures.
    assert k.want_lowered() is True
    # A healthy ratio re-enables lowering for the steady state.
    k.note_execution(steps=16, batches=2)
    assert k.want_lowered() is True
    assert k.want_lowered() is True


def test_adaptive_state_is_per_class():
    class _Other(RegionKernel):
        def __init__(self):
            self.lowerable = False

    a, b = _Adaptive(), _Other()
    a.note_execution(steps=4, batches=4)    # degenerate for _Adaptive
    b.note_execution(steps=8, batches=1)    # healthy for _Other
    assert _Adaptive._adapt_ratio == 1.0
    assert _Other._adapt_ratio == 8.0
    assert RegionKernel._adapt_ratio == float("inf")


# ---------------------------------------------------------------------------
# Stage 1: the lowerability proof.
# ---------------------------------------------------------------------------

def _region_ast(source):
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


def test_analyze_accepts_a_legal_body():
    report = analyze_region(_region_ast('''
def interp(self, env):
    get_block, set_block = env.get_block, env.set_block
    for r in self._rows:
        row = get_block(self._src, r, r + 8)
        set_block(self._dst, r, row * 0.25)
        yield self.cost
'''))
    assert report.yields >= 1
    assert report.reads == ("self._src",)
    assert report.writes == ("self._dst",)


def test_analyze_rejects_yield_from():
    with pytest.raises(LoweringError, match="yield from"):
        analyze_region(_region_ast('''
def interp(self, env):
    for r in self._rows:
        yield self.cost
        yield from env.barrier()
'''))


@pytest.mark.parametrize("call", ["env.barrier()", "env.acquire(0)",
                                  "env.flag_set('go', 0)",
                                  "env.end_init()"])
def test_analyze_rejects_sync_calls(call):
    with pytest.raises(LoweringError, match="synchronization"):
        analyze_region(_region_ast(f'''
def interp(self, env):
    for r in self._rows:
        {call}
        yield self.cost
'''))


def test_analyze_rejects_aliased_sync_calls():
    """The alias prepass sees through ``wait = env.barrier``."""
    with pytest.raises(LoweringError, match="synchronization"):
        analyze_region(_region_ast('''
def interp(self, env):
    wait = env.barrier
    for r in self._rows:
        wait()
        yield self.cost
'''))


def test_app_kernels_prove_lowerable():
    """Every shipped kernel class passes stage 1 (and the proof is
    cached on the class by RegionKernel.__init__)."""
    from repro.apps.em3d import _Em3dPhase
    from repro.apps.gauss import _GaussElim
    from repro.apps.ilink import _IlinkSlave
    from repro.apps.lu import _LUInterior
    from repro.apps.water import _WaterIntegrate
    for cls in (_SorSweep, _WaterIntegrate, _LUInterior, _GaussElim,
                _Em3dPhase, _IlinkSlave):
        report = check_kernel_class(cls)
        assert report.yields >= 1
        assert report.reads and report.writes
    assert _SorSweep._lower_report.name == "_SorSweep.interp"


def test_gauss_touch_lists_mirror_row_spans():
    """Each _GaussElim step first reads its row span, then writes the
    same span back — and rows being page-padded, no page is shared
    between steps."""
    from repro.apps.gauss import _GaussElim
    app = make_app("Gauss")
    params = app.small_params()
    rt = ParallelRuntime(app, params, SOLO, "2L")
    env = WorkerEnv(rt, rt.cluster.processors[0])
    n = params["n"]
    stride = app._row_stride(n, rt.config.words_per_page)
    A = rt.segment.array("A")
    k = 2
    kernel = _GaussElim(env, A, stride, k, n, list(range(n)), None)
    assert kernel.n == n - k - 1
    for step in kernel.touches:
        reads = [p for need, p in step if need is READ]
        writes = [p for need, p in step if need is WRITE]
        assert reads and reads == writes  # same span, read then written
    seen = [p for step in kernel.touches for _, p in step]
    assert len(set(seen)) * 2 == len(seen)  # disjoint across steps

"""Unit tests for machine configuration and the cost model."""

import pytest

from repro.config import (CostModel, MachineConfig, PLACEMENTS, Protocol,
                          placement_config)
from repro.errors import ConfigError


class TestProtocolEnum:
    def test_two_level_flags(self):
        assert Protocol.CSM_2L.two_level
        assert Protocol.CSM_2LS.two_level
        assert not Protocol.CSM_1LD.two_level
        assert not Protocol.CSM_1L.two_level

    def test_uses_diffs(self):
        assert Protocol.CSM_1LD.uses_diffs
        assert not Protocol.CSM_1L.uses_diffs

    def test_from_string(self):
        assert Protocol("2L") is Protocol.CSM_2L
        assert Protocol("1LD") is Protocol.CSM_1LD


class TestMachineConfig:
    def test_paper_defaults(self):
        cfg = MachineConfig()
        assert cfg.nodes == 8
        assert cfg.procs_per_node == 4
        assert cfg.total_procs == 32
        assert cfg.page_bytes == 8192
        assert cfg.words_per_page == 1024

    def test_page_geometry(self):
        cfg = MachineConfig(page_bytes=512)
        assert cfg.page_shift == 9
        assert cfg.words_per_page == 64

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(nodes=0)
        with pytest.raises(ConfigError):
            MachineConfig(procs_per_node=0)
        with pytest.raises(ConfigError):
            MachineConfig(page_bytes=500)  # not a power of two
        with pytest.raises(ConfigError):
            MachineConfig(page_bytes=512, shared_bytes=1000)
        with pytest.raises(ConfigError):
            MachineConfig(superpage_pages=0)

    def test_with_placement(self):
        cfg = MachineConfig().with_placement(24, 3)
        assert cfg.nodes == 8
        assert cfg.procs_per_node == 3
        with pytest.raises(ConfigError):
            MachineConfig().with_placement(10, 4)

    def test_all_paper_placements_valid(self):
        for name in PLACEMENTS:
            cfg = placement_config(name)
            total, per_node = PLACEMENTS[name]
            assert cfg.total_procs == total
            assert cfg.procs_per_node == per_node

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigError):
            placement_config("13:5")


class TestCostScaling:
    def test_twin_cost_scales_with_page_size(self):
        full = MachineConfig(page_bytes=8192)
        half = MachineConfig(page_bytes=4096)
        assert half.twin_cost() == pytest.approx(full.twin_cost() / 2)
        assert full.twin_cost() == pytest.approx(199.0)

    def test_diff_out_cost_interpolates(self):
        cfg = MachineConfig(page_bytes=8192)
        empty = cfg.diff_out_cost(0, remote_home=True)
        fullp = cfg.diff_out_cost(8192, remote_home=True)
        assert empty == pytest.approx(290.0)
        assert fullp == pytest.approx(363.0)
        mid = cfg.diff_out_cost(4096, remote_home=True)
        assert empty < mid < fullp

    def test_local_diff_costs_more_than_remote(self):
        # Table 1: writing to uncacheable I/O space avoids cache pollution.
        cfg = MachineConfig(page_bytes=8192)
        assert cfg.diff_out_cost(4096, remote_home=False) > \
            cfg.diff_out_cost(4096, remote_home=True)

    def test_diff_in_cost_range(self):
        cfg = MachineConfig(page_bytes=8192)
        assert cfg.diff_in_cost(0) == pytest.approx(533.0)
        assert cfg.diff_in_cost(8192) == pytest.approx(541.0)

    def test_diff_cost_clamps_oversized(self):
        cfg = MachineConfig(page_bytes=8192)
        assert cfg.diff_out_cost(10 ** 6, True) == pytest.approx(363.0)

    def test_interrupt_costs(self):
        cfg = MachineConfig()
        assert cfg.interrupt_cost(same_node=True) == 80.0
        assert cfg.interrupt_cost(same_node=False) == 445.0
        slow = MachineConfig(fast_interrupts=False)
        assert slow.interrupt_cost(same_node=True) == 980.0

    def test_paper_mc_constants(self):
        costs = CostModel()
        assert costs.mc_latency == pytest.approx(5.2)
        assert costs.mc_link_bandwidth == pytest.approx(29.0)
        assert costs.mprotect == pytest.approx(55.0)
        assert costs.page_fault == pytest.approx(72.0)
        assert costs.dir_update == pytest.approx(5.0)
        assert costs.dir_update_locked == pytest.approx(16.0)
        assert costs.shootdown_polled == pytest.approx(72.0)
        assert costs.shootdown_interrupt == pytest.approx(142.0)

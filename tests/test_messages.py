"""Unit tests for the explicit request/reply engine."""

import pytest

from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol.messages import RequestEngine


def make_cluster(polling=True, nodes=2, ppn=2):
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * 4, polling=polling)
    return Cluster(cfg)


def null_handler(cost=10.0, reply=512):
    def handler(server, at):
        return "payload", cost, reply
    return handler


class TestRequestTiming:
    def test_polled_request_timeline(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        requester = cluster.processors[0]
        requester.clock = 100.0
        payload, done = engine.explicit_request(
            requester, cluster.nodes[1], null_handler(cost=10.0, reply=512))
        assert payload == "payload"
        costs = cluster.config.costs
        expected = (100.0 + costs.mc_latency + costs.poll_dispatch
                    + costs.handler_entry + 10.0
                    + 512 / costs.mc_link_bandwidth + costs.mc_latency)
        assert done == pytest.approx(expected)

    def test_interrupt_mode_costs_more(self):
        done_times = {}
        for polling in (True, False):
            cluster = make_cluster(polling=polling)
            engine = RequestEngine(cluster)
            requester = cluster.processors[0]
            _, done = engine.explicit_request(
                requester, cluster.nodes[1], null_handler())
            done_times[polling] = done
        # Inter-node interrupts (445 us) dwarf the polling dispatch (4 us).
        assert done_times[False] > done_times[True] + 400.0

    def test_zero_reply_still_pays_latency(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        requester = cluster.processors[0]
        _, done = engine.explicit_request(
            requester, cluster.nodes[1], null_handler(reply=0))
        assert done > cluster.config.costs.mc_latency


class TestServiceSerialization:
    def test_requests_to_one_node_serialize(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        _, d1 = engine.explicit_request(p0, cluster.nodes[1],
                                        null_handler(cost=100.0))
        _, d2 = engine.explicit_request(p1, cluster.nodes[1],
                                        null_handler(cost=100.0))
        # Second request queues behind the first handler's service time.
        assert d2 >= d1 + 90.0

    def test_server_charged_for_handler(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        requester = cluster.processors[0]
        engine.explicit_request(requester, cluster.nodes[1],
                                null_handler(cost=50.0))
        served = [p for p in cluster.nodes[1].processors
                  if p.stats.counters["requests_served"]]
        assert len(served) == 1
        assert served[0].stats.buckets["protocol"] >= 50.0

    def test_round_robin_server_choice(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        requester = cluster.processors[0]
        for _ in range(4):
            engine.explicit_request(requester, cluster.nodes[1],
                                    null_handler())
        counts = [p.stats.counters["requests_served"]
                  for p in cluster.nodes[1].processors]
        assert counts == [2, 2]

    def test_targeted_request_hits_specific_processor(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        requester = cluster.processors[0]
        target = cluster.nodes[1].processors[1]
        for _ in range(3):
            engine.explicit_request(requester, cluster.nodes[1],
                                    null_handler(),
                                    target_proc=target.global_id)
        assert target.stats.counters["requests_served"] == 3

    def test_handler_sees_service_begin_time(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        requester = cluster.processors[0]
        requester.clock = 50.0
        seen = {}

        def handler(server, at):
            seen["at"] = at
            return None, 1.0, 0

        engine.explicit_request(requester, cluster.nodes[1], handler)
        costs = cluster.config.costs
        assert seen["at"] == pytest.approx(
            50.0 + costs.mc_latency + costs.poll_dispatch, abs=1e-3)

    def test_traffic_accounted(self):
        cluster = make_cluster()
        engine = RequestEngine(cluster)
        engine.explicit_request(cluster.processors[0], cluster.nodes[1],
                                null_handler(reply=512), category="page")
        assert cluster.mc.traffic["request"] > 0
        assert cluster.mc.traffic["page"] == 512

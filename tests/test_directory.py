"""Unit tests for the global directory and write-notice structures.

The directory now has two entry representations (DESIGN.md §15): the
sparse :class:`DirEntry` (default, O(sharers)) and the dense
:class:`DenseDirEntry` (the paper's literal one-word-per-owner layout,
kept behind ``CASHMERE_DENSE_DIR`` for differential testing). The
hypothesis differential test at the bottom drives both through
randomized update sequences and asserts they agree on every observable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.errors import ProtocolError
from repro.protocol.directory import (NO_HOLDER, DenseDirEntry,
                                      DirectoryLockModel, DirEntry, DirWord,
                                      GlobalDirectory, PageMeta)
from repro.protocol.writenotice import NLEList, NoticeBoard, PerProcNotices
from repro.vm.page import Perm


def small_config(**kw):
    kw.setdefault("nodes", 4)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("page_bytes", 512)
    kw.setdefault("shared_bytes", 512 * 16)
    return MachineConfig(**kw)


def entry_pair(num_owners=4):
    """A fresh (sparse, dense) entry pair over the same owner space."""
    return (DirEntry(home_owner=0),
            DenseDirEntry(home_owner=0, num_owners=num_owners))


class TestDirEntry:
    def test_sharers(self):
        entry = DirEntry(home_owner=0)
        entry.set_perm(2, Perm.WRITE)
        entry.set_perm(0, Perm.READ)
        assert entry.sharers() == [0, 2]

    def test_set_perm_invalid_unshares(self):
        entry = DirEntry(home_owner=0)
        entry.set_perm(1, Perm.READ)
        entry.set_perm(1, Perm.INVALID)
        assert entry.sharers() == []
        assert entry.perm_of(1) is Perm.INVALID

    def test_single_exclusive_holder(self):
        entry = DirEntry(home_owner=0)
        entry.set_perm(1, Perm.WRITE)
        entry.set_excl(1, 5)
        assert entry.exclusive_holder() == (1, 5)
        assert entry.excl_of(1) == 5
        assert entry.excl_of(0) == NO_HOLDER

    def test_no_holder(self):
        entry = DirEntry(home_owner=0)
        assert entry.exclusive_holder() is None

    def test_two_holders_is_corruption(self):
        entry = DirEntry(home_owner=0)
        entry.set_excl(1, 1)
        with pytest.raises(ProtocolError, match="corrupt"):
            entry.set_excl(2, 2)

    def test_dense_preset_words_corruption(self):
        entry = DenseDirEntry(home_owner=0,
                              words=[DirWord(Perm.WRITE, 1),
                                     DirWord(Perm.WRITE, 2)])
        with pytest.raises(ProtocolError, match="corrupt"):
            entry.exclusive_holder()

    def test_clear_excl_wrong_owner_is_noop(self):
        for entry in entry_pair():
            entry.set_excl(1, 7)
            entry.clear_excl(0)
            assert entry.exclusive_holder() == (1, 7)
            entry.clear_excl(1)
            assert entry.exclusive_holder() is None


class TestGlobalDirectory:
    def test_round_robin_home_per_superpage(self):
        cfg = small_config(superpage_pages=2)
        d = GlobalDirectory(cfg, num_owners=4)
        homes = [d.home(p) for p in range(cfg.num_pages)]
        # pages 0,1 -> owner 0; 2,3 -> owner 1; ...
        assert homes[:8] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_dense_flag_selects_representation(self):
        cfg = small_config()
        assert isinstance(GlobalDirectory(cfg, 4).entry(0), DirEntry)
        assert isinstance(GlobalDirectory(cfg, 4, dense=True).entry(0),
                          DenseDirEntry)

    def test_lock_free_update_cost_constant(self):
        cfg = small_config()
        d = GlobalDirectory(cfg, 4)

        class P:
            clock = 0.0

        assert d.update_cost(P()) == cfg.costs.dir_update

    def test_global_lock_model_serializes(self):
        cfg = small_config()
        model = DirectoryLockModel(cfg)
        c1 = model.update_cost(0.0)
        c2 = model.update_cost(0.0)  # queued behind the first
        assert c1 == pytest.approx(16.0)
        assert c2 == pytest.approx(32.0)

    def test_broadcast_bytes(self):
        cfg = small_config()
        assert GlobalDirectory(cfg, 8).broadcast_bytes() == 32

    @pytest.mark.parametrize("dense", [False, True])
    def test_occupancy(self, dense):
        cfg = small_config()
        d = GlobalDirectory(cfg, 4, dense=dense)
        d.entry(0).set_perm(1, Perm.READ)
        d.entry(0).set_perm(2, Perm.READ)
        d.entry(1).set_perm(3, Perm.WRITE)
        d.entry(2).set_perm(0, Perm.WRITE)
        d.entry(2).set_excl(0, 0)
        per_owner, histogram = d.occupancy()
        assert per_owner == [1, 1, 1, 1]
        assert histogram == [cfg.num_pages - 3, 1, 1, 1]


# ---------------------------------------------------------------------------
# Differential property: sparse vs dense across random update sequences.
# ---------------------------------------------------------------------------

N_OWNERS = 6

_ops = st.one_of(
    st.tuples(st.just("set_perm"), st.integers(0, N_OWNERS - 1),
              st.sampled_from([Perm.INVALID, Perm.READ, Perm.WRITE])),
    st.tuples(st.just("set_excl"), st.integers(0, N_OWNERS - 1),
              st.integers(0, 23)),
    st.tuples(st.just("clear_excl"), st.integers(0, N_OWNERS - 1),
              st.just(0)),
)


def _observe(entry):
    return {
        "perms": [int(entry.perm_of(o)) for o in range(N_OWNERS)],
        "sharers": entry.sharers(),
        "other": [entry.has_other_sharer(o) for o in range(N_OWNERS)],
        "holder": entry.exclusive_holder(),
        "excl_of": [entry.excl_of(o) for o in range(N_OWNERS)],
        "state": entry.state_tuple(),
    }


@settings(max_examples=200, deadline=None)
@given(st.lists(_ops, max_size=40))
def test_sparse_and_dense_entries_agree(ops):
    """Any update sequence leaves the two forms indistinguishable: same
    permissions, sharer sets, holders, occupancy, and state digests —
    including raising corruption errors at exactly the same step."""
    sparse = DirEntry(home_owner=0)
    dense = DenseDirEntry(home_owner=0, num_owners=N_OWNERS)
    for op, owner, arg in ops:
        results = []
        for entry in (sparse, dense):
            try:
                getattr(entry, op)(*((owner, arg) if op != "clear_excl"
                                     else (owner,)))
                results.append(None)
            except ProtocolError:
                results.append("corrupt")
        assert results[0] == results[1]
        assert _observe(sparse) == _observe(dense)
    per_s, hist_s = [0] * N_OWNERS, [0, 0, 0, 0]
    per_d, hist_d = [0] * N_OWNERS, [0, 0, 0, 0]
    hist_s[sparse.occupancy_into(per_s)] += 1
    hist_d[dense.occupancy_into(per_d)] += 1
    assert (per_s, hist_s) == (per_d, hist_d)


class TestNoticeBoard:
    def test_post_and_collect_respects_visibility(self):
        board = NoticeBoard(0, 4)
        board.post(1, page=7, visible_at=10.0)
        board.post(1, page=8, visible_at=20.0)
        got = board.collect(upto=15.0)
        assert [n.page for n in got] == [7]
        assert board.pending() == 1
        got = board.collect(upto=25.0)
        assert [n.page for n in got] == [8]

    def test_bins_consumed_in_order(self):
        board = NoticeBoard(0, 3)
        board.post(1, 1, 5.0)
        board.post(2, 2, 3.0)
        got = board.collect(10.0)
        assert [(n.from_owner, n.page) for n in got] == [(1, 1), (2, 2)]

    def test_visible_notice_behind_late_head_still_delivered(self):
        # Distinct processors of one node post to the same bin at
        # unordered simulated clocks; MC write ordering is per source
        # processor, not per node, so a visible notice parked behind a
        # not-yet-visible head must still come out (missing it lets the
        # poster's lock successor read a stale page).
        board = NoticeBoard(0, 2)
        board.post(1, 1, 20.0)
        board.post(1, 2, 10.0)
        got = board.collect(15.0)
        assert [(n.page, n.visible_at) for n in got] == [(2, 10.0)]
        assert board.pending() == 1
        got = board.collect(25.0)
        assert [(n.page, n.visible_at) for n in got] == [(1, 20.0)]
        assert board.pending() == 0


class TestPerProcNotices:
    def test_bitmap_dedup(self):
        n = PerProcNotices()
        assert n.add(5) is True
        assert n.add(5) is False
        assert n.redundant_drops == 1
        assert len(n) == 1

    def test_drain_clears(self):
        n = PerProcNotices()
        n.add(1)
        n.add(2)
        assert n.drain() == [1, 2]
        assert len(n) == 0
        assert n.add(1) is True  # bitmap cleared too


class TestNLEList:
    def test_take_all_sorted_and_clears(self):
        nle = NLEList()
        nle.add(5)
        nle.add(2)
        nle.add(5)
        assert nle.take_all() == [2, 5]
        assert len(nle) == 0


class TestPageMeta:
    def test_defaults(self):
        meta = PageMeta()
        assert meta.flush_ts == -1
        assert meta.update_ts == -1
        assert meta.wn_ts == -1
        assert meta.twin is None

"""Unit tests for the global directory and write-notice structures."""

import pytest

from repro.config import MachineConfig
from repro.errors import ProtocolError
from repro.protocol.directory import (DirectoryLockModel, DirEntry, DirWord,
                                      GlobalDirectory, PageMeta)
from repro.protocol.writenotice import NLEList, NoticeBoard, PerProcNotices
from repro.vm.page import Perm


def small_config(**kw):
    kw.setdefault("nodes", 4)
    kw.setdefault("procs_per_node", 1)
    kw.setdefault("page_bytes", 512)
    kw.setdefault("shared_bytes", 512 * 16)
    return MachineConfig(**kw)


class TestDirEntry:
    def test_sharers(self):
        entry = DirEntry(words=[DirWord(Perm.READ), DirWord(),
                                DirWord(Perm.WRITE)], home_owner=0)
        assert entry.sharers() == [0, 2]

    def test_single_exclusive_holder(self):
        entry = DirEntry(words=[DirWord(), DirWord(Perm.WRITE, 5)],
                         home_owner=0)
        assert entry.exclusive_holder() == (1, 5)

    def test_no_holder(self):
        entry = DirEntry(words=[DirWord(), DirWord()], home_owner=0)
        assert entry.exclusive_holder() is None

    def test_two_holders_is_corruption(self):
        entry = DirEntry(words=[DirWord(Perm.WRITE, 1),
                                DirWord(Perm.WRITE, 2)], home_owner=0)
        with pytest.raises(ProtocolError, match="corrupt"):
            entry.exclusive_holder()


class TestGlobalDirectory:
    def test_round_robin_home_per_superpage(self):
        cfg = small_config(superpage_pages=2)
        d = GlobalDirectory(cfg, num_owners=4)
        homes = [d.home(p) for p in range(cfg.num_pages)]
        # pages 0,1 -> owner 0; 2,3 -> owner 1; ...
        assert homes[:8] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_lock_free_update_cost_constant(self):
        cfg = small_config()
        d = GlobalDirectory(cfg, 4)

        class P:
            clock = 0.0

        assert d.update_cost(P()) == cfg.costs.dir_update

    def test_global_lock_model_serializes(self):
        cfg = small_config()
        model = DirectoryLockModel(cfg)
        c1 = model.update_cost(0.0)
        c2 = model.update_cost(0.0)  # queued behind the first
        assert c1 == pytest.approx(16.0)
        assert c2 == pytest.approx(32.0)

    def test_broadcast_bytes(self):
        cfg = small_config()
        assert GlobalDirectory(cfg, 8).broadcast_bytes() == 32


class TestNoticeBoard:
    def test_post_and_collect_respects_visibility(self):
        board = NoticeBoard(0, 4)
        board.post(1, page=7, visible_at=10.0)
        board.post(1, page=8, visible_at=20.0)
        got = board.collect(upto=15.0)
        assert [n.page for n in got] == [7]
        assert board.pending() == 1
        got = board.collect(upto=25.0)
        assert [n.page for n in got] == [8]

    def test_bins_consumed_in_order(self):
        board = NoticeBoard(0, 3)
        board.post(1, 1, 5.0)
        board.post(2, 2, 3.0)
        got = board.collect(10.0)
        assert [(n.from_owner, n.page) for n in got] == [(1, 1), (2, 2)]

    def test_visibility_prefix_only(self):
        # An early-visible notice behind a late one stays queued (in-order
        # bins, like the hardware's write ordering).
        board = NoticeBoard(0, 2)
        board.post(1, 1, 20.0)
        board.post(1, 2, 10.0)
        assert board.collect(15.0) == []


class TestPerProcNotices:
    def test_bitmap_dedup(self):
        n = PerProcNotices()
        assert n.add(5) is True
        assert n.add(5) is False
        assert n.redundant_drops == 1
        assert len(n) == 1

    def test_drain_clears(self):
        n = PerProcNotices()
        n.add(1)
        n.add(2)
        assert n.drain() == [1, 2]
        assert len(n) == 0
        assert n.add(1) is True  # bitmap cleared too


class TestNLEList:
    def test_take_all_sorted_and_clears(self):
        nle = NLEList()
        nle.add(5)
        nle.add(2)
        nle.add(5)
        assert nle.take_all() == [2, 5]
        assert len(nle) == 0


class TestPageMeta:
    def test_defaults(self):
        meta = PageMeta()
        assert meta.flush_ts == -1
        assert meta.update_ts == -1
        assert meta.wn_ts == -1
        assert meta.twin is None

"""Tests for Memory Channel locks, barriers, and flags.

These run against a real cluster + protocol instance with scripted
workers, checking mutual exclusion, barrier semantics, and the
release/acquire consistency hooks.
"""

import pytest

from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier, FlagSet, MCLock


def make_cluster(nodes=2, ppn=2, protocol="2L"):
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * 8)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    return cluster, proto


def run_workers(cluster, gen_factory):
    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, gen_factory(proc), f"p{proc.global_id}")
    group.run()


class TestMCLock:
    @pytest.mark.parametrize("protocol", ["2L", "1LD"])
    def test_mutual_exclusion(self, protocol):
        cluster, proto = make_cluster(2, 2, protocol)
        lock = MCLock(cluster, proto, 0)
        state = {"inside": 0, "max_inside": 0, "entries": 0}

        def worker(proc):
            for _ in range(5):
                yield from lock.acquire(proc)
                state["inside"] += 1
                state["entries"] += 1
                state["max_inside"] = max(state["max_inside"],
                                          state["inside"])
                yield Compute(10.0)
                state["inside"] -= 1
                lock.release(proc)
                yield Compute(5.0)

        run_workers(cluster, worker)
        assert state["entries"] == 5 * cluster.num_procs
        assert state["max_inside"] == 1

    def test_uncontended_cost_near_paper(self):
        # Table 1: ~11 us for one-level locks, ~19 us for two-level.
        for protocol, expected in [("1LD", 11.0), ("2L", 19.0)]:
            cluster, proto = make_cluster(2, 2, protocol)
            lock = MCLock(cluster, proto, 0)
            proc = cluster.processors[0]

            def worker(p):
                yield from lock.acquire(p)
                lock.release(p)

            group = ProcessGroup(cluster.sim)
            group.spawn(proc, worker(proc), "p0")
            group.run()
            assert proc.clock == pytest.approx(expected, rel=0.5)

    def test_lock_acquire_counter(self):
        cluster, proto = make_cluster(1, 2)
        lock = MCLock(cluster, proto, 0)

        def worker(proc):
            yield from lock.acquire(proc)
            lock.release(proc)

        run_workers(cluster, worker)
        total = sum(p.stats.counters["lock_acquires"]
                    for p in cluster.processors)
        assert total == 2

    def test_release_without_hold_raises(self):
        cluster, proto = make_cluster(1, 1)
        lock = MCLock(cluster, proto, 0)
        with pytest.raises(SimulationError, match="does not hold"):
            lock.release(cluster.processors[0])


class TestBarrier:
    @pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
    def test_no_one_departs_early(self, protocol):
        cluster, proto = make_cluster(2, 2, protocol)
        barrier = Barrier(cluster, proto)
        arrived = []
        departed = []

        def worker(proc):
            yield Compute(10.0 * (proc.global_id + 1))
            arrived.append(proc.global_id)
            yield from barrier.wait(proc)
            departed.append((proc.global_id, len(arrived)))

        run_workers(cluster, worker)
        # Every departure saw all four arrivals.
        assert all(n == 4 for _, n in departed)

    def test_episode_counting(self):
        cluster, proto = make_cluster(2, 1)
        barrier = Barrier(cluster, proto)

        def worker(proc):
            for _ in range(3):
                yield Compute(1.0)
                yield from barrier.wait(proc)

        run_workers(cluster, worker)
        assert barrier.episodes == 3

    def test_reusable_across_episodes_with_skew(self):
        cluster, proto = make_cluster(2, 2)
        barrier = Barrier(cluster, proto)
        log = []

        def worker(proc):
            for i in range(4):
                yield Compute(float((proc.global_id * 7 + i * 3) % 11 + 1))
                yield from barrier.wait(proc)
                log.append((i, proc.global_id))

        run_workers(cluster, worker)
        # All rank-i entries appear before any rank-(i+1) entries.
        rounds = [i for i, _ in log]
        assert rounds == sorted(rounds)

    def test_departure_after_last_arrival_time(self):
        cluster, proto = make_cluster(2, 1)
        barrier = Barrier(cluster, proto)
        clocks = {}

        def worker(proc):
            yield Compute(100.0 if proc.global_id == 1 else 1.0)
            yield from barrier.wait(proc)
            clocks[proc.global_id] = proc.clock

        run_workers(cluster, worker)
        assert clocks[0] >= 100.0  # the early arriver waited


class TestFlagSet:
    def test_flag_ordering(self):
        cluster, proto = make_cluster(2, 1)
        flags = FlagSet(cluster, proto, "f", 4)
        log = []

        def worker(proc):
            if proc.global_id == 0:
                yield Compute(50.0)
                log.append("set")
                flags.set(proc, 2)
            else:
                yield from flags.wait(proc, 2)
                log.append("saw")

        run_workers(cluster, worker)
        assert log == ["set", "saw"]

    def test_wait_on_already_set_flag(self):
        cluster, proto = make_cluster(1, 2)
        flags = FlagSet(cluster, proto, "f", 1)
        order = []

        def worker(proc):
            if proc.global_id == 0:
                flags.set(proc, 0)
                order.append("set")
            else:
                yield Compute(100.0)
                yield from flags.wait(proc, 0)
                order.append("saw")
            yield Compute(1.0)

        run_workers(cluster, worker)
        assert order == ["set", "saw"]

    def test_flag_counts_as_lock_acquire(self):
        cluster, proto = make_cluster(2, 1)
        flags = FlagSet(cluster, proto, "f", 1)

        def worker(proc):
            if proc.global_id == 0:
                flags.set(proc, 0)
                yield Compute(1.0)
            else:
                yield from flags.wait(proc, 0)

        run_workers(cluster, worker)
        p1 = cluster.processors[1]
        assert p1.stats.counters["lock_acquires"] == 1
        assert p1.stats.counters["flag_acquires"] == 1

    def test_monotonic_values(self):
        cluster, proto = make_cluster(2, 1)
        flags = FlagSet(cluster, proto, "f", 1)
        seen = []

        def worker(proc):
            if proc.global_id == 0:
                for v in (1, 2, 3):
                    yield Compute(10.0)
                    flags.set(proc, 0, v)
            else:
                yield from flags.wait(proc, 0, 3)
                seen.append(flags.peek(proc, 0))

        run_workers(cluster, worker)
        assert seen == [3]

"""CFG builder edge cases (:mod:`repro.lint.cfg`).

The statement CFG is the shared front end of the lint's lockset pass
and the lowering pipeline's stage-1 proof, so its corner cases matter
twice. These tests pin the shapes kernels actually exhibit: nested
loops with ``break``/``continue`` (which loop does each one target?),
``try``/``finally`` around sync points (does the finally body stay on
every path?), and generator kernels that ``return`` mid-loop (is the
code after the loop still reachable through the normal exit?).
"""

import ast
import textwrap

import pytest

from repro.errors import LoweringError
from repro.lint.cfg import build_cfg, node_calls
from repro.lower import analyze_region


def _cfg(source):
    func = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(func)


def _node(cfg, marker):
    """The CFG node whose statement contains ``marker`` — the smallest
    one, so a marker inside a loop body picks the body statement, not
    the enclosing header (header nodes unparse with their whole body)."""
    hits = [n for n in cfg.nodes
            if n.stmt is not None and marker in ast.unparse(n.stmt)]
    assert hits, f"no node matching {marker!r}"
    return min(hits, key=lambda n: len(ast.unparse(n.stmt)))


def _reachable(cfg):
    return cfg.reachable_from({cfg.entry})


# --- nested loops with break/continue ---------------------------------------

NESTED = '''
def f():
    before = 1
    for i in range(3):
        outer_top = 1
        for j in range(3):
            if j:
                break
            if i:
                continue
            inner_tail = 1
        outer_tail = 1
    after = 1
'''


def test_nested_break_targets_inner_loop_only():
    cfg = _cfg(NESTED)
    seen = _reachable(cfg)
    # Everything is reachable: break leaves only the inner loop, so the
    # outer loop's tail still runs.
    for marker in ("before", "outer_top", "inner_tail", "outer_tail",
                   "after"):
        assert _node(cfg, marker) in seen, marker
    # break's successor is the code *after* the inner loop, not the
    # inner loop header and not the function exit.
    brk = _node(cfg, "break")
    assert _node(cfg, "outer_tail") in brk.succs
    assert cfg.exit not in brk.succs


def test_nested_continue_jumps_to_inner_header():
    cfg = _cfg(NESTED)
    cont = _node(cfg, "continue")
    inner = _node(cfg, "for j")
    outer = _node(cfg, "for i")
    assert inner in cont.succs
    assert outer not in cont.succs
    # continue skips the rest of the inner body: inner_tail is not a
    # direct successor (it stays reachable via the no-continue path).
    assert _node(cfg, "inner_tail") not in cont.succs


def test_while_true_without_break_makes_tail_unreachable():
    cfg = _cfg('''
def f():
    while True:
        spin = 1
    tail = 1
''')
    seen = _reachable(cfg)
    assert _node(cfg, "spin") in seen
    assert _node(cfg, "tail = 1") not in seen


def test_while_true_with_break_keeps_tail_reachable():
    cfg = _cfg('''
def f():
    while True:
        if done():
            break
        spin = 1
    tail = 1
''')
    seen = _reachable(cfg)
    assert _node(cfg, "tail = 1") in seen


# --- try/finally around sync -------------------------------------------------

def test_finally_runs_on_both_paths():
    cfg = _cfg('''
def f():
    try:
        risky = 1
    except ValueError:
        handled = 1
    finally:
        cleanup = 1
    after = 1
''')
    seen = _reachable(cfg)
    fin = _node(cfg, "cleanup")
    assert fin in seen
    # The finally body postdominates both the try body and the handler:
    # each reaches cleanup, and `after` is only entered through it.
    risky, handled = _node(cfg, "risky"), _node(cfg, "handled")
    assert fin in cfg.reachable_from({risky})
    assert fin in cfg.reachable_from({handled})
    assert _node(cfg, "after").preds == [fin]


def test_handler_entered_from_anywhere_in_try_body():
    cfg = _cfg('''
def f():
    try:
        a = 1
        b = 2
    except OSError:
        h = 1
''')
    h = _node(cfg, "h = 1").preds[0]  # the handler header node
    entries = set(h.preds)
    assert {_node(cfg, "a = 1"), _node(cfg, "b = 2")} <= entries


def test_sync_inside_try_finally_blocks_lowering():
    """Stage 1 must see through try/finally: a barrier in either the
    body or the finally clause keeps the region interpreter-only."""
    for where in ("try", "finally"):
        body = '''
def interp(self, env):
    for r in self._rows:
        try:
            row = env.get_block(self._src, r, r + 8)
        finally:
            pass
        yield self.cost
'''
        poisoned = body.replace(
            "pass" if where == "finally" else
            "row = env.get_block(self._src, r, r + 8)",
            "x = env.get_block(self._src, r, r + 8)\n"
            "            yield from env.barrier()")
        func = ast.parse(textwrap.dedent(poisoned)).body[0]
        with pytest.raises(LoweringError):
            analyze_region(func)


def test_sync_free_try_finally_is_lowerable():
    func = ast.parse(textwrap.dedent('''
def interp(self, env):
    for r in self._rows:
        try:
            row = env.get_block(self._src, r, r + 8)
        finally:
            env.set_block(self._dst, r, row)
        yield self.cost
''')).body[0]
    report = analyze_region(func)
    assert report.reads == ("self._src",)
    assert report.writes == ("self._dst",)


# --- generators that return mid-loop -----------------------------------------

def test_return_mid_loop_keeps_tail_reachable():
    """A bare ``return`` in a generator ends iteration early; the code
    after the loop must stay reachable via the normal loop exit, and
    the return node must be wired to the function exit."""
    cfg = _cfg('''
def gen(self, env):
    for r in self._rows:
        if r > self._limit:
            return
        yield self.cost
    tail = 1
''')
    seen = _reachable(cfg)
    ret = _node(cfg, "return")
    assert ret in seen
    assert _node(cfg, "tail = 1") in seen
    assert cfg.exit in ret.succs
    # Nothing falls through a return: its only successor is the exit.
    assert ret.succs == [cfg.exit]


def test_return_mid_loop_region_still_analyzable():
    """Early return is a legal region shape (the kernel just covers
    fewer steps); stage 1 accepts it and still sees accesses on the
    paths around it."""
    func = ast.parse(textwrap.dedent('''
def interp(self, env):
    for r in self._rows:
        if r > self._limit:
            return
        row = env.get_block(self._src, r, r + 8)
        env.set_block(self._dst, r, row)
        yield self.cost
''')).body[0]
    report = analyze_region(func)
    assert report.reads == ("self._src",)
    assert report.writes == ("self._dst",)
    assert report.yields >= 1


def test_code_after_unconditional_return_is_unreachable():
    cfg = _cfg('''
def f():
    return 1
    dead = 1
''')
    seen = _reachable(cfg)
    assert _node(cfg, "dead") not in seen


# --- with-statement item nodes -----------------------------------------------

WITH_TWO = '''
def f():
    before = 1
    with open_a() as a, open_b() as b:
        body = 1
    after = 1
'''


def test_with_items_get_one_node_each_in_entry_order():
    cfg = _cfg(WITH_TWO)
    items = [n for n in cfg.nodes if n.item is not None]
    assert [ast.unparse(n.item.context_expr) for n in items] == \
        ["open_a()", "open_b()"]
    first, second = items
    # Managers chain left to right: before -> open_a -> open_b -> body.
    assert second in first.succs
    assert first in _node(cfg, "before").succs
    assert _node(cfg, "body = 1").preds == [second]
    # Both item nodes share the with statement itself.
    assert first.stmt is second.stmt


def test_with_item_nodes_attribute_calls_exactly_once():
    cfg = _cfg(WITH_TWO)
    counts = {}
    for n in cfg.nodes:
        for call in node_calls(n):
            key = ast.unparse(call)
            counts[key] = counts.get(key, 0) + 1
    assert counts == {"open_a()": 1, "open_b()": 1}


def test_handler_node_owns_only_its_exception_type():
    """An except-handler node evaluates its exception type — the
    handler body's calls belong to the body statements' own nodes."""
    cfg = _cfg('''
def f():
    try:
        risky()
    except pick_error():
        recover()
''')
    per_node = [sorted(ast.unparse(c) for c in node_calls(n))
                for n in cfg.nodes if node_calls(n)]
    assert sorted(per_node) == [["pick_error()"], ["recover()"],
                                ["risky()"]]


def test_with_region_yields_counted_exactly_once():
    """The stage-1 proof attributes each yield to exactly one node —
    no double count at loop or ``with`` headers."""
    func = ast.parse(textwrap.dedent('''
def interp(self, env):
    for r in self._rows:
        with self._guard():
            row = env.get_block(self._src, r, r + 8)
            env.set_block(self._dst, r, row)
        yield self.cost
''')).body[0]
    report = analyze_region(func)
    assert report.yields == 1
    assert report.reads == ("self._src",)
    assert report.writes == ("self._dst",)


# --- comprehension scopes in the taint analysis ------------------------------

def _lint(source):
    from repro.lint import lint_source
    active, _ = lint_source(textwrap.dedent(source), "x.py")
    return {d.rule for d in active}


def test_comprehension_target_shadows_outer_taint():
    """A comprehension-local loop variable is its own binding: reusing
    the name of a rank-tainted outer variable must not make the
    comprehension's value rank-dependent (no phantom A003)."""
    rules = _lint('''
def worker(env, params):
    data = env.arr("data")
    for i in range(env.rank):
        env.set(data, i, 0.0)
    vals = [i * 2 for i in range(3)]
    if vals[0] < 1:
        yield from env.barrier()
''')
    assert "A003" not in rules


def test_comprehension_over_tainted_iterable_still_diverges():
    """The scope fix must not lose real taint: iterating a
    rank-dependent range taints the comprehension's result."""
    rules = _lint('''
def worker(env, params):
    data = env.arr("data")
    vals = [j * 2 for j in range(env.rank)]
    if len(vals) > 1:
        yield from env.barrier()
''')
    assert "A003" in rules

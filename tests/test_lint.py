"""The static analyzer's own contract tests.

Covers, per ISSUE: every shipped rule ID firing on its bad fixture and
staying quiet on its good twin, suppression semantics, the JSON schema
round-trip, the CLI exit-code contract (0 clean / 1 findings / 2 usage
error), byte-identical output across runs, and — the acceptance bar —
the repository's own tree linting clean.
"""

import json
import os

import pytest

from repro.experiments.runner import main as cli_main
from repro.lint import (RULES, SCHEMA, Diagnostic, LintResult, UsageError,
                        lint_source, run)
from repro.lint.api import resolve_select

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO, "tests", "fixtures", "lint")

#: Rule ID -> fixture basename (A001 -> a001.py).
FIXTURE_RULES = sorted(RULES)


def _fixture(kind: str, rule: str) -> str:
    return os.path.join(FIXTURES, kind, f"{rule.lower()}.py")


# --- rule coverage over the fixture corpus ------------------------------------


@pytest.mark.parametrize("rule", FIXTURE_RULES)
def test_bad_fixture_triggers_rule(rule):
    path = _fixture("bad", rule)
    if not os.path.exists(path):  # D105's good twin is config.py
        pytest.fail(f"no bad fixture for {rule}")
    result = run([path])
    fired = {d.rule for d in result.diagnostics}
    assert rule in fired, \
        f"{rule} did not fire on its bad fixture (got {fired})"
    assert result.exit_code == 1


@pytest.mark.parametrize("rule", FIXTURE_RULES)
def test_good_fixture_is_clean(rule):
    if rule == "D105":
        # Sanctioned-module exemption: the good twin is named config.py.
        path = os.path.join(FIXTURES, "good", "config.py")
    else:
        path = _fixture("good", rule)
    result = run([path])
    assert result.diagnostics == [], result.format_text()
    assert result.exit_code == 0


@pytest.mark.parametrize("rule",
                         [r for r in FIXTURE_RULES if r.startswith("K")])
def test_k_rule_suppressible(rule):
    """Every K finding honors the per-line ignore comment at the line
    it is reported on (fixtures keep those report sites single-line)."""
    with open(_fixture("bad", rule)) as fh:
        lines = fh.read().splitlines()
    result = run([_fixture("bad", rule)])
    for d in result.diagnostics:
        if d.rule == rule:
            lines[d.line - 1] += f"  # cashmere: ignore[{rule}]"
    active, suppressed = lint_source("\n".join(lines) + "\n", "x.py",
                                     frozenset({rule}))
    assert active == []
    assert rule in {d.rule for d in suppressed}


def test_every_rule_has_both_fixtures():
    bad = {n[:-3].upper() for n in os.listdir(os.path.join(FIXTURES, "bad"))
           if n.endswith(".py")}
    assert bad == set(RULES)


# --- suppression semantics ----------------------------------------------------

RACY = """
def worker(env, params):
    data = env.arr("data")
    yield from env.barrier()
    env.set(data, 0, 1.0){comment}
    yield from env.barrier()
"""


def test_suppression_moves_finding_aside():
    active, suppressed = lint_source(
        RACY.format(comment="  # cashmere: ignore[A005]"), "x.py")
    assert active == []
    assert [d.rule for d in suppressed] == ["A005"]


def test_bare_ignore_suppresses_everything():
    active, suppressed = lint_source(
        RACY.format(comment="  # cashmere: ignore"), "x.py")
    assert active == []
    assert [d.rule for d in suppressed] == ["A005"]


def test_wrong_rule_in_ignore_does_not_suppress():
    active, suppressed = lint_source(
        RACY.format(comment="  # cashmere: ignore[D101]"), "x.py")
    assert [d.rule for d in active] == ["A005"]
    assert suppressed == []


def test_suppressed_findings_still_counted():
    result = LintResult()
    _, result.suppressed = lint_source(
        RACY.format(comment="  # cashmere: ignore"), "x.py")
    result.files.append("x.py")
    assert result.finish().counts()["suppressed"] == 1
    assert result.exit_code == 0


# --- --select -----------------------------------------------------------------


def test_select_exact_and_prefix():
    assert resolve_select("A001") == frozenset({"A001"})
    assert resolve_select("D") == frozenset(
        r for r in RULES if r.startswith("D"))
    combo = resolve_select("A001,D")
    assert "A001" in combo and "D101" in combo and "A002" not in combo


def test_select_unknown_rule_is_usage_error():
    with pytest.raises(UsageError):
        resolve_select("Z999")


def test_select_filters_findings():
    result = run([_fixture("bad", "D102")], select="A")
    assert result.diagnostics == []
    result = run([_fixture("bad", "D102")], select="D102")
    assert {d.rule for d in result.diagnostics} == {"D102"}


# --- JSON schema --------------------------------------------------------------


def test_json_document_shape_and_roundtrip():
    result = run([_fixture("bad", "A001")])
    doc = json.loads(result.format_json())
    assert doc["schema"] == SCHEMA
    assert set(doc) == {"schema", "diagnostics", "suppressed", "summary"}
    assert set(doc["summary"]) == {"files", "errors", "warnings",
                                   "suppressed"}
    for entry in doc["diagnostics"]:
        assert set(entry) == {"rule", "slug", "engine", "severity",
                              "path", "line", "col", "message"}
        rebuilt = Diagnostic.from_json(entry)
        assert rebuilt.to_json() == entry


def test_parse_error_exits_one_not_crash():
    result = run([_fixture("bad", "E001")])
    assert [d.rule for d in result.diagnostics] == ["E001"]
    assert result.exit_code == 1


# --- determinism of the linter itself -----------------------------------------


def test_output_byte_identical_across_runs():
    paths = [os.path.join(FIXTURES, "bad")]
    first, second = run(paths), run(paths)
    assert first.format_text() == second.format_text()
    assert first.format_json() == second.format_json()


def test_discovery_order_independent_of_arguments():
    a = run([os.path.join(FIXTURES, "bad"),
             os.path.join(FIXTURES, "good")])
    b = run([os.path.join(FIXTURES, "good"),
             os.path.join(FIXTURES, "bad")])
    assert a.format_text() == b.format_text()


# --- CLI exit-code contract ---------------------------------------------------


def test_cli_exit_codes(capsys):
    assert cli_main(["lint", _fixture("good", "A001")]) == 0
    assert cli_main(["lint", _fixture("bad", "A005")]) == 1
    assert cli_main(["lint", "--select", "Z999",
                     _fixture("bad", "A005")]) == 2
    assert cli_main(["lint", os.path.join(FIXTURES, "no-such-dir")]) == 2
    capsys.readouterr()


def test_cli_json_format(capsys):
    code = cli_main(["lint", "--format", "json", _fixture("bad", "A006")])
    out = capsys.readouterr().out
    doc = json.loads(out)
    assert code == 1
    assert doc["schema"] == SCHEMA
    assert doc["summary"]["errors"] == 1


# --- the acceptance bar: this repository lints clean --------------------------


def test_repo_tree_is_clean():
    result = run([os.path.join(REPO, "src", "repro"),
                  os.path.join(REPO, "examples")])
    assert result.diagnostics == [], result.format_text()
    # The audited suppressions: an F101 in check/explore.py (state_key
    # hashes the transient deadline instead of acting on it), two K003s
    # in barnes (phases whose extents are data-dependent per step or
    # that batch nothing until their neighbor phase lowers too), and
    # three K003s in the tutorial example (kept interpreted for
    # readability). Water's two former A004 ignores disappeared when
    # its integration phase moved into a RegionKernel.interp body
    # (barrier-free, so the lockset check no longer over-approximates
    # there); test_lint_vs_detector.py keeps the dynamic proof that
    # Water stays race-free.
    assert len(result.suppressed) == 6
    assert {d.rule for d in result.suppressed} == {"F101", "K003"}

"""Property-based testing of lock-protected sharing.

Hypothesis generates random lock-protected counter programs: shared
counters live at random words (often sharing pages — false sharing is
the point), each protected by one of a few locks; every processor
performs a random sequence of lock/increment/unlock operations. Under
any protocol the final counter values must equal the total increment
counts — this exercises the migratory-page path, twins under false
sharing, flush-updates (2L), shootdowns (2LS), and write doubling (1L)
against ground truth.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier, MCLock

pytestmark = pytest.mark.heavy  # long hypothesis suite

N_PROCS = 4
N_LOCKS = 3
N_COUNTERS = 6
PAGES = 2  # counters deliberately crowd two pages


@st.composite
def lock_programs(draw):
    # counter -> protecting lock (a counter is always used with one lock).
    protection = draw(st.lists(st.integers(0, N_LOCKS - 1),
                               min_size=N_COUNTERS, max_size=N_COUNTERS))
    # counter -> word index (may collide across page boundaries but not
    # with each other).
    words = draw(st.lists(st.integers(0, PAGES * 64 - 1),
                          min_size=N_COUNTERS, max_size=N_COUNTERS,
                          unique=True))
    # per-processor operation list: (counter, repetitions)
    ops = [draw(st.lists(st.tuples(st.integers(0, N_COUNTERS - 1),
                                   st.integers(1, 3)),
                         max_size=6))
           for _ in range(N_PROCS)]
    return protection, words, ops


def run_lock_program(protection, words, ops, protocol):
    cfg = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                        shared_bytes=512 * PAGES, superpage_pages=1)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    locks = [MCLock(cluster, proto, i) for i in range(N_LOCKS)]
    barrier = Barrier(cluster, proto)
    proto.end_initialization()

    def worker(proc, my_ops):
        def gen():
            for counter, reps in my_ops:
                lock = locks[protection[counter]]
                word = words[counter]
                for _ in range(reps):
                    yield from lock.acquire(proc)
                    value = proto.load(proc, word // 64, word % 64)
                    yield Compute(2.0)
                    proto.store(proc, word // 64, word % 64, value + 1.0)
                    lock.release(proc)
                    yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for i, proc in enumerate(cluster.processors):
        group.spawn(proc, worker(proc, ops[i]), f"p{i}")
    group.run()
    proto.check_invariants()

    final = {}
    for counter, word in enumerate(words):
        page, off = word // 64, word % 64
        entry = proto.directory.entry(page)
        holder = entry.exclusive_holder()
        frame = proto.frames.frame(holder[0], page) if holder \
            else proto.master(page)
        final[counter] = frame[off]
    return final


def expected_counts(ops):
    totals = Counter()
    for my_ops in ops:
        for counter, reps in my_ops:
            totals[counter] += reps
    return totals


@settings(max_examples=15, deadline=None)
@given(lock_programs())
@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
def test_lock_protected_counters_are_exact(protocol, program):
    protection, words, ops = program
    final = run_lock_program(protection, words, ops, protocol)
    want = expected_counts(ops)
    for counter in range(N_COUNTERS):
        assert final[counter] == want.get(counter, 0), (
            f"{protocol}: counter {counter} at word {words[counter]} "
            f"= {final[counter]}, want {want.get(counter, 0)}")

"""Property-based tests for Memory Channel visibility semantics and the
superpage / mapping-table machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.errors import MemoryChannelError
from repro.memchannel.regions import VersionedWord
from repro.runtime.program import ParallelRuntime
from repro.apps import make_app

pytestmark = pytest.mark.heavy  # long hypothesis suite


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 1000), st.integers(0, 99)),
                min_size=1, max_size=30),
       st.integers(0, 2000))
def test_versioned_word_reader_sees_latest_visible(writes, read_at):
    """A reader observes exactly the last write whose (possibly
    ordering-adjusted) visibility time is <= its clock.

    Times are integers (well away from the sub-microsecond hub-ordering
    and read-tolerance epsilons) so the reference model is exact.
    """
    w = VersionedWord(-1)
    applied = []  # (effective_visible_at, value) in hub order
    last = 0.0
    for visible_at, value in writes:
        effective = visible_at if visible_at >= last else last + 1e-6
        w.write(float(visible_at), value)
        applied.append((effective, value))
        last = effective

    expected = -1
    for visible_at, value in applied:
        if visible_at <= read_at + 1e-6:
            expected = value
    # Only the most recent retained history can be checked after pruning
    # (the initial value occupies one of the 8 retained slots).
    if len(applied) < 8 or read_at >= applied[-7][0]:
        assert w.read(float(read_at)) == expected


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0, 100), min_size=2, max_size=20))
def test_versioned_word_monotone_reads(times):
    """Reading at later clocks never observes an older write."""
    w = VersionedWord(0)
    for i, t in enumerate(times):
        w.write(t, i + 1)
    seen = [w.read(at) for at in sorted([0.0, 25.0, 50.0, 75.0, 1000.0])]
    assert seen == sorted(seen)


class TestSuperpages:
    def test_mapping_table_budget_enforced(self):
        # With tiny superpages and many locks, the 64K-connection budget is
        # load-bearing: page regions consume nodes x superpages entries.
        cfg = MachineConfig(nodes=2, procs_per_node=1, page_bytes=512,
                            shared_bytes=512 * 8, superpage_pages=1)
        from repro.cluster.machine import Cluster
        cluster = Cluster(cfg)
        with pytest.raises(MemoryChannelError):
            for i in range(100000):
                cluster.mc.new_region(f"r{i}", 1)

    def test_superpage_homes_move_together(self):
        app = make_app("SOR")
        cfg = MachineConfig(nodes=4, procs_per_node=1, page_bytes=512,
                            superpage_pages=4)
        rt = ParallelRuntime(app, app.small_params(), cfg, "2L")
        rt.run()
        directory = rt.protocol.directory
        per = rt.config.superpage_pages
        for sp_start in range(0, rt.config.num_pages, per):
            homes = {directory.home(p)
                     for p in range(sp_start,
                                    min(sp_start + per,
                                        rt.config.num_pages))}
            assert len(homes) == 1, (
                f"superpage at {sp_start} has split homes {homes}")

    def test_relocation_happens_at_most_once_per_superpage(self):
        app = make_app("Em3d")
        cfg = MachineConfig(nodes=4, procs_per_node=2, page_bytes=512,
                            superpage_pages=2)
        rt = ParallelRuntime(app, app.small_params(), cfg, "2L")
        res = rt.run()
        sp_count = (rt.config.num_pages + 1) // 2
        assert res.stats.counter("home_relocations") <= sp_count

"""Property-based tests for Memory Channel visibility semantics and the
superpage / mapping-table machinery — including under fault injection
(DESIGN.md §12): the ordering guarantees the protocols rely on must
survive injected reordering, delays, and drops."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FaultConfig, MachineConfig
from repro.errors import MemoryChannelError
from repro.memchannel.faults import FaultInjector
from repro.memchannel.regions import VersionedWord
from repro.protocol.writenotice import NoticeBoard
from repro.runtime.program import ParallelRuntime
from repro.apps import make_app

pytestmark = pytest.mark.heavy  # long hypothesis suite


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 1000), st.integers(0, 99)),
                min_size=1, max_size=30),
       st.integers(0, 2000))
def test_versioned_word_reader_sees_latest_visible(writes, read_at):
    """A reader observes exactly the last write whose (possibly
    ordering-adjusted) visibility time is <= its clock.

    Times are integers (well away from the sub-microsecond hub-ordering
    and read-tolerance epsilons) so the reference model is exact.
    """
    w = VersionedWord(-1)
    applied = []  # (effective_visible_at, value) in hub order
    last = 0.0
    for visible_at, value in writes:
        effective = visible_at if visible_at >= last else last + 1e-6
        w.write(float(visible_at), value)
        applied.append((effective, value))
        last = effective

    expected = -1
    for visible_at, value in applied:
        if visible_at <= read_at + 1e-6:
            expected = value
    # Only the most recent retained history can be checked after pruning
    # (the initial value occupies one of the 8 retained slots).
    if len(applied) < 8 or read_at >= applied[-7][0]:
        assert w.read(float(read_at)) == expected


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0, 100), min_size=2, max_size=20))
def test_versioned_word_monotone_reads(times):
    """Reading at later clocks never observes an older write."""
    w = VersionedWord(0)
    for i, t in enumerate(times):
        w.write(t, i + 1)
    seen = [w.read(at) for at in sorted([0.0, 25.0, 50.0, 75.0, 1000.0])]
    assert seen == sorted(seen)


class TestSuperpages:
    def test_mapping_table_budget_enforced(self):
        # With tiny superpages and many locks, the 64K-connection budget is
        # load-bearing: page regions consume nodes x superpages entries.
        cfg = MachineConfig(nodes=2, procs_per_node=1, page_bytes=512,
                            shared_bytes=512 * 8, superpage_pages=1)
        from repro.cluster.machine import Cluster
        cluster = Cluster(cfg)
        with pytest.raises(MemoryChannelError):
            for i in range(100000):
                cluster.mc.new_region(f"r{i}", 1)

    def test_superpage_homes_move_together(self):
        app = make_app("SOR")
        cfg = MachineConfig(nodes=4, procs_per_node=1, page_bytes=512,
                            superpage_pages=4)
        rt = ParallelRuntime(app, app.small_params(), cfg, "2L")
        rt.run()
        directory = rt.protocol.directory
        per = rt.config.superpage_pages
        for sp_start in range(0, rt.config.num_pages, per):
            homes = {directory.home(p)
                     for p in range(sp_start,
                                    min(sp_start + per,
                                        rt.config.num_pages))}
            assert len(homes) == 1, (
                f"superpage at {sp_start} has split homes {homes}")

    def test_relocation_happens_at_most_once_per_superpage(self):
        app = make_app("Em3d")
        cfg = MachineConfig(nodes=4, procs_per_node=2, page_bytes=512,
                            superpage_pages=2)
        rt = ParallelRuntime(app, app.small_params(), cfg, "2L")
        res = rt.run()
        sp_count = (rt.config.num_pages + 1) // 2
        assert res.stats.counter("home_relocations") <= sp_count


# --- fault injection: ordering guarantees survive injected chaos --------------


def _injector(**kw) -> FaultInjector:
    cfg = MachineConfig(nodes=2, procs_per_node=1, page_bytes=512,
                        faults=FaultConfig(**kw))
    return FaultInjector(cfg)


class TestInjectionOrdering:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**31), st.integers(1, 40))
    def test_versioned_word_absorbs_injected_jitter(self, seed, writes):
        """Per-region write order survives reordering: VersionedWord
        clamps a jittered (earlier-looking) visibility into hub order,
        so a late reader always sees the last-issued write."""
        inj = _injector(seed=seed, reorder_rate=0.5, reorder_window_us=50.0)
        w = VersionedWord(-1)
        t = 0.0
        for i in range(writes):
            t += 10.0
            w.write(t + inj.word_jitter(), i)
        assert w.read(t + 100.0) == writes - 1

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**31), st.integers(1, 60))
    def test_notice_bins_deliver_by_visibility_with_gaps_counted(
            self, seed, posts):
        """Visibility-ordered delivery holds under delay/drop injection:
        a collect returns exactly the notices visible by its cutoff
        (a delayed notice arrives late without blocking ones behind it,
        since bins interleave unordered per-processor streams), never an
        invisible one, and every injected loss arrives as a counted gap
        (lost=True), never silently."""
        inj = _injector(seed=seed, notice_delay_rate=0.4,
                        notice_delay_us=100.0, notice_drop_rate=0.3)
        board = NoticeBoard(owner=0, num_owners=2)
        board.injector = inj
        for i in range(posts):
            board.post(1, page=i, visible_at=float(i))
        cutoff = float(posts) / 2
        early = board.collect(cutoff)
        assert all(n.visible_at <= cutoff for n in early)
        assert board.pending() == posts - len(early)
        for n in early:                     # nothing visible is left behind
            assert n.visible_at <= cutoff
        assert all(wn.visible_at > cutoff
                   for bin_ in board.bins for wn in bin_)
        late = board.collect(float(posts) + 200.0)
        pages = sorted(n.page for n in early + late)
        assert pages == list(range(posts))     # each post delivered once
        lost = sum(1 for n in early + late if n.lost)
        assert lost == board.lost == inj.notices_dropped  # losses are
        # delivered as explicit gaps, exactly as often as injected.

    def test_zero_rate_injector_draws_no_randomness(self):
        """The parity guarantee at its root: with every rate at zero,
        no decision point consumes the RNG stream, so the injector is
        observationally inert."""
        inj = _injector(seed=123)
        before = inj._rng.getstate()
        for _ in range(50):
            assert inj.notice_fate() == (False, 0.0)
            assert inj.word_jitter() == 0.0
            assert inj.nak_request() is False
            assert inj.choose_tie(4) == 0
        assert inj._rng.getstate() == before
        assert all(v == 0 for v in inj.summary().values())

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**31))
    def test_same_seed_same_decisions(self, seed):
        """Two injectors with the same seed make identical decisions —
        the replay contract at the decision-point level."""
        kw = dict(seed=seed, reorder_rate=0.3, notice_delay_rate=0.3,
                  notice_drop_rate=0.2, nak_rate=0.2)
        a, b = _injector(**kw), _injector(**kw)
        for _ in range(100):
            assert a.notice_fate() == b.notice_fate()
            assert a.word_jitter() == b.word_jitter()
            assert a.nak_request() == b.nak_request()
            assert a.choose_tie(3) == b.choose_tie(3)
        assert a.summary() == b.summary()

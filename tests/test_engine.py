"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (Condition, MultiChannelResource, SerialResource,
                              Simulator)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(5))
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(3.0, lambda: seen.append(3))
        sim.run()
        assert seen == [1, 3, 5]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(2.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(10))

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(4.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.5]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_after(2.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        end = sim.run()
        assert seen == ["first", "second"]
        assert end == 3.0

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: sim.schedule(5.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_run_until_stops_at_limit(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.pending_events == 1

    def test_empty_run_returns_zero(self):
        assert Simulator().run() == 0.0

    def test_determinism_across_runs(self):
        def trace():
            sim = Simulator()
            seen = []
            for i in range(50):
                sim.schedule((i * 7) % 13 + 0.25, lambda i=i: seen.append(i))
            sim.run()
            return seen

        assert trace() == trace()


class TestCondition:
    def test_fire_wakes_waiter_at_max_of_times(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        woken = []
        cond.park(clock=10.0, wake=lambda at: woken.append(at))
        sim.schedule(1.0, lambda: cond.fire(3.0))
        sim.run()
        # Waiter's own clock (10) is later than the fire time (3).
        assert woken == [10.0]

    def test_fire_after_waiter_clock_uses_fire_time(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        woken = []
        cond.park(clock=1.0, wake=lambda at: woken.append(at))
        sim.schedule(0.0, lambda: cond.fire(7.5))
        sim.run()
        assert woken == [7.5]

    def test_fire_with_no_waiters_is_noop(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        cond.fire(5.0)
        sim.run()
        assert cond.num_waiters == 0

    def test_unpark_removes_waiter(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        woken = []
        wake = lambda at: woken.append(at)
        cond.park(1.0, wake)
        cond.unpark(wake)
        cond.fire(2.0)
        sim.run()
        assert woken == []

    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        woken = []
        for i in range(4):
            cond.park(float(i), lambda at, i=i: woken.append(i))
        sim.schedule(0.0, lambda: cond.fire(10.0))
        sim.run()
        assert sorted(woken) == [0, 1, 2, 3]


class TestSerialResource:
    def test_uncontended_service(self):
        bus = SerialResource("bus")
        begin, end = bus.acquire(10.0, 5.0)
        assert (begin, end) == (10.0, 15.0)

    def test_queueing_delay(self):
        bus = SerialResource("bus")
        bus.acquire(0.0, 10.0)
        begin, end = bus.acquire(2.0, 3.0)
        assert (begin, end) == (10.0, 13.0)

    def test_idle_gap_not_carried(self):
        bus = SerialResource("bus")
        bus.acquire(0.0, 1.0)
        begin, end = bus.acquire(100.0, 1.0)
        assert (begin, end) == (100.0, 101.0)

    def test_busy_time_accumulates(self):
        bus = SerialResource("bus")
        bus.acquire(0.0, 2.0)
        bus.acquire(0.0, 3.0)
        assert bus.busy_time == 5.0
        assert bus.total_requests == 2

    def test_negative_duration_raises(self):
        with pytest.raises(SimulationError):
            SerialResource().acquire(0.0, -1.0)


class TestMultiChannelResource:
    def test_parallel_channels(self):
        mc = MultiChannelResource(2)
        b1, e1 = mc.acquire(0.0, 10.0)
        b2, e2 = mc.acquire(0.0, 10.0)
        assert (b1, b2) == (0.0, 0.0)  # both run concurrently
        b3, e3 = mc.acquire(0.0, 10.0)
        assert b3 == 10.0  # third waits for a free channel

    def test_picks_earliest_free_channel(self):
        mc = MultiChannelResource(2)
        mc.acquire(0.0, 10.0)
        mc.acquire(0.0, 2.0)
        begin, _ = mc.acquire(3.0, 1.0)
        assert begin == 3.0  # channel 2 free at 2.0

    def test_zero_channels_rejected(self):
        with pytest.raises(SimulationError):
            MultiChannelResource(0)


class TestTimelineBackfill:
    """The timeline semantics added for out-of-order bookings."""

    def test_backfill_into_earlier_gap(self):
        bus = SerialResource("bus")
        bus.acquire(100.0, 10.0)     # a leader books [100, 110)
        begin, end = bus.acquire(2.0, 3.0)  # a laggard books at t=2
        # The bus was genuinely idle at t=2: no queueing behind the future.
        assert (begin, end) == (2.0, 5.0)

    def test_gap_between_intervals_used(self):
        bus = SerialResource("bus")
        bus.acquire(0.0, 10.0)
        bus.acquire(50.0, 10.0)
        begin, end = bus.acquire(5.0, 8.0)  # fits in [10, 50)
        assert (begin, end) == (10.0, 18.0)

    def test_too_small_gap_skipped(self):
        bus = SerialResource("bus")
        bus.acquire(0.0, 10.0)
        bus.acquire(12.0, 10.0)
        begin, end = bus.acquire(0.0, 5.0)  # [10,12) too small
        assert (begin, end) == (22.0, 27.0)

    def test_adjacent_intervals_merge(self):
        bus = SerialResource("bus")
        for i in range(100):
            bus.acquire(float(i), 1.0)
        assert len(bus._intervals) == 1
        assert bus.free_at == 100.0

    def test_peek_matches_acquire(self):
        bus = SerialResource("bus")
        bus.acquire(0.0, 10.0)
        bus.acquire(15.0, 10.0)
        for start, dur in [(0.0, 3.0), (11.0, 2.0), (30.0, 1.0)]:
            expected_end = bus.peek(start, dur)
            b, e = bus.acquire(start, dur)
            assert e == expected_end

    def test_zero_duration_is_free(self):
        bus = SerialResource("bus")
        bus.acquire(0.0, 10.0)
        assert bus.acquire(5.0, 0.0) == (5.0, 5.0)

    def test_multichannel_uses_both_timelines(self):
        mc = MultiChannelResource(2)
        mc.acquire(0.0, 10.0)
        mc.acquire(0.0, 10.0)
        # Channel timelines full until 10; a laggard fits neither earlier.
        b, e = mc.acquire(0.0, 10.0)
        assert b == 10.0
        # But a booking before both intervals backfills.
        mc2 = MultiChannelResource(2)
        mc2.acquire(100.0, 10.0)
        b, e = mc2.acquire(0.0, 5.0)
        assert (b, e) == (0.0, 5.0)

"""Unit and property tests for frames, page tables, twins, and diffs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataRaceError, ProtocolError
from repro.vm.diffs import (Diff, apply_diff, flush_update, incoming_diff,
                            make_twin, outgoing_diff)
from repro.vm.page import FrameStore, Perm
from repro.vm.pagetable import PageTable


class TestPerm:
    def test_ordering(self):
        assert Perm.INVALID < Perm.READ < Perm.WRITE

    def test_loosest(self):
        assert Perm.loosest([Perm.INVALID, Perm.WRITE]) == Perm.WRITE
        assert Perm.loosest([]) == Perm.INVALID


class TestFrameStore:
    def test_lazy_map_and_read(self):
        fs = FrameStore(2, 4, 8)
        assert not fs.has_frame(0, 1)
        frame = fs.map_frame(0, 1)
        assert fs.has_frame(0, 1)
        assert frame.shape == (8,)
        assert (frame == 0).all()

    def test_map_with_contents_copies(self):
        fs = FrameStore(2, 4, 4)
        src = np.arange(4.0)
        frame = fs.map_frame(0, 0, src)
        src[0] = 99.0
        assert frame[0] == 0.0  # independent copy

    def test_remap_overwrites_in_place(self):
        fs = FrameStore(1, 1, 4)
        f1 = fs.map_frame(0, 0)
        f2 = fs.map_frame(0, 0, np.ones(4))
        assert f1 is f2  # same physical frame
        assert (f1 == 1).all()

    def test_missing_frame_raises(self):
        fs = FrameStore(1, 1, 4)
        with pytest.raises(ProtocolError):
            fs.frame(0, 0)

    def test_unmap(self):
        fs = FrameStore(1, 2, 4)
        fs.map_frame(0, 1)
        fs.unmap_frame(0, 1)
        assert not fs.has_frame(0, 1)
        fs.unmap_frame(0, 1)  # idempotent

    def test_degenerate_geometry_rejected(self):
        with pytest.raises(ProtocolError):
            FrameStore(0, 1, 1)


class TestPageTable:
    def test_default_invalid(self):
        t = PageTable(4, 2)
        assert t.perm(0, 0) == Perm.INVALID
        assert t.loosest(0) == Perm.INVALID

    def test_set_and_query(self):
        t = PageTable(4, 3)
        t.set_perm(1, 0, Perm.READ)
        t.set_perm(1, 2, Perm.WRITE)
        assert t.loosest(1) == Perm.WRITE
        assert t.mapped(1) == [0, 2]
        assert t.writers(1) == [2]

    def test_downgrade_writers(self):
        t = PageTable(2, 3)
        for p in range(3):
            t.set_perm(0, p, Perm.WRITE)
        affected = t.downgrade_writers(0)
        assert affected == [0, 1, 2]
        assert t.loosest(0) == Perm.READ

    def test_invalidate_all(self):
        t = PageTable(2, 2)
        t.set_perm(0, 0, Perm.READ)
        assert t.invalidate_all(0) == [0]
        assert t.loosest(0) == Perm.INVALID


class TestDiffs:
    def test_outgoing_diff_finds_changes(self):
        page = np.zeros(8)
        twin = make_twin(page)
        page[3] = 1.5
        page[7] = -2.0
        diff = outgoing_diff(page, twin)
        assert list(diff.indices) == [3, 7]
        assert list(diff.values) == [1.5, -2.0]
        assert diff.nbytes == 2 * 2 * 8

    def test_empty_diff(self):
        page = np.ones(4)
        diff = outgoing_diff(page, make_twin(page))
        assert diff.is_empty()
        assert diff.nbytes == 0

    def test_apply_diff(self):
        master = np.zeros(8)
        apply_diff(master, Diff(np.array([1, 2]), np.array([5.0, 6.0])))
        assert master[1] == 5.0 and master[2] == 6.0

    def test_flush_update_updates_home_and_twin(self):
        page = np.zeros(8)
        twin = make_twin(page)
        master = np.zeros(8)
        page[2] = 3.0
        flush_update(page, twin, master)
        assert master[2] == 3.0
        assert twin[2] == 3.0
        # Second flush finds nothing new.
        assert flush_update(page, twin, master).is_empty()

    def test_incoming_diff_merges_remote_only(self):
        # Local writer modified word 0; remote modified word 3.
        twin = np.zeros(8)
        page = twin.copy()
        page[0] = 1.0           # local, unflushed
        fetched = np.zeros(8)
        fetched[3] = 9.0        # remote modification in the master
        diff = incoming_diff(fetched, page, twin)
        assert page[0] == 1.0   # local change preserved
        assert page[3] == 9.0   # remote change applied
        assert twin[3] == 9.0   # twin tracks the master view
        assert twin[0] == 0.0   # local change NOT in twin
        assert len(diff) == 1

    def test_incoming_diff_detects_race(self):
        twin = np.zeros(4)
        page = twin.copy()
        page[1] = 1.0           # local dirty
        fetched = np.zeros(4)
        fetched[1] = 2.0        # remote wrote the same word: a data race
        with pytest.raises(DataRaceError):
            incoming_diff(fetched, page, twin)

    def test_incoming_diff_race_check_can_be_disabled(self):
        twin = np.zeros(4)
        page = twin.copy()
        page[1] = 1.0
        fetched = np.zeros(4)
        fetched[1] = 2.0
        incoming_diff(fetched, page, twin, check_races=False)
        assert page[1] == 2.0


# --- property-based tests ---------------------------------------------------

words = st.integers(min_value=0, max_value=31)
values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(st.dictionaries(words, values, max_size=16))
def test_outgoing_diff_roundtrip(changes):
    """Applying an outgoing diff to a copy of the twin reproduces the page."""
    twin = np.arange(32.0)
    page = twin.copy()
    for i, v in changes.items():
        page[i] = v
    diff = outgoing_diff(page, twin)
    rebuilt = twin.copy()
    apply_diff(rebuilt, diff)
    assert (rebuilt == page).all()


@settings(max_examples=200, deadline=None)
@given(st.dictionaries(words, values, max_size=8),
       st.dictionaries(words, values, max_size=8))
def test_two_way_diffing_merges_disjoint_writers(local, remote):
    """The core two-way-diffing property: disjoint local and remote writes
    merge losslessly through the twin, in either flush order."""
    remote = {i: v for i, v in remote.items() if i not in local}
    base = np.zeros(32)
    master = base.copy()
    twin = base.copy()
    page = base.copy()
    for i, v in local.items():
        page[i] = v          # local writes (unflushed)
    for i, v in remote.items():
        master[i] = v        # remote node's flushed writes

    incoming_diff(master.copy(), page, twin)
    for i in range(32):
        assert page[i] == local.get(i, remote.get(i, 0.0))

    # Now the local release flushes: the master must contain both sets.
    flush_update(page, twin, master)
    for i in range(32):
        assert master[i] == local.get(i, remote.get(i, 0.0))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(words, values), max_size=20))
def test_flush_update_idempotent_after_flush(writes):
    page = np.zeros(32)
    twin = make_twin(page)
    master = np.zeros(32)
    for i, v in writes:
        page[i] = v
    flush_update(page, twin, master)
    assert (master == page).all()
    assert flush_update(page, twin, master).is_empty()

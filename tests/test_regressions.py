"""Deterministic regressions for protocol and checker bugs found by the
property-based tests (pinned so they stay covered even without the
hypothesis example database)."""

import numpy as np
import pytest

from repro.check import attach_checker
from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier, MCLock


@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
def test_stale_write_mapping_does_not_swallow_barrier_flush(protocol):
    """Regression: an exclusive-mode-era write mapping belonging to a
    processor that has ALREADY arrived at the barrier must not make a
    later-arriving writer defer (and thereby lose) its flush.

    Shrunk from a hypothesis counterexample: p2 holds page 3 exclusively;
    p3 writes under that exclusivity (keeping a write mapping with no
    dirty entry); p0 on another node breaks the exclusivity mid-round;
    p3 has already arrived at the final barrier, so p2 — arriving last —
    must flush its own post-break write itself.
    """
    plan = [
        ([(1, [144, 145]), (3, [176, 177]), (2, [208]),
          (3, [240, 241])], []),
        ([(0, [128]), (2, [160, 161]), (0, [192]), (2, [240])], []),
    ]
    final = _run_rounds(plan, protocol)
    expected = _emulate(plan)
    mismatch = np.nonzero(final != expected)[0]
    assert len(mismatch) == 0, (
        f"{protocol}: words {mismatch} = {final[mismatch]}, "
        f"want {expected[mismatch]}")


def test_lock_release_not_visible_to_temporally_earlier_contender():
    """Regression: a processor whose simulated clock runs far ahead (long
    fetch waits) releases the lock early in *event* order; a waiter whose
    clock is earlier must not observe that release before its visibility
    time, or it reads pre-critical-section data (lost update)."""
    cfg = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                        shared_bytes=512 * 2, superpage_pages=1)
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    lock = MCLock(cluster, proto, 0)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()

    def worker(proc, active):
        def gen():
            if active:
                for _ in range(3):
                    yield from lock.acquire(proc)
                    value = proto.load(proc, 0, 0)
                    yield Compute(2.0)
                    proto.store(proc, 0, 0, value + 1.0)
                    lock.release(proc)
                    yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for i, proc in enumerate(cluster.processors):
        group.spawn(proc, worker(proc, i in (1, 3)), f"p{i}")
    group.run()

    entry = proto.directory.entry(0)
    holder = entry.exclusive_holder()
    frame = proto.frames.frame(holder[0], 0) if holder else proto.master(0)
    assert frame[0] == 6.0  # 2 procs x 3 increments, none lost


def test_first_epoch_conflicting_writes_are_flagged():
    """Regression (race detector): with all vector clocks initialized to
    zero, an access in a processor's *first* epoch carried clock 0 and
    ``0 <= vc[other] == 0`` made it look ordered before every other
    processor — conflicting pre-first-sync writes were silently missed.
    Each processor's own component must start at 1."""
    cfg = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                        shared_bytes=512 * 2, superpage_pages=1)
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    checker = attach_checker(cluster, proto)
    barrier = Barrier(cluster, proto)

    def worker(proc):
        def gen():
            # First epoch: no sync event has happened yet.
            proto.store(proc, 0, 2, float(proc.global_id))
            yield Compute(1.0)
            yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    assert checker.race_count == 3  # p1..p3 each race the prior write
    assert all(r.kind == "write-write" for r in checker.races)


def test_consecutive_barrier_episodes_keep_clocks_apart():
    """Regression (race detector): barrier episode clocks are keyed by
    episode number and pruned once everyone departs; a same-word write in
    round r+1 after a write in round r is ordered by the intervening
    barrier and must NOT be flagged, across several episodes."""
    plan = [([(0, [10])], []), ([(1, [10])], []),
            ([(2, [10])], []), ([(3, [10])], [])]
    checker = _run_checked_rounds(plan, "2L")
    assert checker.races == []


@pytest.mark.parametrize("protocol", ["2L", "2LS"])
def test_oracle_reads_exclusive_holder_frame_not_master(protocol):
    """Regression (coherence oracle): a page whose sole writer stays in
    exclusive mode to the end of the run has its current data only in
    the holder's frame — the master is legitimately stale. The oracle's
    authoritative-content sweep must consult the holder's frame, or a
    healthy run raises a false CoherenceViolation."""
    plan = [([(0, [64, 65, 66])], [])]  # page 1: single writer, one round
    checker = _run_checked_rounds(plan, protocol)
    checker.finalize()  # end-of-run sweep must pass
    assert checker.races == []
    assert checker.oracle.global_checks == 2  # 1 barrier + end of run


def _run_checked_rounds(plan, protocol):
    """_run_rounds under the checker; returns the CheckContext."""
    cfg = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                        shared_bytes=512 * 4, superpage_pages=2)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    checker = attach_checker(cluster, proto)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()

    def worker(proc):
        rank = proc.global_id

        def gen():
            for rnd, (writes, _) in enumerate(plan):
                for owner, words in writes:
                    if owner != rank:
                        continue
                    for w in words:
                        proto.store(proc, w // 64, w % 64,
                                    float(rnd * 1000 + w + 1))
                        yield Compute(1.0)
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    return checker


def _run_rounds(plan, protocol):
    """Barrier-synchronized rounds of disjoint writes (4 procs, 4 pages)."""
    cfg = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                        shared_bytes=512 * 4, superpage_pages=2)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()

    def value(rnd, word):
        return float(rnd * 1000 + word + 1)

    def worker(proc):
        rank = proc.global_id

        def gen():
            for rnd, (writes, _) in enumerate(plan):
                for owner, words in writes:
                    if owner != rank:
                        continue
                    for w in words:
                        proto.store(proc, w // 64, w % 64, value(rnd, w))
                        yield Compute(1.0)
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    proto.check_invariants()

    final = np.zeros(4 * 64)
    for page in range(4):
        entry = proto.directory.entry(page)
        holder = entry.exclusive_holder()
        frame = proto.frames.frame(holder[0], page) if holder \
            else proto.master(page)
        final[page * 64:(page + 1) * 64] = frame
    return final


def _emulate(plan):
    mem = np.zeros(4 * 64)
    for rnd, (writes, _) in enumerate(plan):
        for owner, words in writes:
            for w in words:
                mem[w] = float(rnd * 1000 + w + 1)
    return mem

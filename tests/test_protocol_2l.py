"""Scenario tests for the Cashmere-2L protocol (and 2LS) using scripted
workers on small clusters.

These exercise the protocol mechanisms directly: twins, incoming and
outgoing diffs, exclusive mode, no-longer-exclusive lists, directory
maintenance, timestamps, and first-touch home relocation.
"""

from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier


def make(nodes=2, ppn=2, protocol="2L", pages=8, **kw):
    kw.setdefault("superpage_pages", 2)
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * pages, **kw)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    return cluster, proto


def run_scripts(cluster, scripts):
    """Run one generator per processor (padding with idlers)."""
    group = ProcessGroup(cluster.sim)

    def idle():
        yield Compute(0.1)

    for i, proc in enumerate(cluster.processors):
        gen = scripts[i]() if i < len(scripts) and scripts[i] else idle()
        group.spawn(proc, gen, f"p{i}")
    group.run()


class TestExclusiveMode:
    def test_sole_writer_enters_exclusive(self):
        cluster, proto = make()
        p0 = cluster.processors[0]

        def w0():
            proto.store(p0, 4, 0, 1.0)
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        entry = proto.directory.entry(4)
        assert entry.exclusive_holder() == (0, 0)
        assert p0.stats.counters["excl_transitions"] == 1
        # Exclusive pages have no twin and are not dirty.
        assert proto.node_state[0].meta.get(4) is None or \
            proto.node_state[0].meta[4].twin is None
        assert 4 not in proto.proc_state(p0).dirty

    def test_remote_read_breaks_exclusive(self):
        cluster, proto = make()
        p0 = cluster.processors[0]
        p2 = cluster.processors[2]  # node 1

        def w0():
            proto.store(p0, 4, 3, 7.5)
            yield Compute(50.0)

        def w2():
            yield Compute(100.0)
            assert proto.load(p2, 4, 3) == 7.5

        run_scripts(cluster, [w0, None, w2])
        entry = proto.directory.entry(4)
        assert entry.exclusive_holder() is None
        # The flush reached the home master.
        assert proto.master(4)[3] == 7.5

    def test_break_gives_nle_entries_to_other_local_writers(self):
        cluster, proto = make()
        p0, p1 = cluster.processors[0], cluster.processors[1]
        p2 = cluster.processors[2]
        page = 2  # superpage 1 -> home owner 1: NOT node 0, so twins apply
        assert proto.directory.home(page) != 0

        def w0():
            proto.store(p0, page, 0, 1.0)  # exclusive
            yield Compute(10.0)

        def w1():
            yield Compute(5.0)
            proto.store(p1, page, 1, 2.0)  # joins while exclusive
            yield Compute(100.0)

        def w2():
            yield Compute(50.0)
            proto.load(p2, page, 0)  # break from node 1
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1, w2])
        st1 = proto.proc_state(p1)
        # p1 (still holding a write mapping) got a no-longer-exclusive entry
        # and the node now has a twin.
        assert page in st1.nle.pages or page in st1.dirty
        assert proto.node_state[0].meta[page].twin is not None

    def test_exclusive_page_needs_no_flush(self):
        cluster, proto = make()
        p0 = cluster.processors[0]

        def w0():
            proto.store(p0, 4, 0, 1.0)
            proto.release_sync(p0)
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        assert p0.stats.counters["write_notices"] == 0


class TestTwoWayDiffing:
    def test_concurrent_writers_merge_through_home(self):
        # Nodes 0 and 1 write disjoint words of one page; both releases
        # must merge at the home without losing either.
        cluster, proto = make(nodes=3, ppn=1)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        page = proto.config.superpage_pages * 2  # home = node 2 (neither)
        assert proto.directory.home(page) == 2

        def w0():
            proto.store(p0, page, 0, 10.0)
            yield Compute(5.0)
            proto.release_sync(p0)
            yield Compute(1.0)

        def w1():
            proto.store(p1, page, 1, 20.0)
            yield Compute(8.0)
            proto.release_sync(p1)
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1])
        master = proto.master(page)
        assert master[0] == 10.0
        assert master[1] == 20.0

    def test_incoming_diff_preserves_local_writes(self):
        cluster, proto = make(nodes=3, ppn=1)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        page = proto.config.superpage_pages * 2

        def w1():
            proto.load(p1, page, 0)  # become a sharer (prevents exclusive)
            yield Compute(30.0)
            proto.store(p1, page, 5, 55.0)
            yield Compute(50.0)
            proto.release_sync(p1)
            yield Compute(1.0)

        def w0():
            yield Compute(20.0)
            proto.store(p0, page, 3, 33.0)  # local dirty, twin exists
            yield Compute(300.0)
            proto.acquire_sync(p0)          # sees the notice, invalidates
            # refault: incoming diff merges word 5, preserves word 3
            assert proto.load(p0, page, 5) == 55.0
            assert proto.load(p0, page, 3) == 33.0
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1])
        assert p0.stats.counters["incoming_diffs"] >= 1

    def test_flush_update_counted_with_concurrent_local_writers(self):
        cluster, proto = make(nodes=2, ppn=2)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        p2 = cluster.processors[2]
        page = proto.config.superpage_pages  # home = node 1
        assert proto.directory.home(page) == 1

        def w2():
            proto.load(p2, page, 0)  # home-node sharer prevents exclusive
            yield Compute(1.0)

        def w0():
            yield Compute(5.0)
            proto.store(p0, page, 0, 1.0)
            yield Compute(10.0)
            proto.release_sync(p0)  # p1 still holds a write mapping
            yield Compute(1.0)

        def w1():
            yield Compute(7.0)
            proto.store(p1, page, 1, 2.0)
            yield Compute(200.0)
            proto.release_sync(p1)
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1, w2])
        total_fu = sum(p.stats.counters["flush_updates"]
                       for p in cluster.processors)
        assert total_fu >= 1
        assert proto.master(page)[0] == 1.0
        assert proto.master(page)[1] == 2.0


class TestShootdownVariant:
    def test_2ls_shoots_down_on_release_with_writers(self):
        cluster, proto = make(nodes=2, ppn=2, protocol="2LS")
        p0, p1 = cluster.processors[0], cluster.processors[1]
        p2 = cluster.processors[2]
        page = proto.config.superpage_pages

        def w2():
            proto.load(p2, page, 0)  # home-node sharer prevents exclusive
            yield Compute(1.0)

        def w0():
            yield Compute(5.0)
            proto.store(p0, page, 0, 1.0)
            yield Compute(10.0)
            proto.release_sync(p0)
            yield Compute(1.0)

        def w1():
            yield Compute(7.0)
            proto.store(p1, page, 1, 2.0)
            yield Compute(200.0)
            proto.release_sync(p1)
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1, w2])
        shoots = sum(p.stats.counters["shootdowns"]
                     for p in cluster.processors)
        assert shoots >= 1
        # The shootdown downgraded p1's mapping; data still merged.
        assert proto.master(page)[0] == 1.0
        assert proto.master(page)[1] == 2.0
        # 2LS never uses flush-updates or incoming diffs.
        assert sum(p.stats.counters["flush_updates"]
                   for p in cluster.processors) == 0
        assert sum(p.stats.counters["incoming_diffs"]
                   for p in cluster.processors) == 0


class TestTimestampCoalescing:
    def test_second_local_fault_skips_fetch(self):
        # One fetch serves both processors of a node (the key two-level
        # optimization).
        cluster, proto = make(nodes=2, ppn=2)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        page = proto.config.superpage_pages  # home = node 1

        def w0():
            proto.load(p0, page, 0)
            yield Compute(1.0)

        def w1():
            yield Compute(500.0)  # after p0's fetch completes
            proto.load(p1, page, 0)
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1])
        transfers = sum(p.stats.counters["page_transfers"]
                        for p in cluster.processors)
        assert transfers == 1
        faults = sum(p.stats.counters["read_faults"]
                     for p in cluster.processors)
        assert faults == 2


class TestHomeRelocation:
    def test_first_touch_moves_home(self):
        cluster, proto = make(nodes=2, ppn=1)
        p1 = cluster.processors[1]
        page = 0
        assert proto.directory.home(page) == 0

        def w1():
            yield Compute(1.0)
            proto.store(p1, page, 0, 9.0)
            yield Compute(1.0)

        proto.end_initialization()
        run_scripts(cluster, [None, w1])
        assert proto.directory.home(page) == 1
        assert not proto.directory.entry(page).home_is_default
        assert proto.master(page)[0] == 9.0
        assert p1.stats.counters["home_relocations"] == 1

    def test_whole_superpage_moves_together(self):
        cluster, proto = make(nodes=2, ppn=1)
        p1 = cluster.processors[1]
        sp = proto.config.superpage_pages

        def w1():
            yield Compute(1.0)
            proto.store(p1, 0, 0, 1.0)
            yield Compute(1.0)

        proto.end_initialization()
        run_scripts(cluster, [None, w1])
        for page in range(min(sp, proto.config.num_pages)):
            assert proto.directory.home(page) == 1

    def test_no_relocation_before_end_init(self):
        cluster, proto = make(nodes=2, ppn=1)
        p1 = cluster.processors[1]

        def w1():
            proto.store(p1, 0, 0, 1.0)
            yield Compute(1.0)

        run_scripts(cluster, [None, w1])
        assert proto.directory.home(0) == 0


class TestInvariants:
    def test_invariants_hold_after_mixed_workload(self):
        cluster, proto = make(nodes=2, ppn=2)
        barrier = Barrier(cluster, proto)

        def worker(proc, seed):
            def gen():
                for it in range(4):
                    for k in range(6):
                        page = (seed * 3 + k) % proto.config.num_pages
                        if (seed + k + it) % 2:
                            proto.store(proc, page, (seed + k) % 8,
                                        float(seed * 100 + it))
                        else:
                            proto.load(proc, page, (seed + k) % 8)
                        yield Compute(3.0)
                    yield from barrier.wait(proc)
            return gen

        group = ProcessGroup(cluster.sim)
        for i, proc in enumerate(cluster.processors):
            group.spawn(proc, worker(proc, i)(), f"p{i}")
        group.run()
        proto.check_invariants()

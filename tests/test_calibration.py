"""Tests for the calibration plumbing: the _compute_scale knob and the
per-application write-doubling cost."""

import pytest

from repro import MachineConfig, run_app, run_sequential
from repro.apps import make_app
from repro.apps.base import Application

CFG = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)


class TestComputeScale:
    def test_sequential_time_scales_linearly(self):
        app = make_app("Em3d")
        p1 = app.small_params()
        p2 = dict(p1, _compute_scale=3.0)
        _, t1 = run_sequential(app, p1, CFG)
        _, t2 = run_sequential(make_app("Em3d"), p2, CFG)
        assert t2 == pytest.approx(3.0 * t1, rel=1e-6)

    def test_parallel_compute_scales_but_protocol_does_not(self):
        app = make_app("Em3d")
        p1 = app.small_params()
        p2 = dict(p1, _compute_scale=4.0)
        r1 = run_app(app, p1, CFG, "2L")
        r2 = run_app(make_app("Em3d"), p2, CFG, "2L")
        u1 = r1.stats.aggregate.buckets["user"]
        u2 = r2.stats.aggregate.buckets["user"]
        assert u2 == pytest.approx(4.0 * u1, rel=0.05)
        # Protocol work (faults, fetches) is independent of compute density.
        pr1 = r1.stats.aggregate.buckets["protocol"]
        pr2 = r2.stats.aggregate.buckets["protocol"]
        assert pr2 == pytest.approx(pr1, rel=0.05)

    def test_scale_does_not_change_results(self):
        import numpy as np
        app = make_app("Em3d")
        p1 = app.small_params()
        p2 = dict(p1, _compute_scale=2.0)
        r1 = run_app(app, p1, CFG, "2L")
        r2 = run_app(make_app("Em3d"), p2, CFG, "2L")
        assert np.allclose(r1.array("e"), r2.array("e"))


class TestWriteDoubleCost:
    class _Writer(Application):
        name = "Writer"
        write_double_us = None

        def declare(self, segment, params):
            segment.alloc("x", 64)

        def worker(self, env, params):
            env.end_init()
            yield from env.barrier()
            if env.rank == 0:
                for i in range(32):
                    env.set(env.arr("x"), i, float(i))
                yield env.compute(10.0)
            yield from env.barrier()

        def result_arrays(self, params):
            return ["x"]

    def _doubling_time(self, cost):
        app = self._Writer()
        app.write_double_us = cost
        run = run_app(app, {}, CFG, "1L")
        return (run.stats.aggregate.buckets["write_double"],
                run.stats.counter("doubled_words"))

    def test_default_uses_cost_model(self):
        time_us, words = self._doubling_time(None)
        assert words > 0
        base = words * CFG.costs.mc_word_write
        # Doubling into a home-local master adds bus (cache-penalty) time.
        assert base <= time_us <= base + words * 1.0

    def test_app_override_scales_doubling(self):
        time_us, words = self._doubling_time(50.0)
        assert words * 50.0 <= time_us <= words * 51.0

    def test_benchmarks_declare_doubling_costs(self):
        # The calibrated applications carry their scaled doubling costs.
        for name in ("SOR", "LU", "Gauss", "Ilink", "Barnes", "Water"):
            assert make_app(name).write_double_us is not None, name

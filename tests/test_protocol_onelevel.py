"""Scenario tests for the one-level protocols (1LD, 1L) and the
home-node optimization."""

import numpy as np

from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.vm.page import Perm


def make(nodes=2, ppn=2, protocol="1LD", pages=8, home_opt=False, **kw):
    kw.setdefault("superpage_pages", 2)
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * pages, **kw)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster, home_opt=home_opt)
    return cluster, proto


def run_scripts(cluster, scripts):
    group = ProcessGroup(cluster.sim)

    def idle():
        yield Compute(0.1)

    for i, proc in enumerate(cluster.processors):
        gen = scripts[i]() if i < len(scripts) and scripts[i] else idle()
        group.spawn(proc, gen, f"p{i}")
    group.run()


class TestOwnersAreProcessors:
    def test_owner_space(self):
        cluster, proto = make(nodes=2, ppn=2)
        assert proto.num_owners == 4
        for proc in cluster.processors:
            assert proto.owner_of(proc) == proc.global_id

    def test_separate_frames_per_processor(self):
        # Two processors of the same node keep independent copies.
        cluster, proto = make(nodes=1, ppn=2)
        p0, p1 = cluster.processors[0], cluster.processors[1]

        def w0():
            proto.store(p0, 2, 0, 1.0)
            yield Compute(1.0)

        def w1():
            yield Compute(50.0)
            proto.load(p1, 2, 0)
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1])
        f0 = proto.frames.frame(0, 2)
        f1 = proto.frames.frame(1, 2)
        assert f0 is not f1

    def test_master_is_separate_from_home_frame(self):
        # Even the home processor's working copy is distinct from the
        # master region (Section 2.6 / Table 1 "local" transfers).
        cluster, proto = make(nodes=2, ppn=1)
        p0 = cluster.processors[0]
        page = 0
        assert proto.directory.home(page) == 0

        def w0():
            proto.store(p0, page, 0, 5.0)
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        assert proto.frames.frame(0, page) is not proto.master(page)


class TestDiffingVsWriteThrough:
    def test_1ld_merges_at_release(self):
        cluster, proto = make(nodes=2, ppn=1, protocol="1LD")
        p0 = cluster.processors[0]
        page = 2  # home = owner 1

        def w0():
            proto.load(p0, page, 0)
            proto.store(p0, page, 3, 9.0)
            assert proto.master(page)[3] == 0.0  # not yet released
            yield Compute(1.0)
            proto.release_sync(p0)
            assert proto.master(page)[3] == 9.0
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        assert p0.stats.counters["twin_creations"] == 1

    def test_1l_writes_through_immediately(self):
        cluster, proto = make(nodes=2, ppn=1, protocol="1L")
        p0 = cluster.processors[0]
        page = 2

        def w0():
            proto.store(p0, page, 3, 9.0)
            assert proto.master(page)[3] == 9.0  # doubled on the fly
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        assert p0.stats.counters["twin_creations"] == 0
        assert p0.stats.buckets["write_double"] > 0

    def test_1l_store_range_doubles_vectorized(self):
        cluster, proto = make(nodes=2, ppn=1, protocol="1L")
        p0 = cluster.processors[0]
        page = 2

        def w0():
            proto.store_range(p0, page, 4, np.array([1.0, 2.0, 3.0]))
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        assert list(proto.master(page)[4:7]) == [1.0, 2.0, 3.0]


class TestOneLevelAcquireRelease:
    def test_acquire_invalidates_all_noticed_pages(self):
        cluster, proto = make(nodes=2, ppn=1, protocol="1LD")
        p0, p1 = cluster.processors[0], cluster.processors[1]
        page = 2

        def w0():
            proto.load(p0, page, 0)
            yield Compute(5000.0)
            proto.acquire_sync(p0)
            # invalidated: no longer in the sharing set
            assert 0 not in proto.directory.entry(page).sharers()
            yield Compute(1.0)

        def w1():
            yield Compute(1000.0)
            proto.load(p1, page, 0)
            proto.store(p1, page, 1, 4.0)
            yield Compute(20.0)
            proto.release_sync(p1)
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1])

    def test_exclusive_entered_at_release_without_sharers(self):
        cluster, proto = make(nodes=2, ppn=1, protocol="1LD")
        p0 = cluster.processors[0]
        page = 2

        def w0():
            proto.store(p0, page, 0, 1.0)
            yield Compute(5.0)
            proto.release_sync(p0)
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        assert proto.directory.entry(page).exclusive_holder() == (0, 0)
        # Write permission retained: no fault on the next write.
        assert proto.tables[0].perm(page, 0) == Perm.WRITE

    def test_break_exclusive_fetches_latest(self):
        cluster, proto = make(nodes=2, ppn=1, protocol="1LD")
        p0, p1 = cluster.processors[0], cluster.processors[1]
        page = 2

        def w0():
            proto.store(p0, page, 0, 1.0)  # includes a ~1 ms fetch
            yield Compute(5.0)
            proto.release_sync(p0)  # -> exclusive
            proto.store(p0, page, 1, 2.0)  # untracked exclusive write
            yield Compute(50.0)

        def w1():
            yield Compute(5000.0)  # well after w0's release
            assert proto.load(p1, page, 1) == 2.0
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1])
        assert proto.directory.entry(page).exclusive_holder() is None


class TestHomeNodeOptimization:
    def test_home_node_procs_share_master_frame(self):
        cluster, proto = make(nodes=2, ppn=2, protocol="1LD", home_opt=True)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        page = 0  # home = proc 0, node 0

        def w0():
            proto.store(p0, page, 0, 3.0)
            yield Compute(1.0)

        def w1():
            yield Compute(10.0)
            # p1 is on the home node: reads the master directly, sees the
            # write through hardware coherence without any transfer.
            assert proto.load(p1, page, 0) == 3.0
            yield Compute(1.0)

        run_scripts(cluster, [w0, w1])
        assert proto.frames.frame(0, page) is proto.master(page)
        assert proto.frames.frame(1, page) is proto.master(page)
        transfers = sum(p.stats.counters["page_transfers"]
                        for p in cluster.processors)
        assert transfers == 0

    def test_home_opt_skips_twins(self):
        cluster, proto = make(nodes=2, ppn=2, protocol="1LD", home_opt=True)
        p0 = cluster.processors[0]

        def w0():
            proto.store(p0, 0, 0, 1.0)
            yield Compute(1.0)
            proto.release_sync(p0)
            yield Compute(1.0)

        run_scripts(cluster, [w0])
        assert p0.stats.counters["twin_creations"] == 0

    def test_off_node_procs_still_fetch(self):
        cluster, proto = make(nodes=2, ppn=2, protocol="1LD", home_opt=True)
        p0 = cluster.processors[0]
        p2 = cluster.processors[2]  # node 1

        def w0():
            proto.store(p0, 0, 0, 7.0)
            yield Compute(5.0)
            proto.release_sync(p0)
            yield Compute(1.0)

        def w2():
            yield Compute(100.0)
            assert proto.load(p2, 0, 0) == 7.0
            yield Compute(1.0)

        run_scripts(cluster, [w0, None, w2])
        assert p2.stats.counters["page_transfers"] == 1

"""Contracts of the exhaustive small-config model checker (DESIGN.md §12).

* the real protocols pass the default 2-node x 2-proc x 2-page workload
  exhaustively (every schedule, zero violations);
* a planted protocol bug (a 2L that never sends write notices) is
  caught, with a *minimal* counterexample (BFS order guarantees no
  shorter schedule violates);
* a counterexample replays exactly from its schedule and exports
  through the Chrome trace writer as loadable JSON;
* the configuration guard rails hold (no fault injection inside the
  checker, script count bounded by processors).
"""

import json

import pytest

from repro.check import (MUTANTS, ModelChecker, default_scripts,
                         small_config)
from repro.config import FaultConfig
from repro.errors import (CoherenceViolation, InvariantViolation,
                          ProtocolError)

# The mutant's minimal failing schedule: proc 0 writes page 0 (3 steps),
# proc 2 reads it before and after (first critical section: 3 steps),
# then the 8th step is proc 2's second acquire+load observing the stale
# copy. Checked exactly so a regression in the BFS minimality shows up.
MUTANT_MINIMAL_STEPS = 8


@pytest.fixture(scope="module")
def mutant_result():
    checker = ModelChecker(protocol=MUTANTS["no-notices"])
    return checker, checker.run()


# --- the real protocols pass --------------------------------------------------


def test_1ld_passes_exhaustively():
    res = ModelChecker(protocol="1LD").run()
    assert res.ok and res.exhaustive, res.summary()
    assert res.complete_schedules > 0
    assert res.max_depth_seen == sum(len(s) for s in default_scripts())


@pytest.mark.heavy
def test_2l_passes_exhaustively():
    res = ModelChecker(protocol="2L").run()
    assert res.ok and res.exhaustive, res.summary()
    assert res.complete_schedules > 0


def test_budget_exhaustion_is_reported_not_hidden():
    res = ModelChecker(protocol="1LD", max_states=10).run()
    assert res.ok              # no violation found...
    assert not res.exhaustive  # ...but coverage was not complete


# --- the checker catches a planted bug ----------------------------------------


def test_mutant_is_caught_with_minimal_counterexample(mutant_result):
    _, res = mutant_result
    cx = res.counterexample
    assert cx is not None, "the dropped-invalidation mutant slipped through"
    assert isinstance(cx.error, CoherenceViolation)
    assert len(cx.schedule) == MUTANT_MINIMAL_STEPS
    assert len(cx.steps) == len(cx.schedule)
    # The violating step is the stale re-read of page 0 on processor 2.
    _, proc, op = cx.steps[-1]
    assert proc == 2
    assert op[0] in ("acquire", "load")
    assert str(len(cx.schedule)) in cx.describe()


def test_counterexample_replays_exactly(mutant_result):
    checker, res = mutant_result
    with pytest.raises(CoherenceViolation):
        checker.replay(res.counterexample.schedule)


def test_clean_prefix_of_counterexample_replays_cleanly(mutant_result):
    checker, res = mutant_result
    world = checker.replay(res.counterexample.schedule[:-1])
    assert not world.all_done()


def test_check_raises_invariant_violation_with_recipe(mutant_result):
    checker, _ = mutant_result
    with pytest.raises(InvariantViolation) as exc:
        ModelChecker(protocol=MUTANTS["no-notices"]).check()
    err = exc.value
    assert err.schedule == checker.run().counterexample.schedule
    assert len(err.trace) == len(err.schedule)
    assert isinstance(err.cause, CoherenceViolation)


def test_counterexample_exports_as_chrome_trace(mutant_result, tmp_path):
    checker, res = mutant_result
    out = tmp_path / "counterexample.json"
    events = checker.export_counterexample(res.counterexample, out)
    assert events > 0
    with open(out) as fh:
        doc = json.load(fh)  # must round-trip as JSON
    names = {ev.get("name") for ev in doc["traceEvents"]}
    assert "modelcheck_step" in names
    assert "modelcheck_violation" in names
    recovered = tuple(int(i)
                      for i in doc["otherData"]["schedule"].split())
    assert recovered == res.counterexample.schedule


# --- guard rails --------------------------------------------------------------


def test_checker_refuses_fault_injection():
    cfg = small_config()
    from dataclasses import replace
    with pytest.raises(ProtocolError):
        ModelChecker(config=replace(cfg, faults=FaultConfig()))


def test_checker_refuses_more_scripts_than_processors():
    scripts = [[("load", 0, 0)]] * 5  # small_config has 4 processors
    with pytest.raises(ProtocolError):
        ModelChecker(scripts=scripts)


def test_decode_expands_schedule_in_program_order():
    checker = ModelChecker()
    steps = checker.decode((0, 0, 0))
    assert [op for _, _, op in steps] == default_scripts()[0]

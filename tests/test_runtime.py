"""Tests for the runtime layer: segment allocation, block access across
pages, sequential runner, result extraction, statistics plumbing."""

import numpy as np
import pytest

from repro import MachineConfig, run_app, run_sequential
from repro.apps.base import Application, split_range
from repro.errors import ConfigError, SimulationError
from repro.runtime.api import SharedSegment
from repro.runtime.program import ParallelRuntime

CFG = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)


class TestSharedSegment:
    def test_page_aligned_allocation(self):
        seg = SharedSegment(CFG)
        a = seg.alloc("a", 10)
        b = seg.alloc("b", 10)
        assert a.base == 0
        assert b.base == 64  # next page boundary (64 words/page)

    def test_unaligned_allocation_packs(self):
        seg = SharedSegment(CFG)
        seg.alloc("a", 10, page_aligned=False)
        b = seg.alloc("b", 10, page_aligned=False)
        assert b.base == 10

    def test_duplicate_name_rejected(self):
        seg = SharedSegment(CFG)
        seg.alloc("a", 1)
        with pytest.raises(ConfigError):
            seg.alloc("a", 1)

    def test_exhaustion_mentions_remedy(self):
        seg = SharedSegment(CFG)
        with pytest.raises(ConfigError, match="shared_bytes"):
            seg.alloc("big", CFG.shared_bytes)

    def test_idx2(self):
        seg = SharedSegment(CFG)
        a = seg.alloc("a", 64)
        assert a.idx2(2, 3, cols=8) == a.base + 19


class _BlockEcho(Application):
    """Toy app: rank 0 writes a pattern spanning pages; all ranks verify."""

    name = "BlockEcho"

    def default_params(self):
        return {"n": 200}

    small_params = default_params

    def declare(self, segment, params):
        segment.alloc("data", params["n"])

    def worker(self, env, params):
        n = params["n"]
        data = env.arr("data")
        if env.rank == 0:
            env.set_block(data, 0, np.arange(n, dtype=float))
            yield env.compute(10.0)
        env.end_init()
        yield from env.barrier()
        got = env.get_block(data, 5, n - 5)
        assert (got == np.arange(5, n - 5, dtype=float)).all()
        yield env.compute(1.0)

    def result_arrays(self, params):
        return ["data"]


class TestBlockAccess:
    def test_cross_page_blocks_roundtrip(self):
        app = _BlockEcho()
        result = run_app(app, app.default_params(), CFG, "2L")
        assert (result.array("data") == np.arange(200, dtype=float)).all()

    def test_scalar_and_block_agree(self):
        app = _BlockEcho()
        rt = ParallelRuntime(app, app.default_params(), CFG, "2L")
        res = rt.run()
        arr = res.array("data")
        assert arr[77] == 77.0


class TestSequentialRunner:
    def test_time_is_compute_plus_memory(self):
        class Tiny(Application):
            name = "Tiny"

            def declare(self, segment, params):
                segment.alloc("x", 8)

            def worker(self, env, params):
                yield env.compute(10.0, mem_bytes=180.0)  # 1 us of bus

            def result_arrays(self, params):
                return ["x"]

        env, t = run_sequential(Tiny(), {}, CFG)
        assert t == pytest.approx(11.0)

    def test_sequential_rejects_wait_instructions(self):
        class Bad(Application):
            name = "Bad"

            def declare(self, segment, params):
                segment.alloc("x", 8)

            def worker(self, env, params):
                from repro.sim.process import Wait
                yield Wait((), lambda: True)

            def result_arrays(self, params):
                return ["x"]

        with pytest.raises(SimulationError, match="non-compute"):
            run_sequential(Bad(), {}, CFG)

    def test_sequential_flag_deadlock_detected(self):
        class Stuck(Application):
            name = "Stuck"

            def flags_needed(self, params):
                return {"f": 1}

            def declare(self, segment, params):
                segment.alloc("x", 8)

            def worker(self, env, params):
                yield from env.flag_wait("f", 0)

            def result_arrays(self, params):
                return ["x"]

        with pytest.raises(SimulationError, match="deadlock"):
            run_sequential(Stuck(), {}, CFG)


class TestResultExtraction:
    def test_exclusive_pages_read_from_holder(self):
        # An app that leaves a page in exclusive mode at the end: the
        # extraction must read the holder's frame, not the stale master.
        class Leaver(Application):
            name = "Leaver"

            def declare(self, segment, params):
                segment.alloc("x", 8)

            def worker(self, env, params):
                env.end_init()
                yield from env.barrier()
                if env.rank == 1:
                    env.set(env.arr("x"), 0, 42.0)
                yield env.compute(1.0)

            def result_arrays(self, params):
                return ["x"]

        result = run_app(Leaver(), {}, CFG, "2L")
        assert result.array("x")[0] == 42.0


class TestStatsPlumbing:
    def test_table3_row_has_all_fields(self):
        from repro.apps import make_app
        app = make_app("SOR")
        run = run_app(app, app.small_params(), CFG, "2L")
        row = run.stats.table3_row()
        expected_keys = {
            "exec_time_s", "lock_flag_acquires", "barriers", "read_faults",
            "write_faults", "page_transfers", "directory_updates",
            "write_notices", "excl_transitions", "data_mbytes",
            "twin_creations", "incoming_diffs", "flush_updates",
            "shootdowns"}
        assert set(row) == expected_keys
        assert row["barriers"] > 0
        assert row["data_mbytes"] > 0

    def test_breakdown_fractions_sum_to_one(self):
        from repro.apps import make_app
        app = make_app("SOR")
        run = run_app(app, app.small_params(), CFG, "2L")
        fracs = run.stats.breakdown_fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["user"] > 0
        assert fracs["protocol"] > 0

    def test_exec_time_is_max_processor_clock(self):
        from repro.apps import make_app
        app = make_app("SOR")
        rt = ParallelRuntime(app, app.small_params(), CFG, "2L")
        res = rt.run()
        assert res.stats.exec_time_us == pytest.approx(
            max(p.clock for p in rt.cluster.processors))


class TestSplitRange:
    def test_covers_everything_once(self):
        for n in (0, 1, 7, 16, 33):
            for parts in (1, 2, 5, 8):
                covered = []
                for w in range(parts):
                    lo, hi = split_range(n, parts, w)
                    covered.extend(range(lo, hi))
                assert covered == list(range(n))

    def test_balanced(self):
        sizes = [split_range(10, 3, w) for w in range(3)]
        lens = [hi - lo for lo, hi in sizes]
        assert max(lens) - min(lens) <= 1

"""Smoke tests for the experiment harnesses (small scale) and reporters."""

import pytest

from repro.experiments.configs import (APP_ORDER, PLACEMENT_ORDER,
                                       PROTOCOL_ORDER, experiment_config)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.stats.report import format_table, kilo, pct_change


class TestReport:
    def test_format_table_alignment(self):
        out = format_table("T", ["a", "b"],
                           [("row", [1, 2.5]), ("other", [None, "x"])])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "row" in out and "2.50" in out and "-" in out

    def test_kilo(self):
        assert kilo(2500) == 2.5

    def test_pct_change(self):
        assert pct_change(90.0, 100.0) == pytest.approx(10.0)
        assert pct_change(110.0, 100.0) == pytest.approx(-10.0)
        assert pct_change(1.0, 0.0) == 0.0

    def test_format_large_numbers(self):
        out = format_table("T", ["v"], [("big", [1234567])])
        assert "1 234 567" in out


class TestConfigs:
    def test_canonical_orders(self):
        assert len(APP_ORDER) == 8
        assert PROTOCOL_ORDER == ("2L", "2LS", "1LD", "1L")
        assert len(PLACEMENT_ORDER) == 9

    def test_experiment_config_placements(self):
        cfg = experiment_config("24:3")
        assert cfg.total_procs == 24
        assert cfg.procs_per_node == 3


class TestTable1:
    def test_costs_and_format(self):
        results = run_table1()
        out = results.format()
        assert "Lock Acquire" in out
        assert results.lock_acquire["2L"] > results.lock_acquire["1LD"]
        assert results.page_transfer_remote["1LD"] > 0


class TestTable2:
    def test_rows_and_format(self):
        rows = run_table2(apps=("SOR", "Em3d"))
        out = format_table2(rows)
        assert "SOR" in out and "Em3d" in out
        assert all(r.seq_time_s > 0 for r in rows)


class TestSmallScaleHarnesses:
    """Run the table/figure harnesses on a small platform + small apps."""

    def test_table3_small(self):
        from repro.experiments.configs import FULL_PLATFORM
        cfg = FULL_PLATFORM.with_placement(8, 2)
        res = run_table3(apps=("Em3d",), protocols=("2L", "1LD"),
                         config=cfg)
        row = res.stats["Em3d"]["2L"]
        assert row["barriers"] > 0
        assert "Em3d" in res.format()

    def test_figure6_small(self):
        from repro.experiments.configs import FULL_PLATFORM
        cfg = FULL_PLATFORM.with_placement(8, 2)
        res = run_figure6(apps=("Em3d",), protocols=("2L", "1L"),
                          config=cfg)
        assert sum(res.breakdown["Em3d"]["2L"].values()) == \
            pytest.approx(100.0)
        assert res.breakdown["Em3d"]["1L"]["write_double"] > 0

    def test_figure7_small(self):
        res = run_figure7(apps=("Em3d",), protocols=("2L",),
                          placements=("4:1", "8:4"), home_opt=False)
        sp = res.speedup["Em3d"]["2L"]
        assert set(sp) == {"4:1", "8:4"}
        assert sp["8:4"] > sp["4:1"] * 0.8
        assert "Em3d" in res.format()


class TestRunnerCLI:
    def test_unknown_app_rejected(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["table2", "NotAnApp"])

    def test_table2_cli(self, capsys):
        from repro.experiments.runner import main
        assert main(["table2", "Em3d"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_table2_cli_json(self, capsys):
        import json
        from repro.experiments.runner import main
        assert main(["table2", "Em3d", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment"] == "table2"
        assert doc["data"][0]["app"] == "Em3d"

    def test_trace_cli_requires_single_app(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["trace"])
        with pytest.raises(SystemExit):
            main(["profile", "SOR", "Water"])

    def test_trace_cli_writes_chrome_json(self, tmp_path, capsys):
        import json
        from repro.experiments.runner import main
        out = tmp_path / "trace.json"
        assert main(["trace", "sor", "--out", str(out)]) == 0
        assert "perfetto" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["app"] == "SOR"

    def test_profile_cli(self, capsys):
        from repro.experiments.runner import main
        assert main(["profile", "sor", "--protocol", "1LD"]) == 0
        out = capsys.readouterr().out
        assert "Hot pages" in out and "Barrier episodes" in out


class TestScaleFamily:
    """The big-cluster scaling ladder (repro.experiments.scale)."""

    def _tiny(self):
        from repro.experiments.scale import run_scale
        from repro.experiments.sweep import Sweep
        return run_scale(apps=("SOR",), ladder=((2, 2), (4, 2)),
                         quick=True, sweep=Sweep(cache=None))

    def test_tiny_ladder_rows(self):
        res = self._tiny()
        per = res.rows["SOR"]
        assert set(per) == {"2x2", "4x2"}
        row = per["4x2"]
        assert row["procs"] == 8
        assert row["speedup"] > 1.0
        assert row["mc_mbytes"] > 0
        assert row["barrier_us_per_episode"] > 0  # tree departures cost
        assert row["combine_hops"] > 0
        assert row["sharers_per_page"] > 0
        assert res.seq_time_s["SOR"] > 0
        assert "Scale — SOR" in res.format()

    def test_to_bench_json_is_store_ingestable(self, tmp_path):
        from repro.metrics.store import RunStore
        doc = self._tiny().to_bench_json()
        assert doc["experiment"] == "scale"
        entry = doc["benchmarks"]["scale_sor_4x2"]
        assert entry["procs"] == 8
        assert entry["wall_s"] > 0
        with RunStore(str(tmp_path / "m.db")) as store:
            rid = store.ingest_bench(doc, label="scale-test")
            counters = store.counters(rid)
        assert counters["scale_sor_4x2.procs"] == 8
        assert counters["scale_sor_4x2.speedup"] > 1.0

    def test_cell_scale_metadata(self):
        from repro.experiments.scale import QUICK_PARAMS, scale_config
        from repro.experiments.sweep import RunSpec, execute_cell
        spec = RunSpec.app_run("SOR", "2L", scale_config(2, 2),
                               params=QUICK_PARAMS["SOR"])
        cell = execute_cell(spec)
        s = cell.scale
        assert s is not None
        assert s["procs"] == 4
        assert s["dir_pages"] > 0 and s["dir_sharers"] > 0
        assert s["barrier_episodes"] > 0
        assert s["barrier_combine_hops"] > 0  # scale_config uses tree

    def test_scale_cli_rejects_unscalable_app(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["scale", "Em3d"])

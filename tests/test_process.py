"""Unit tests for simulated processes (generator coroutines)."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Condition, Simulator
from repro.sim.process import (Charge, Compute, ExecutionContext,
                               ProcessGroup, Sleep, Wait)


class FakeCtx(ExecutionContext):
    """Minimal execution context: charges advance the clock."""

    def __init__(self):
        self.clock = 0.0
        self.charges = []
        self.polls = 0

    def charge(self, us, bucket):
        self.clock += us
        self.charges.append((us, bucket))

    def run_compute(self, cpu_us, mem_bytes):
        self.charge(cpu_us, "user")

    def service_requests(self):
        self.polls += 1


def run_one(gen, ctx=None):
    sim = Simulator()
    ctx = ctx or FakeCtx()
    group = ProcessGroup(sim)
    proc = group.spawn(ctx, gen, "test")
    group.run()
    return proc, ctx


class TestInstructions:
    def test_compute_advances_clock(self):
        def prog():
            yield Compute(5.0)
            yield Compute(3.0)

        proc, ctx = run_one(prog())
        assert ctx.clock == 8.0
        assert proc.done

    def test_charge_uses_named_bucket(self):
        def prog():
            yield Charge(4.0, "protocol")

        _, ctx = run_one(prog())
        assert ctx.charges == [(4.0, "protocol")]

    def test_sleep_charges_bucket(self):
        def prog():
            yield Sleep(7.0, "comm_wait")

        _, ctx = run_one(prog())
        assert ctx.charges == [(7.0, "comm_wait")]

    def test_negative_compute_rejected(self):
        with pytest.raises(SimulationError):
            Compute(-1.0)

    def test_unknown_instruction_fails_process(self):
        def prog():
            yield "nonsense"

        sim = Simulator()
        group = ProcessGroup(sim)
        group.spawn(FakeCtx(), prog(), "bad")
        with pytest.raises(SimulationError):
            group.run()

    def test_return_value_captured(self):
        def prog():
            yield Compute(1.0)
            return 42

        proc, _ = run_one(prog())
        assert proc.result == 42


class TestWait:
    def test_wait_already_satisfied_continues_immediately(self):
        def prog():
            got = yield Wait(cond, lambda: "ready")
            assert got == "ready"

        sim = Simulator()
        cond = Condition(sim, "c")
        group = ProcessGroup(sim)
        group.spawn(FakeCtx(), prog(), "w")
        group.run()

    def test_wait_blocks_until_fired(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        state = {"ready": False}
        log = []

        def waiter():
            got = yield Wait(cond, lambda: state["ready"])
            log.append(got)

        def setter():
            yield Compute(10.0)
            state["ready"] = True
            cond.fire(ctx2.clock)

        group = ProcessGroup(sim)
        ctx1, ctx2 = FakeCtx(), FakeCtx()
        group.spawn(ctx1, waiter(), "waiter")
        group.spawn(ctx2, setter(), "setter")
        group.run()
        assert log == [True]
        assert ctx1.clock == 10.0  # woken at the setter's time

    def test_wait_charges_bucket_for_blocked_time(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        state = {"ready": False}

        def waiter():
            yield Wait(cond, lambda: state["ready"], bucket="comm_wait")

        def setter():
            yield Compute(25.0)
            state["ready"] = True
            cond.fire(25.0)

        group = ProcessGroup(sim)
        ctx1 = FakeCtx()
        group.spawn(ctx1, waiter(), "waiter")
        group.spawn(FakeCtx(), setter(), "setter")
        group.run()
        assert (25.0, "comm_wait") in ctx1.charges

    def test_spurious_wake_reparks(self):
        sim = Simulator()
        cond = Condition(sim, "c")
        state = {"n": 0}

        def waiter():
            yield Wait(cond, lambda: state["n"] >= 2)

        def setter():
            for _ in range(2):
                yield Compute(5.0)
                state["n"] += 1
                cond.fire(ctx2.clock)

        group = ProcessGroup(sim)
        ctx1, ctx2 = FakeCtx(), FakeCtx()
        group.spawn(ctx1, waiter(), "waiter")
        group.spawn(ctx2, setter(), "setter")
        group.run()
        assert ctx1.clock == 10.0

    def test_polling_happens_at_yield_points(self):
        def prog():
            yield Compute(1.0)
            yield Compute(1.0)

        _, ctx = run_one(prog())
        assert ctx.polls >= 2


class TestDeadlockDetection:
    def test_parked_forever_raises_deadlock(self):
        sim = Simulator()
        cond = Condition(sim, "never")

        def prog():
            yield Wait(cond, lambda: False)

        group = ProcessGroup(sim)
        group.spawn(FakeCtx(), prog(), "stuck")
        with pytest.raises(DeadlockError, match="deadlock"):
            group.run()

    def test_exception_in_process_propagates(self):
        def prog():
            yield Compute(1.0)
            raise ValueError("app bug")

        sim = Simulator()
        group = ProcessGroup(sim)
        group.spawn(FakeCtx(), prog(), "boom")
        with pytest.raises(ValueError, match="app bug"):
            group.run()

    def test_all_complete_normally(self):
        sim = Simulator()
        group = ProcessGroup(sim)
        for i in range(5):
            def prog(i=i):
                yield Compute(float(i + 1))
            group.spawn(FakeCtx(), prog(), f"p{i}")
        group.run()
        assert all(p.done for p in group.processes)

"""The sweep engine: parallel determinism, the content-addressed cache,
and the CLI knobs.

The load-bearing properties:

1. Parallel execution (``jobs=2`` and ``jobs=4``) produces **byte-
   identical** formatted and JSON output to serial execution — results
   are merged back in spec order, and cells are independent.
2. The cache round-trips bit-exact results, and is invalidated by any
   RunSpec field change or any source-tree change (via the digest).
3. ``--no-cache`` never touches the disk; ``--refresh`` re-executes and
   rewrites.
"""

import dataclasses
import json
import os
import pickle

import pytest

from repro.experiments import sweep as sweep_mod
from repro.experiments.configs import FULL_PLATFORM
from repro.experiments.sweep import (CACHE_SCHEMA, CellResult, ResultCache,
                                     RunSpec, Sweep, cache_key,
                                     config_from_key, config_key,
                                     execute_cell, resolve_jobs, run_cells)
from repro.experiments.figure7 import run_figure7
from repro.experiments.table3 import run_table3

SMALL = FULL_PLATFORM.with_placement(8, 2)


def small_spec(protocol="2L", app="Em3d", **kwargs):
    return RunSpec.app_run(app, protocol, SMALL, **kwargs)


class TestRunSpec:
    def test_config_round_trip(self):
        key = config_key(SMALL)
        assert config_from_key(key) == SMALL
        assert hash(key)  # usable as part of a frozen spec

    def test_spec_is_hashable_and_picklable(self):
        spec = small_spec(params={"_compute_scale": 2.0})
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            execute_cell(dataclasses.replace(small_spec(), kind="nope"))


class TestParallelDeterminism:
    """Parallel output must be byte-identical to serial output."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_figure7_quick_byte_identical(self, jobs):
        kwargs = dict(apps=("SOR",), placements=("4:1", "8:4"),
                      home_opt=False)
        serial = run_figure7(sweep=Sweep(jobs=1), **kwargs)
        parallel = run_figure7(sweep=Sweep(jobs=jobs), **kwargs)
        assert parallel.format() == serial.format()
        assert json.dumps(dataclasses.asdict(parallel)) == \
            json.dumps(dataclasses.asdict(serial))

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_table3_all_protocols_byte_identical(self, jobs):
        kwargs = dict(apps=("SOR",),
                      protocols=("2L", "2LS", "1LD", "1L"), config=SMALL)
        serial = run_table3(sweep=Sweep(jobs=1), **kwargs)
        parallel = run_table3(sweep=Sweep(jobs=jobs), **kwargs)
        assert parallel.format() == serial.format()
        assert json.dumps(dataclasses.asdict(parallel)) == \
            json.dumps(dataclasses.asdict(serial))

    def test_pool_and_serial_cells_bit_exact(self):
        specs = [small_spec("2L"), small_spec("1LD")]
        serial = run_cells(specs, Sweep(jobs=1))
        pooled = run_cells(specs, Sweep(jobs=2))
        for a, b in zip(serial, pooled):
            assert a == b  # dataclass equality: every float bit-exact


class TestCache:
    def test_round_trip_bit_exact(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        cold = Sweep(cache=cache)
        first = run_cells([spec], cold)[0]
        assert (cold.stats.hits, cold.stats.misses,
                cold.stats.executed) == (0, 1, 1)
        warm = Sweep(cache=cache)
        second = run_cells([spec], warm)[0]
        assert (warm.stats.hits, warm.stats.misses,
                warm.stats.executed) == (1, 0, 0)
        assert second == first
        assert second.table3 == first.table3

    def test_spec_field_change_invalidates(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        run_cells([small_spec("2L")], Sweep(cache=cache))
        changed = Sweep(cache=cache)
        run_cells([small_spec("1LD")], changed)
        assert changed.stats.misses == 1
        for variant in (small_spec(params={"_compute_scale": 2.0}),
                        small_spec(lock_free=False),
                        RunSpec.seq_run("Em3d", SMALL)):
            assert cache.get(variant) is None

    def test_source_digest_change_invalidates(self, tmp_path,
                                              monkeypatch):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        run_cells([spec], Sweep(cache=cache))
        assert cache.get(spec) is not None
        monkeypatch.setattr(sweep_mod, "_source_digest",
                            "0" * 64)
        assert cache.get(spec) is None
        stale = Sweep(cache=cache)
        run_cells([spec], stale)
        assert stale.stats.misses == 1 and stale.stats.executed == 1

    def test_version_in_key(self, monkeypatch):
        spec = small_spec()
        before = cache_key(spec)
        monkeypatch.setattr(sweep_mod, "__version__", "999.0.0")
        assert cache_key(spec) != before

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        run_cells([spec], Sweep(cache=cache))
        path = cache.path(cache_key(spec))
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert cache.get(spec) is None
        recovered = Sweep(cache=cache)
        run_cells([spec], recovered)  # re-executes and heals the entry
        assert recovered.stats.executed == 1
        assert cache.get(spec) is not None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        path = cache.path(cache_key(spec))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump({"schema": "other", "result": CellResult()}, fh)
        assert cache.get(spec) is None
        assert CACHE_SCHEMA != "other"

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CASHMERE_CACHE_DIR", str(tmp_path / "alt"))
        cache = ResultCache()
        assert cache.root == str(tmp_path / "alt")

    def test_refresh_mode_reexecutes_and_rewrites(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        real = run_cells([spec], Sweep(cache=cache))[0]
        # Poison the entry; a plain warm run would serve the poison.
        poisoned = CellResult(exec_time_us=-1.0, table3=real.table3)
        cache.put(spec, poisoned)
        assert cache.get(spec).exec_time_us == -1.0
        refresh = Sweep(cache=ResultCache(root=str(tmp_path),
                                          mode="refresh"))
        result = run_cells([spec], refresh)[0]
        assert refresh.stats.hits == 0 and refresh.stats.executed == 1
        assert result == real
        # ...and the poisoned entry was rewritten with the real result.
        assert cache.get(spec) == real

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(mode="maybe")


class TestNoCache:
    def test_no_cache_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CASHMERE_CACHE_DIR", str(tmp_path / "c"))
        sweep = Sweep(cache=None)
        run_cells([small_spec()], sweep)
        assert not (tmp_path / "c").exists()
        assert sweep.stats.executed == 1
        assert sweep.stats.hits == 0 and sweep.stats.misses == 0


class TestJobsResolution:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("CASHMERE_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("CASHMERE_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit wins

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("CASHMERE_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestRunnerCLI:
    def run_cli(self, capsys, argv):
        from repro.experiments.runner import main
        assert main(argv) == 0
        return capsys.readouterr()

    def test_json_all_is_single_array(self, capsys, tmp_path,
                                      monkeypatch):
        monkeypatch.setenv("CASHMERE_CACHE_DIR", str(tmp_path))
        # 'all' limited to one cheap app still covers every experiment.
        # (The app goes before --json: --json greedily takes a PATH.)
        captured = self.run_cli(capsys, ["all", "SOR", "--quick",
                                         "--json"])
        docs = json.loads(captured.out)
        assert isinstance(docs, list) and len(docs) == 9
        assert [d["experiment"] for d in docs] == [
            "table1", "table2", "table3", "figure6", "figure7",
            "shootdown", "lockfree", "sensitivity", "polling"]
        assert "misses" in captured.err and "hits" in captured.err

    def test_warm_rerun_executes_nothing_and_matches(self, capsys,
                                                     tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("CASHMERE_CACHE_DIR", str(tmp_path))
        first = self.run_cli(capsys, ["figure7", "SOR", "--quick", "-j",
                                      "2"])
        assert "0 hits" in first.err
        second = self.run_cli(capsys, ["figure7", "SOR", "--quick"])
        assert second.out == first.out
        assert "0 misses; 0 simulations executed" in second.err
        assert "[figure7:" in second.err  # per-experiment progress line

    def test_no_cache_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("CASHMERE_CACHE_DIR", str(tmp_path / "c"))
        captured = self.run_cli(capsys, ["table2", "SOR", "--no-cache"])
        assert "cache disabled" in captured.err
        assert not (tmp_path / "c").exists()

    def test_refresh_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("CASHMERE_CACHE_DIR", str(tmp_path))
        self.run_cli(capsys, ["table2", "SOR"])
        captured = self.run_cli(capsys, ["table2", "SOR", "--refresh"])
        assert "0 hits" in captured.err
        assert "1 simulations executed" in captured.err

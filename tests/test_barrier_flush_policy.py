"""Tests for the two-level barrier's arrival-flush policy (Section 2.3).

"Each processor within the node, as it arrives, performs page flushes for
those (non-exclusive) pages for which it is the last arriving local
writer. Waiting until all local processors arrive before initiating any
flushes would result in unnecessary serialization. Initiating a flush of
a page for which there are local writers that have not yet arrived would
result in unnecessary network traffic."
"""

import pytest

from repro.cluster.machine import Cluster
from repro.config import MachineConfig
from repro.protocol import make_protocol
from repro.sim.process import Compute, ProcessGroup
from repro.sync import Barrier


def make(nodes=2, ppn=2):
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * 4, superpage_pages=2)
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    return cluster, proto


def run_scripts(cluster, scripts):
    group = ProcessGroup(cluster.sim)

    def idle():
        yield Compute(0.1)

    for i, proc in enumerate(cluster.processors):
        gen = scripts[i]() if i < len(scripts) and scripts[i] else idle()
        group.spawn(proc, gen, f"p{i}")
    group.run()


class TestLastLocalWriterFlush:
    def test_single_flush_covers_both_writers(self):
        # Both processors of node 0 write page 2 (home: node 1) and meet
        # at a barrier. Exactly one flush should carry both writers' data.
        cluster, proto = make()
        barrier = Barrier(cluster, proto)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        p2 = cluster.processors[2]
        page = 2

        def reader():  # makes node 1 a sharer so node 0 can't go exclusive
            def gen():
                proto.load(p2, page, 0)
                yield Compute(1.0)
                yield from barrier.wait(p2)
            return gen

        def writer(proc, word, value, delay):
            def gen():
                yield Compute(delay)
                proto.store(proc, page, word, value)
                yield Compute(10.0)
                yield from barrier.wait(proc)
            return gen

        def idle_barrier(proc):
            def gen():
                yield from barrier.wait(proc)
            return gen

        scripts = [writer(p0, 0, 5.0, 1500.0), writer(p1, 1, 6.0, 1600.0),
                   reader(), idle_barrier(cluster.processors[3])]
        run_scripts(cluster, scripts)

        master = proto.master(page)
        assert master[0] == 5.0
        assert master[1] == 6.0
        # Early arriver deferred: no flush-update was needed (the single
        # last-writer flush covered everything, so the twin was dropped).
        assert proto.node_state[0].meta[page].twin is None

    def test_early_arriver_defers_to_later_writer(self):
        # The first arriving writer must NOT flush while a local co-writer
        # is still computing; the co-writer's later flush carries both.
        cluster, proto = make()
        barrier = Barrier(cluster, proto)
        p0, p1 = cluster.processors[0], cluster.processors[1]
        p2 = cluster.processors[2]
        page = 2
        flush_clocks = []

        orig = type(proto)._flush_page

        def spy(self, proc, st, ns, page_, meta):
            if page_ == page:
                flush_clocks.append((proc.global_id, proc.clock))
            orig(self, proc, st, ns, page_, meta)

        type(proto)._flush_page = spy
        try:
            def gen0():
                proto.store(p0, page, 0, 1.0)
                yield Compute(1.0)       # p0 arrives early
                yield from barrier.wait(p0)

            def gen1():
                proto.store(p1, page, 1, 2.0)
                yield Compute(5000.0)    # p1 arrives late
                yield from barrier.wait(p1)

            def gen2():
                proto.load(p2, page, 0)
                yield Compute(1.0)
                yield from barrier.wait(p2)

            def gen3():
                yield from barrier.wait(cluster.processors[3])

            run_scripts(cluster, [gen0, gen1, gen2, gen3])
        finally:
            type(proto)._flush_page = orig

        page_flushes = [pid for pid, _ in flush_clocks]
        # Only the last arriving writer (p1) flushed this page.
        assert page_flushes.count(0) == 0
        assert page_flushes.count(1) == 1

    def test_exclusive_pages_not_flushed_at_barrier(self):
        cluster, proto = make()
        barrier = Barrier(cluster, proto)
        p0 = cluster.processors[0]
        page = 0  # home node 0; no other sharers -> exclusive

        def gen0():
            proto.store(p0, page, 0, 9.0)
            yield from barrier.wait(p0)

        def idle_barrier(proc):
            def gen():
                yield from barrier.wait(proc)
            return gen

        scripts = [gen0] + [idle_barrier(p) for p in
                            cluster.processors[1:]]
        run_scripts(cluster, scripts)
        assert p0.stats.counters["write_notices"] == 0
        assert proto.directory.entry(page).exclusive_holder() == (0, 0)


class TestBarrierConsistency:
    @pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
    def test_writes_before_barrier_visible_after(self, protocol):
        cfg = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                            shared_bytes=512 * 4, superpage_pages=2)
        cluster = Cluster(cfg)
        proto = make_protocol(protocol, cluster)
        barrier = Barrier(cluster, proto)
        observed = {}

        def writer(proc, page, word, value):
            def gen():
                proto.store(proc, page, word, float(value))
                yield Compute(1.0)
                yield from barrier.wait(proc)
                yield from barrier.wait(proc)
            return gen

        def reader(proc):
            def gen():
                yield from barrier.wait(proc)
                vals = [proto.load(proc, pg, w)
                        for pg, w in [(0, 0), (1, 1), (2, 2)]]
                observed[proc.global_id] = vals
                yield Compute(1.0)
                yield from barrier.wait(proc)
            return gen

        procs = cluster.processors
        scripts = [writer(procs[0], 0, 0, 10), writer(procs[1], 1, 1, 11),
                   writer(procs[2], 2, 2, 12), reader(procs[3])]
        group = ProcessGroup(cluster.sim)
        for i, proc in enumerate(procs):
            group.spawn(proc, scripts[i](), f"p{i}")
        group.run()
        assert observed[3] == [10.0, 11.0, 12.0]

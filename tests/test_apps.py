"""End-to-end application correctness: every benchmark application, run
under every protocol, must produce the same results as its uninstrumented
sequential execution. Because the protocols genuinely move the data
(twins, diffs, master copies), these are the strongest coherence tests in
the suite.
"""

import pytest

from repro import MachineConfig, run_and_verify, run_sequential
from repro.apps import ALL_APPS, make_app

SMALL = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512)
WIDE = MachineConfig(nodes=4, procs_per_node=1, page_bytes=512)
PAPER_SHAPE = MachineConfig(nodes=4, procs_per_node=2, page_bytes=512)

APP_NAMES = list(ALL_APPS)


@pytest.mark.parametrize("app_name", APP_NAMES)
@pytest.mark.parametrize("protocol", ["2L", "2LS", "1LD", "1L"])
def test_app_correct_under_protocol(app_name, protocol):
    app = make_app(app_name)
    cmp = run_and_verify(app, app.small_params(), SMALL, protocol=protocol)
    assert cmp.verified, (f"{app_name} under {protocol}: max error "
                          f"{cmp.max_error}")
    assert cmp.run.exec_time_us > 0


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_app_correct_one_proc_per_node(app_name):
    app = make_app(app_name)
    cmp = run_and_verify(app, app.small_params(), WIDE, protocol="2L")
    assert cmp.verified


@pytest.mark.parametrize("app_name", ["SOR", "Gauss", "Em3d", "Water"])
@pytest.mark.parametrize("protocol", ["1LD", "1L"])
def test_app_correct_with_home_node_opt(app_name, protocol):
    app = make_app(app_name)
    cmp = run_and_verify(app, app.small_params(), PAPER_SHAPE,
                         protocol=protocol, home_opt=True)
    assert cmp.verified


@pytest.mark.parametrize("app_name", ["SOR", "Barnes", "Ilink"])
def test_app_correct_with_global_lock_directory(app_name):
    app = make_app(app_name)
    cmp = run_and_verify(app, app.small_params(), PAPER_SHAPE,
                         protocol="2L", lock_free=False)
    assert cmp.verified


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_app_sequential_is_deterministic(app_name):
    app = make_app(app_name)
    env1, t1 = run_sequential(app, app.small_params(), SMALL)
    env2, t2 = run_sequential(app, app.small_params(), SMALL)
    assert t1 == t2
    assert (env1.mem == env2.mem).all()


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_parallel_run_is_deterministic(app_name):
    from repro import run_app
    app = make_app(app_name)
    r1 = run_app(app, app.small_params(), SMALL, "2L")
    r2 = run_app(make_app(app_name), app.small_params(), SMALL, "2L")
    assert r1.exec_time_us == r2.exec_time_us
    assert r1.stats.table3_row() == r2.stats.table3_row()


class TestAppCharacteristics:
    """The paper's qualitative per-application properties (Section 3.2)."""

    def test_barnes_uses_no_locks(self):
        from repro import run_app
        app = make_app("Barnes")
        run = run_app(app, app.small_params(), SMALL, "2L")
        assert run.stats.counter("lock_acquires") == 0
        assert run.stats.counter("barriers") > 0

    def test_water_uses_locks(self):
        from repro import run_app
        app = make_app("Water")
        run = run_app(app, app.small_params(), SMALL, "2L")
        assert run.stats.counter("lock_acquires") > 0

    def test_gauss_uses_flags(self):
        from repro import run_app
        app = make_app("Gauss")
        run = run_app(app, app.small_params(), SMALL, "2L")
        assert run.stats.counter("flag_acquires") > 0

    def test_water_exercises_twin_maintenance(self):
        # Water is the false-sharing, lock-based app: under 2L it should
        # produce flush-updates or incoming diffs; under 2LS, shootdowns.
        from repro import run_app
        app = make_app("Water")
        params = app.default_params()
        cfg = MachineConfig(nodes=4, procs_per_node=2, page_bytes=512)
        r2l = run_app(app, params, cfg, "2L")
        twin_traffic = (r2l.stats.counter("flush_updates")
                        + r2l.stats.counter("incoming_diffs"))
        assert twin_traffic > 0
        r2ls = run_app(make_app("Water"), params, cfg, "2LS")
        assert r2ls.stats.counter("shootdowns") > 0

    def test_sor_mostly_exclusive(self):
        # Band-partitioned SOR: interior pages are single-node and should
        # ride in exclusive mode.
        from repro import run_app
        app = make_app("SOR")
        run = run_app(app, app.default_params(), PAPER_SHAPE, "2L")
        assert run.stats.counter("excl_transitions") > 0

    def test_tsp_finds_optimum(self):
        # Non-deterministic search must still find the exact optimum.
        app = make_app("TSP")
        cmp = run_and_verify(app, app.small_params(), PAPER_SHAPE, "2L")
        assert cmp.verified
        best = cmp.run.array("best")
        assert best[0] < 1e17  # a real tour was found

"""Unit tests for the applications' computational kernels.

These test the algorithm implementations directly (pure numpy level),
independent of the DSM machinery: LU's blocked kernels against a
reference factorization, Barnes-Hut tree structure and force accuracy,
TSP's distances/bounds/heap, Em3d's stencil, and the partitioning
helpers. App-level end-to-end correctness lives in test_apps.py.
"""

import numpy as np
import pytest

from repro.apps.barnes import _CELL_WORDS, _Tree, _force_on
from repro.apps.lu import _bdiv, _bmodd, _factor_diag
from repro.apps.tsp import TSP, _distances


class TestLUKernels:
    def _random_spd(self, n, seed=3):
        rng = np.random.RandomState(seed)
        a = rng.rand(n, n)
        a += n * np.eye(n)
        return a

    def test_factor_diag_reconstructs(self):
        a = self._random_spd(8)
        lu = a.copy()
        _factor_diag(lu)
        lower = np.tril(lu, -1) + np.eye(8)
        upper = np.triu(lu)
        assert np.allclose(lower @ upper, a)

    def test_bdiv_inverts_upper(self):
        diag = self._random_spd(6)
        _factor_diag(diag)
        upper = np.triu(diag)
        rng = np.random.RandomState(7)
        blk = rng.rand(6, 6)
        solved = blk.copy()
        _bdiv(solved, diag)
        assert np.allclose(solved @ upper, blk)

    def test_bmodd_inverts_unit_lower(self):
        diag = self._random_spd(6)
        _factor_diag(diag)
        lower = np.tril(diag, -1) + np.eye(6)
        rng = np.random.RandomState(11)
        blk = rng.rand(6, 6)
        solved = blk.copy()
        _bmodd(solved, diag)
        assert np.allclose(lower @ solved, blk)

    def test_full_blocked_factorization_matches_scipy_style(self):
        # Drive the three kernels exactly as the worker does, on a 4x4
        # block matrix, and compare L@U against the original.
        n, B = 16, 4
        nb = n // B
        a = self._random_spd(n, seed=5)
        blocks = {(i, j): a[i * B:(i + 1) * B, j * B:(j + 1) * B].copy()
                  for i in range(nb) for j in range(nb)}
        for k in range(nb):
            _factor_diag(blocks[k, k])
            for j in range(k + 1, nb):
                _bmodd(blocks[k, j], blocks[k, k])
            for i in range(k + 1, nb):
                _bdiv(blocks[i, k], blocks[k, k])
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    blocks[i, j] -= blocks[i, k] @ blocks[k, j]
        lu = np.block([[blocks[i, j] for j in range(nb)]
                       for i in range(nb)])
        lower = np.tril(lu, -1) + np.eye(n)
        upper = np.triu(lu)
        assert np.allclose(lower @ upper, a, atol=1e-8)


class TestBarnesTree:
    def _build(self, n=64, seed=2):
        rng = np.random.RandomState(seed)
        pos = rng.uniform(-4, 4, size=(n, 2))
        tree = _Tree(np.zeros((4 * n, _CELL_WORDS)))
        root = tree.new_cell(0.0, 0.0, 5.0)
        for b in range(n):
            tree.insert(root, b, pos)
        tree.summarize(root, pos)
        return tree, root, pos

    def test_every_body_reachable_exactly_once(self):
        tree, root, pos = self._build()
        found = []
        stack = [root]
        while stack:
            cell = stack.pop()
            for q in range(4):
                child = int(tree.cells[cell, 4 + q])
                if child < 0:
                    found.append(-child - 1)
                elif child > 0:
                    stack.append(child - 1)
        assert sorted(found) == list(range(len(pos)))

    def test_root_mass_is_total(self):
        tree, root, pos = self._build()
        assert tree.cells[root, 0] == pytest.approx(len(pos))

    def test_center_of_mass(self):
        tree, root, pos = self._build()
        assert tree.cells[root, 1] == pytest.approx(pos[:, 0].mean())
        assert tree.cells[root, 2] == pytest.approx(pos[:, 1].mean())

    def test_force_approximates_direct_sum(self):
        tree, root, pos = self._build(n=128, seed=9)
        from repro.apps.barnes import _EPS2
        for body in (0, 17, 99):
            approx, inter = _force_on(body, pos, tree.cells, root)
            d = pos - pos[body]
            r2 = (d ** 2).sum(axis=1) + _EPS2
            inv = 1.0 / (r2 * np.sqrt(r2))
            inv[body] = 0.0
            direct = (d * inv[:, None]).sum(axis=0)
            # theta=0.6 multipole approximation: a few percent accuracy.
            assert np.linalg.norm(approx - direct) < \
                0.1 * np.linalg.norm(direct) + 1e-6
            assert inter < len(pos)  # strictly cheaper than direct sum

    def test_cell_pool_exhaustion_raises(self):
        tree = _Tree(np.zeros((2, _CELL_WORDS)))
        root = tree.new_cell(0.0, 0.0, 1.0)
        pos = np.array([[0.1, 0.1], [0.10001, 0.10001], [-0.5, -0.5],
                        [0.2, -0.2]])
        with pytest.raises(RuntimeError, match="cell pool"):
            for b in range(4):
                tree.insert(root, b, pos)
            # Deep splits on near-coincident bodies exhaust two cells.


class TestTSPPieces:
    def test_distances_symmetric_positive(self):
        d = _distances(8)
        assert (d == d.T).all()
        assert (np.diag(d) == 0).all()
        off = d[~np.eye(8, dtype=bool)]
        assert (off >= 1.0).all()

    def test_distances_deterministic(self):
        assert (_distances(7) == _distances(7)).all()

    def test_shared_heap_orders_by_bound(self):
        from repro import MachineConfig
        from repro.runtime.api import SharedSegment
        from repro.runtime.sequential import SequentialEnv
        app = TSP()
        params = {"cities": 6, "queue_slots": 64}
        cfg = MachineConfig(nodes=1, procs_per_node=1, page_bytes=512)
        seg = SharedSegment(cfg)
        app.declare(seg, params)
        env = SequentialEnv(cfg, seg)
        heap, meta = env.arr("heap"), env.arr("meta")
        import random
        rng = random.Random(4)
        bounds = [rng.uniform(0, 100) for _ in range(40)]
        for i, b in enumerate(bounds):
            app._heap_push(env, heap, meta, b, i)
        popped = [app._heap_pop(env, heap, meta)[0] for _ in bounds]
        assert popped == sorted(bounds)

    def test_freelist_roundtrip(self):
        from repro import MachineConfig
        from repro.runtime.api import SharedSegment
        from repro.runtime.sequential import SequentialEnv
        app = TSP()
        params = {"cities": 6, "queue_slots": 8}
        cfg = MachineConfig(nodes=1, procs_per_node=1, page_bytes=512)
        seg = SharedSegment(cfg)
        app.declare(seg, params)
        env = SequentialEnv(cfg, seg)
        freelist, meta = env.arr("freelist"), env.arr("meta")
        env.set_block(freelist, 0, np.arange(8, dtype=float))
        env.set(meta, 1, 8)
        slots = [app._alloc_slot(env, freelist, meta) for _ in range(8)]
        assert sorted(slots) == list(range(8))
        for s in slots:
            app._free_slot(env, freelist, meta, s)
        assert int(env.get(meta, 1)) == 8


class TestEm3dStencil:
    def test_gather_weights(self):
        from repro.apps.em3d import _gather, _OFFSETS, _WEIGHTS
        block = np.zeros(12)
        block[2:10] = np.arange(8.0)  # nodes 0..7 with 2-halo
        out = _gather(block, 8)
        for i in range(3, 6):
            expected = sum(w * block[2 + i + off]
                           for off, w in zip(_OFFSETS, _WEIGHTS))
            assert out[i] == pytest.approx(expected)


class TestWaterSymmetry:
    def test_pairwise_forces_sum_to_zero(self):
        # Newton's third law holds for the vectorized accumulation the
        # worker performs (even mol count: each pair counted once).
        n, half = 8, 4
        rng = np.random.RandomState(1)
        all_pos = rng.rand(n, 3) * 3
        acc = np.zeros((n, 3))
        for i in range(n):
            js = np.arange(i + 1, i + half + 1) % n
            d = all_pos[js] - all_pos[i]
            r2 = (d * d).sum(axis=1) + 0.1
            f = d / (r2 * np.sqrt(r2))[:, None]
            acc[i] += f.sum(axis=0)
            acc[js] -= f
        # Every ordered pair is visited from exactly one side except the
        # antipodal pair at even n, which is visited from both; the total
        # momentum change is still zero by symmetry.
        assert np.allclose(acc.sum(axis=0), 0.0, atol=1e-12)

#!/usr/bin/env python3
"""Compare the four Cashmere protocols on one application.

Reproduces, for a single application, the comparison at the heart of the
paper: two-level (2L, 2LS) versus one-level (1LD, 1L) coherence on the
same clustered hardware. Prints execution time, speedup, and the protocol
counters that explain the differences — page transfers and data volume
shrink under the two-level protocols because processors of a node share
one copy of each page.

Usage:  python examples/protocol_comparison.py [APP] [NODES] [PROCS/NODE]
        [--quick]
"""

import sys

from repro import MachineConfig, run_app, run_sequential
from repro.apps import ALL_APPS, make_app


def main(quick: bool = False) -> None:
    argv = [a for a in sys.argv[1:] if a != "--quick"]
    quick = quick or "--quick" in sys.argv[1:]
    app_name = argv[0] if len(argv) > 0 else "Gauss"
    nodes = int(argv[1]) if len(argv) > 1 else (2 if quick else 8)
    ppn = int(argv[2]) if len(argv) > 2 else (2 if quick else 4)
    if app_name not in ALL_APPS:
        raise SystemExit(f"unknown app {app_name!r}")
    config = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512)

    app = make_app(app_name)
    params = app.small_params() if quick else app.default_params()
    _, seq_us = run_sequential(app, params, config)
    print(f"{app.name} on {nodes}x{ppn} processors "
          f"(sequential {seq_us / 1e6:.3f} s)\n")

    header = (f"{'':14s}{'2L':>10s}{'2LS':>10s}{'1LD':>10s}{'1L':>10s}")
    print(header)
    print("-" * len(header))

    rows: dict[str, list] = {}
    fields = ["exec_time_s", "page_transfers", "data_mbytes",
              "write_notices", "directory_updates", "excl_transitions",
              "twin_creations", "shootdowns"]
    speedups = []
    for protocol in ("2L", "2LS", "1LD", "1L"):
        run = run_app(make_app(app_name), params, config, protocol)
        table = run.stats.table3_row()
        speedups.append(seq_us / run.exec_time_us)
        for field in fields:
            rows.setdefault(field, []).append(table[field])

    print(f"{'speedup':14s}" + "".join(f"{s:>10.2f}" for s in speedups))
    for field in fields:
        vals = rows[field]
        cells = "".join(
            f"{v:>10.3f}" if isinstance(v, float) else f"{v:>10d}"
            for v in vals)
        print(f"{field:14s}{cells}")

    base, best = rows["exec_time_s"][2], rows["exec_time_s"][0]
    gain = 100.0 * (base - best) / base
    print(f"\nCashmere-2L vs 1LD: {gain:+.1f}% execution time "
          f"({'faster' if gain > 0 else 'slower'})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The effect of clustering: same processor count, different node shapes.

Section 3.3.3 of the paper studies what happens when the number of
processors per node grows while the total stays fixed: memory-bound
applications (SOR, Gauss) *lose* performance to node-bus contention,
while communication-bound applications (Em3d, Barnes) *gain* under the
two-level protocols because intra-node sharing replaces network traffic.

This example sweeps 8 processors arranged as 8x1, 4x2, and 2x4 and prints
the speedup per arrangement for a memory-bound and a communication-bound
application under 2L and 1LD.

Usage:  python examples/clustering_study.py [APP ...] [--quick]
"""

import sys

from repro import MachineConfig, run_app, run_sequential
from repro.apps import ALL_APPS, make_app

ARRANGEMENTS = ((8, 1), (4, 2), (2, 4))


def study(app_name: str, quick: bool = False) -> None:
    app = make_app(app_name)
    params = app.small_params() if quick else app.default_params()
    base_cfg = MachineConfig(nodes=8, procs_per_node=1, page_bytes=512)
    _, seq_us = run_sequential(app, params, base_cfg)
    print(f"\n{app_name} (sequential {seq_us / 1e6:.3f} s) — "
          f"8 processors total:")
    print(f"  {'layout':10s}{'2L':>8s}{'1LD':>8s}")
    arrangements = ARRANGEMENTS[1:] if quick else ARRANGEMENTS
    for nodes, ppn in arrangements:
        cfg = MachineConfig(nodes=nodes, procs_per_node=ppn,
                            page_bytes=512)
        sp = {}
        for protocol in ("2L", "1LD"):
            run = run_app(make_app(app_name), params, cfg, protocol)
            sp[protocol] = seq_us / run.exec_time_us
        print(f"  {nodes}x{ppn:<8d}{sp['2L']:>8.2f}{sp['1LD']:>8.2f}")


def main(quick: bool = False) -> None:
    args = [a for a in sys.argv[1:] if a != "--quick"]
    quick = quick or "--quick" in sys.argv[1:]
    apps = args or (["SOR"] if quick else ["SOR", "Em3d"])
    for app_name in apps:
        if app_name not in ALL_APPS:
            raise SystemExit(f"unknown app {app_name!r}")
        study(app_name, quick)
    print("\nMemory-bound codes slow down as processors share a node bus;")
    print("communication-bound codes speed up as sharing moves on-node "
          "(two-level protocols only).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Write your own shared-memory application against the DSM runtime.

This example implements a new workload from scratch — a parallel Jacobi
matrix-vector power iteration — showing everything a downstream user
needs:

* declare shared arrays,
* write a worker generator using the env API (get/set blocks, compute
  charges, barriers, end-of-initialization marker),
* run it sequentially and in parallel under any protocol,
* verify the results match.

The same worker code runs in both settings; anything that can block is a
``yield from env...`` call, and simulated time passes only at
``yield env.compute(...)`` points.
"""

import sys

import numpy as np

from repro import MachineConfig, run_and_verify
from repro.apps.base import Application, split_range


class PowerIteration(Application):
    """x <- normalize(A @ x), repeated; rows of A partitioned by processor."""

    name = "PowerIteration"
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"n": 64, "iters": 8}

    def declare(self, segment, params):
        n = params["n"]
        segment.alloc("A", n * n)
        segment.alloc("x", n)
        segment.alloc("y", n)
        segment.alloc("norm", 1)

    def worker(self, env, params):
        n, iters = params["n"], params["iters"]
        A, x, y = env.arr("A"), env.arr("x"), env.arr("y")
        norm = env.arr("norm")

        # --- initialization (rank 0), then first-touch homes arm --------
        if env.rank == 0:
            for i in range(n):
                row = 1.0 / (1.0 + np.abs(np.arange(n) - i))
                env.set_block(A, i * n, row)
            env.set_block(x, 0, np.ones(n))
            yield env.compute(n * n * 0.01, n * n * 8 * 0.1)
        env.end_init()
        yield from env.barrier()

        # The K003 lint correctly spots that these phases could become
        # RegionKernels (see src/repro/apps/sor.py for the pattern and
        # ``cashmere-repro lower-gen`` for a generated scaffold); this
        # tutorial keeps the plain interpreted form for readability.
        lo, hi = split_range(n, env.nprocs, env.rank)
        for _ in range(iters):
            if hi > lo:  # cashmere: ignore[K003]
                xv = env.get_block(x, 0, n)
                for i in range(lo, hi):
                    row = env.get_block(A, i * n, (i + 1) * n)
                    env.set(y, i, float(row @ xv))
                yield env.compute((hi - lo) * n * 25.0,
                                  (hi - lo) * n * 60.0)
            yield from env.barrier()
            if env.rank == 0:  # cashmere: ignore[K003]
                yv = env.get_block(y, 0, n)
                env.set(norm, 0, float(np.abs(yv).max()))
                yield env.compute(n * 25.0, n * 60.0)
            yield from env.barrier()
            if hi > lo:  # cashmere: ignore[K003]
                scale = env.get(norm, 0)
                yv = env.get_block(y, lo, hi)
                env.set_block(x, lo, yv / scale)
                yield env.compute((hi - lo) * 25.0, (hi - lo) * 60.0)
            yield from env.barrier()

    def result_arrays(self, params):
        return ["x", "norm"]


def main(quick: bool = False) -> None:
    quick = quick or "--quick" in sys.argv[1:]
    app = PowerIteration()
    params = {"n": 16, "iters": 2} if quick else app.default_params()
    nodes = 2 if quick else 4
    config = MachineConfig(nodes=nodes, procs_per_node=2, page_bytes=512)
    print("Running a custom application (power iteration) under all four "
          "protocols...\n")
    for protocol in ("2L", "2LS", "1LD", "1L"):
        cmp = run_and_verify(app, params, config,
                             protocol=protocol)
        x = cmp.run.array("x")
        print(f"  {protocol:4s} speedup {cmp.speedup:5.2f}  verified "
              f"{cmp.verified}  dominant eigenvalue "
              f"{cmp.run.array('norm')[0]:.6f}  |x|max {np.abs(x).max():.4f}")
    print("\nAll four protocols computed identical results through "
          "completely different coherence machinery.")


if __name__ == "__main__":
    main()

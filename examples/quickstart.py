#!/usr/bin/env python3
"""Quickstart: run one benchmark on the simulated cluster and verify it.

Runs Red-Black SOR under the Cashmere-2L protocol on a 4-node x
2-processor cluster, checks the parallel result against the
uninstrumented sequential execution, and prints the speedup and the
protocol activity behind it.

With ``--check``, the run additionally executes under the
:mod:`repro.check` correctness checker: a vector-clock happens-before
race detector plus a coherence oracle that cross-checks page contents
against a golden image at every barrier. (Checking is orthogonal to
simulated timing; it only costs host CPU.)

With ``--trace FILE``, the run records protocol events (faults, page
transfers, diffs, lock/barrier waits, Memory Channel traffic) and
exports them as Chrome ``trace_event`` JSON — open the file at
https://ui.perfetto.dev to see one timeline track per processor.

Usage:  python examples/quickstart.py [APP] [--check] [--quick]
        [--trace FILE]
"""

import sys

from repro import MachineConfig, run_and_verify
from repro.apps import ALL_APPS, make_app
from repro.trace import write_chrome_trace


def main(quick: bool = False) -> None:
    args = list(sys.argv[1:])
    check = "--check" in args
    quick = quick or "--quick" in args
    argv = [a for a in args if a not in ("--check", "--quick")]
    trace_out = None
    if "--trace" in argv:
        i = argv.index("--trace")
        if i + 1 >= len(argv):
            raise SystemExit("--trace needs an output file, "
                             "e.g. --trace trace.json")
        trace_out = argv[i + 1]
        del argv[i:i + 2]
    unknown = [a for a in argv if a.startswith("-")]
    if unknown:
        raise SystemExit(f"unknown option(s) {unknown}; usage: "
                         f"quickstart.py [APP] [--check] [--quick] "
                         f"[--trace FILE]")
    app_name = argv[0] if argv else "SOR"
    if app_name not in ALL_APPS:
        raise SystemExit(f"unknown app {app_name!r}; "
                         f"choose from {list(ALL_APPS)}")
    app = make_app(app_name)
    config = MachineConfig(nodes=4, procs_per_node=2, page_bytes=512,
                           checking=check, tracing=trace_out is not None)

    print(f"Running {app.name} ({app.paper_problem_size} in the paper) "
          f"on {config.nodes} nodes x {config.procs_per_node} processors "
          f"under Cashmere-2L"
          f"{' with correctness checking' if check else ''}...")
    params = app.small_params() if quick else app.default_params()
    cmp = run_and_verify(app, params, config, protocol="2L")

    if check:
        stats = cmp.run.stats
        print(f"\nCorrectness checker: "
              f"{stats.counter('check_events')} accesses traced, "
              f"{stats.counter('check_vc_merges')} vector-clock merges, "
              f"{stats.counter('check_races')} races found")

    print(f"\n  sequential time : {cmp.seq_time_us / 1e6:8.3f} s (simulated)")
    print(f"  parallel time   : {cmp.run.exec_time_us / 1e6:8.3f} s "
          f"(simulated)")
    print(f"  speedup         : {cmp.speedup:8.2f} on "
          f"{config.total_procs} processors")
    print(f"  verified        : {cmp.verified} "
          f"(max deviation {cmp.max_error:.2e})")

    print("\nProtocol activity (aggregated over all processors):")
    for key, value in cmp.run.stats.table3_row().items():
        print(f"  {key:20s} {value:>12.6g}")

    fracs = cmp.run.stats.breakdown_fractions()
    print("\nExecution time breakdown:")
    for bucket, frac in fracs.items():
        print(f"  {bucket:14s} {100 * frac:5.1f} %")

    if trace_out is not None:
        n = write_chrome_trace(cmp.run.trace, trace_out)
        print(f"\nWrote {n} trace events to {trace_out} "
              f"(open at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run one benchmark on the simulated cluster and verify it.

Runs Red-Black SOR under the Cashmere-2L protocol on a 4-node x
2-processor cluster, checks the parallel result against the
uninstrumented sequential execution, and prints the speedup and the
protocol activity behind it.

Usage:  python examples/quickstart.py [APP]
"""

import sys

from repro import MachineConfig, run_and_verify
from repro.apps import ALL_APPS, make_app


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "SOR"
    if app_name not in ALL_APPS:
        raise SystemExit(f"unknown app {app_name!r}; "
                         f"choose from {list(ALL_APPS)}")
    app = make_app(app_name)
    config = MachineConfig(nodes=4, procs_per_node=2, page_bytes=512)

    print(f"Running {app.name} ({app.paper_problem_size} in the paper) "
          f"on {config.nodes} nodes x {config.procs_per_node} processors "
          f"under Cashmere-2L...")
    cmp = run_and_verify(app, app.default_params(), config, protocol="2L")

    print(f"\n  sequential time : {cmp.seq_time_us / 1e6:8.3f} s (simulated)")
    print(f"  parallel time   : {cmp.run.exec_time_us / 1e6:8.3f} s "
          f"(simulated)")
    print(f"  speedup         : {cmp.speedup:8.2f} on "
          f"{config.total_procs} processors")
    print(f"  verified        : {cmp.verified} "
          f"(max deviation {cmp.max_error:.2e})")

    print("\nProtocol activity (aggregated over all processors):")
    for key, value in cmp.run.stats.table3_row().items():
        print(f"  {key:20s} {value:>12.6g}")

    fracs = cmp.run.stats.breakdown_fractions()
    print("\nExecution time breakdown:")
    for bucket, frac in fracs.items():
        print(f"  {bucket:14s} {100 * frac:5.1f} %")


if __name__ == "__main__":
    main()

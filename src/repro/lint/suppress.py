"""Per-line suppression comments.

A finding is silenced by a trailing comment on the line it is reported
at::

    env.set_block(force, lo * 3, new)  # cashmere: ignore[A004]

``ignore[R1,R2]`` silences those rule IDs; a bare ``ignore`` silences
every rule on the line. Suppressed findings are still collected (they
appear in the JSON document and the summary counts) — a suppression is
an audited decision, not a deletion.
"""

from __future__ import annotations

import re

#: Matches ``# cashmere: ignore`` and ``# cashmere: ignore[A001, D101]``.
_PATTERN = re.compile(
    r"#\s*cashmere:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")

#: Sentinel for a bare ``ignore`` (all rules).
ALL = "*"


def suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule IDs suppressed there."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _PATTERN.search(line)
        if m is None:
            continue
        spec = m.group("rules")
        if spec is None:
            table[lineno] = frozenset({ALL})
        else:
            rules = frozenset(p.strip().upper()
                              for p in spec.split(",") if p.strip())
            table[lineno] = rules or frozenset({ALL})
    return table


def is_suppressed(table: dict[int, frozenset[str]], line: int,
                  rule: str) -> bool:
    """Whether ``rule`` is suppressed on ``line``."""
    rules = table.get(line)
    if rules is None:
        return False
    return ALL in rules or rule in rules

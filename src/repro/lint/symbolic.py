"""The symbolic access-summary domain for lint engine 4 (DESIGN §16).

Region kernels (:mod:`repro.lower`) carry two descriptions of the same
sync-free loop: the ``interp`` body (ground truth) and the hand-built
per-step touch lists. This module abstract-interprets both ASTs over an
*affine index domain* — polynomials with rational coefficients over
opaque symbols (kernel parameters, loop-step indices, loop-element
values) — and reduces each to a :class:`RegionSummary`: an ordered,
per-step list of ``(mode, array, lo, hi)`` word spans, with optional
first-use conditions for lazy-caching kernels. Two summaries that
compare equal mean the descriptor provably mirrors the body's access
order; the comparison itself lives in :mod:`repro.lint.touch`.

Loops are handled by **first-iteration peeling** plus a steady-state
stabilization check (the widening step): the body is interpreted once
with the loop position pinned to 0 (resolving ``k == 0`` /
``down is None`` first-iteration idioms), then twice more at a symbolic
position ``>= 1``; if the second and third passes do not emit identical
summaries, the loop-carried state failed to stabilize and the kernel is
reported unverifiable (K004) rather than guessed at.

Everything unsupported degrades to :class:`VOpaque`; an opaque value
reaching an access extent or index raises :class:`SymbolicError` with
the offending source expression — the honest "cannot verify" outcome.

Deliberate approximations (documented, checked dynamically by
``tests/test_touch_vs_trace.py``):

* element-wise numpy arithmetic between a known-length block and an
  unknown operand is assumed length-preserving (kernels do not rely on
  broadcasting to *grow* a block);
* first-use conditions compare by key polynomial only (two caches keyed
  by the same expression are not distinguished);
* an ``if <...lowerable...>: return`` guard in a constructor is taken
  as false (the summary models the lowering-enabled path).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Sequence, Union

#: A monomial: the sorted tuple of symbol names multiplied together.
#: The empty tuple is the constant term.
Mono = tuple[str, ...]


class SymbolicError(Exception):
    """Analysis left the affine domain; ``node`` locates the blame."""

    def __init__(self, why: str, node: ast.AST | None = None) -> None:
        super().__init__(why)
        self.why = why
        self.line = getattr(node, "lineno", 0) if node is not None else 0
        self.col = getattr(node, "col_offset", 0) if node is not None else 0


# ---------------------------------------------------------------------------
# Polynomials over opaque symbols
# ---------------------------------------------------------------------------


class Poly:
    """A polynomial with :class:`~fractions.Fraction` coefficients over
    opaque symbols. Affine index expressions — and the products of
    symbolic strides real kernels use, like ``(i * nb + k) * B * B`` —
    normalize to one canonical term dict, so two spellings of the same
    span compare equal."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict[Mono, Fraction]) -> None:
        self.terms: dict[Mono, Fraction] = {
            m: c for m, c in terms.items() if c != 0}

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: Union[int, float, Fraction]) -> "Poly":
        return Poly({(): Fraction(value)})

    @staticmethod
    def sym(name: str) -> "Poly":
        return Poly({(name,): Fraction(1)})

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Poly") -> "Poly":
        terms = dict(self.terms)
        for m, c in other.terms.items():
            terms[m] = terms.get(m, Fraction(0)) + c
        return Poly(terms)

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __mul__(self, other: "Poly") -> "Poly":
        terms: dict[Mono, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = tuple(sorted(m1 + m2))
                terms[m] = terms.get(m, Fraction(0)) + c1 * c2
        return Poly(terms)

    # -- queries -----------------------------------------------------------

    def as_const(self) -> Fraction | None:
        if not self.terms:
            return Fraction(0)
        if len(self.terms) == 1 and () in self.terms:
            return self.terms[()]
        return None

    def key(self) -> tuple[tuple[Mono, Fraction], ...]:
        return tuple(sorted(self.terms.items()))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Poly) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.key())

    def symbols(self) -> frozenset[str]:
        return frozenset(s for m in self.terms for s in m)

    def substitute(self, name: str, value: "Poly") -> "Poly":
        """Replace every occurrence of symbol ``name`` with ``value``."""
        out = Poly({})
        for m, c in self.terms.items():
            term = Poly({tuple(s for s in m if s != name): c})
            for _ in range(sum(1 for s in m if s == name)):
                term = term * value
            out = out + term
        return out

    def render(self) -> str:
        if not self.terms:
            return "0"
        parts: list[str] = []
        for m, c in sorted(self.terms.items()):
            body = "*".join(m)
            if not m:
                parts.append(str(c))
            elif c == 1:
                parts.append(body)
            elif c == -1:
                parts.append(f"-{body}")
            else:
                parts.append(f"{c}*{body}")
        return " + ".join(parts).replace("+ -", "- ")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Poly({self.render()})"


#: Steady-state loop-position symbols (created by the peeled loop
#: interpreter) are known to be >= 1; this prefix marks them so
#: ``k == 0`` resolves to a definite False past the first iteration.
_POS_PREFIX = "$i:"


def poly_is_zero(p: Poly) -> bool | None:
    """True/False when provable, None when unknown."""
    c = p.as_const()
    if c is not None:
        return c == 0
    if len(p.terms) == 1:
        (mono, coeff), = p.terms.items()
        if all(s.startswith(_POS_PREFIX) for s in mono) and coeff != 0:
            return False
    return None


# ---------------------------------------------------------------------------
# Summary entries
# ---------------------------------------------------------------------------

#: A condition atom: ``("first", key-poly-render)`` for first-use tests,
#: ``("expr", canonical-source)`` for anything else; paired with its
#: polarity. Entries carry a frozenset of atoms (conjunction).
CondAtom = tuple[str, str, bool]
Conds = frozenset[CondAtom]

READ_MODE = "R"
WRITE_MODE = "W"


@dataclass(frozen=True)
class Span:
    """One ordered touch: ``mode`` over words ``[lo, hi)`` of ``array``."""

    mode: str
    array: str
    lo: Poly
    hi: Poly
    conds: Conds = frozenset()

    def render(self) -> str:
        cond = ""
        if self.conds:
            shown = sorted(
                f"{'' if pos else '!'}{kind}({what})"
                for kind, what, pos in self.conds)
            cond = f" if {' and '.join(shown)}"
        return (f"{self.mode} {self.array}"
                f"[{self.lo.render()} : {self.hi.render()}]{cond}")


@dataclass(frozen=True)
class Scatter:
    """A within-step loop of touches: ``entries`` once per element of
    ``seq``, in element order (ilink's per-word scattered writes)."""

    seq: str
    entries: tuple["Entry", ...]
    conds: Conds = frozenset()

    def render(self) -> str:
        inner = "; ".join(e.render() for e in self.entries)
        return f"for each of {self.seq}: [{inner}]"


Entry = Union[Span, Scatter]


@dataclass(frozen=True)
class StepTemplate:
    """The ordered touches of one super-step."""

    entries: tuple[Entry, ...]

    def render(self) -> str:
        return "; ".join(e.render() for e in self.entries) or "(none)"


@dataclass(frozen=True)
class RegionSummary:
    """What one region provably touches, step by step.

    ``prologue`` holds the peeled leading steps (all steps, for loopless
    single-step kernels); ``body`` is the steady-state template of the
    step loop over sequence ``seq`` (None when there is no step loop).
    """

    prologue: tuple[StepTemplate, ...]
    seq: str | None
    body: StepTemplate | None

    def render(self) -> str:
        lines = [f"step[{k}]: {t.render()}"
                 for k, t in enumerate(self.prologue)]
        if self.body is not None:
            lines.append(f"step[k>=1 over {self.seq}]: {self.body.render()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


class Value:
    """Base of the abstract value lattice."""

    __slots__ = ()


@dataclass
class VPoly(Value):
    p: Poly


@dataclass
class VBlock(Value):
    """A numpy array of known total word length."""

    length: Poly


@dataclass
class VParam(Value):
    """An unresolved kernel parameter / attribute, named canonically
    (``self._src``); usable as a number, array handle, or sequence."""

    canon: str


@dataclass
class VTuple(Value):
    items: tuple[Value, ...]


@dataclass
class VNone(Value):
    pass


@dataclass
class VBool(Value):
    b: bool


@dataclass
class VCond(Value):
    """An abstract boolean: one condition atom."""

    kind: str
    what: str
    positive: bool


@dataclass
class VCache(Value):
    """A set/dict used as a first-use cache (LU's lazy row/col loads)."""

    empty: bool


@dataclass
class VList(Value):
    """A list being built into touch entries (``step``) or into a list
    of steps (``touches``); ``steps`` flips once a list is appended."""

    entries: list[Entry] = field(default_factory=list)
    steps: list[tuple[Entry, ...]] | None = None
    opaque: bool = False


@dataclass
class VSpanExpr(Value):
    """The result of ``self.span_pages(arr, lo, hi)``."""

    array: str
    lo: Poly
    hi: Poly


@dataclass
class VEnumerate(Value):
    seq: str


@dataclass
class VFunc(Value):
    """An inlinable single-return helper (``LU._block_base``)."""

    func: ast.FunctionDef


@dataclass
class VEnvMethod(Value):
    name: str


@dataclass
class VMode(Value):
    """The READ/WRITE touch-mode constants."""

    mode: str


@dataclass
class VOpaque(Value):
    why: str = "unsupported expression"


#: numpy ndarray methods that preserve the total element count.
_LENGTH_PRESERVING = frozenset({"copy", "ravel", "astype"})

#: env methods that read/write shared arrays: name -> (mode, is_block).
_ACCESSES = {"get": (READ_MODE, False), "get_block": (READ_MODE, True),
             "set": (WRITE_MODE, False), "set_block": (WRITE_MODE, True)}


def _canon_expr(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # type: ignore[arg-type]
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<?>"


class _Frame:
    """One interpretation context: bindings + the step being built."""

    __slots__ = ("bindings", "attrs", "cur", "closed")

    def __init__(self) -> None:
        self.bindings: dict[str, Value] = {}
        self.attrs: dict[str, Value] = {}
        #: Touches of the step currently being accumulated.
        self.cur: list[Entry] = []
        #: Steps closed so far (by ``yield`` / ``touches.append``).
        self.closed: list[tuple[Entry, ...]] = []


class SymbolicInterp:
    """Abstract interpreter over one kernel method's statements.

    Two modes share all machinery: ``interp`` mode closes a step at
    every plain ``yield``; ``ctor`` mode closes a step whenever a
    span list is appended to the steps list (``touches.append(step)``)
    and finishes when ``self.touches`` is assigned.
    """

    def __init__(self, mode: str, self_name: str, env_name: str | None,
                 param_canon: dict[str, str],
                 module_consts: dict[str, Poly],
                 helpers: dict[str, ast.FunctionDef]) -> None:
        assert mode in ("interp", "ctor")
        self.mode = mode
        self.self_name = self_name
        self.env_name = env_name
        self.param_canon = param_canon
        self.module_consts = module_consts
        self.helpers = helpers
        self.frame = _Frame()
        self.conds: list[CondAtom] = []
        #: Set when ``self.touches`` is assigned (ctor mode).
        self.touches_value: VList | None = None
        #: The step loop, once seen: (canonical seq, ast node).
        self.loop_seq: str | None = None
        self.body_template: StepTemplate | None = None
        self._loop_done = False

    # -- entry point -------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> RegionSummary:
        for stmt in body:
            self._stmt(stmt)
        if self.mode == "ctor":
            if self.touches_value is None:
                raise SymbolicError(
                    "no self.touches assignment found in __init__")
            closed = self.touches_value.steps
            if closed is None:
                raise SymbolicError(
                    "self.touches is not a recognizable list of steps")
            prologue = tuple(StepTemplate(s) for s in closed)
        else:
            if self.frame.cur:
                raise SymbolicError(
                    "accesses after the final yield do not belong to "
                    "any super-step")
            prologue = tuple(StepTemplate(s) for s in self.frame.closed)
        return RegionSummary(prologue=prologue, seq=self.loop_seq,
                             body=self.body_template)

    # -- statements --------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._expr(stmt.value),
                             stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._augassign(stmt)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Yield):
                if stmt.value.value is not None:
                    self._expr(stmt.value.value)
                self._close_step(stmt)
                return
            self._expr(stmt.value)
            return
        if isinstance(stmt, ast.If):
            self._if(stmt)
            return
        if isinstance(stmt, ast.For):
            self._for(stmt)
            return
        if isinstance(stmt, ast.Return):
            # Constructors end early on the not-lowerable guard; _if
            # already skips that branch, so a reachable return here is
            # the normal end of the analyzed path.
            if stmt.value is not None:
                self._expr(stmt.value)
            return
        if isinstance(stmt, ast.Pass):
            return
        if isinstance(stmt, (ast.While, ast.Try, ast.With, ast.AsyncWith,
                             ast.Match)):
            if self._contains_access_or_yield(stmt):
                raise SymbolicError(
                    f"unsupported control flow for touch inference: "
                    f"{type(stmt).__name__.lower()} around accesses",
                    stmt)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Assert, ast.Delete,
                             ast.Global, ast.Nonlocal, ast.Import,
                             ast.ImportFrom)):
            return
        raise SymbolicError(
            f"unsupported statement: {type(stmt).__name__}", stmt)

    def _contains_access_or_yield(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Attribute) and f.attr in _ACCESSES:
                    return True
                if isinstance(f, ast.Name):
                    bound = self.frame.bindings.get(f.id)
                    if isinstance(bound, VEnvMethod) \
                            and bound.name in _ACCESSES:
                        return True
        return False

    # -- assignment --------------------------------------------------------

    def _assign(self, target: ast.expr, value: Value,
                src: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            self.frame.bindings[target.id] = value
            return
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == self.self_name:
            if target.attr == "touches" and self.mode == "ctor":
                self._finish_touches(value, src)
            self.frame.attrs[target.attr] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items = value.items if isinstance(value, VTuple) else None
            for k, t in enumerate(target.elts):
                if items is not None and k < len(items):
                    self._assign(t, items[k], None)
                else:
                    self._assign(t, VOpaque("tuple unpack"), None)
            return
        if isinstance(target, ast.Subscript):
            # Stores into local buffers (``block[a:b] = ...``) don't
            # touch shared memory; stores into a cache mark it warm.
            base = self._expr(target.value)
            if isinstance(base, VCache):
                base.empty = False
            return
        raise SymbolicError(
            f"unsupported assignment target: {_canon_expr(target)}",
            target)

    def _finish_touches(self, value: Value, src: ast.expr | None) -> None:
        if isinstance(value, VList) and not value.opaque:
            if value.steps is None and not value.entries:
                value.steps = []
            if value.steps is None:
                raise SymbolicError(
                    "self.touches assigned a span list, not a list of "
                    "per-step lists", src)
            self.touches_value = value
            return
        raise SymbolicError(
            "self.touches assignment is not analyzable "
            f"({_canon_expr(src) if src is not None else '<?>'})", src)

    def _augassign(self, stmt: ast.AugAssign) -> None:
        target = stmt.target
        value = self._expr(stmt.value)
        if isinstance(target, ast.Name):
            cur = self.frame.bindings.get(target.id, VOpaque())
            # ``step += [(MODE, p) ...]`` must extend the *same* list
            # object: scatter-loop tracking and the steps list hold
            # references to it.
            if isinstance(stmt.op, ast.Add) and isinstance(cur, VList) \
                    and isinstance(value, VList) \
                    and not cur.opaque and not value.opaque \
                    and cur.steps is None and value.steps is None:
                cur.entries.extend(value.entries)
                return
            self.frame.bindings[target.id] = \
                self._binop_values(cur, stmt.op, value, stmt)
            return
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == self.self_name:
            cur = self.frame.attrs.get(target.attr, VOpaque())
            self.frame.attrs[target.attr] = \
                self._binop_values(cur, stmt.op, value, stmt)
            return
        if isinstance(target, ast.Subscript):
            self._expr(target.value)
            return
        raise SymbolicError("unsupported augmented assignment", stmt)

    # -- steps -------------------------------------------------------------

    def _close_step(self, at: ast.stmt) -> None:
        if self.conds:
            raise SymbolicError(
                "super-step boundary under an unresolved condition", at)
        self.frame.closed.append(tuple(self.frame.cur))
        self.frame.cur = []

    def _touch(self, mode: str, array: str, lo: Poly, hi: Poly) -> None:
        self.frame.cur.append(
            Span(mode, array, lo, hi, frozenset(self.conds)))

    # -- conditionals ------------------------------------------------------

    def _is_lowerable_guard(self, stmt: ast.If) -> bool:
        if self.mode != "ctor" or stmt.orelse:
            return False
        if not all(isinstance(s, (ast.Return, ast.Pass, ast.Expr))
                   for s in stmt.body):
            return False
        if not any(isinstance(s, ast.Return) for s in stmt.body):
            return False
        return any(isinstance(n, ast.Attribute) and n.attr == "lowerable"
                   for n in ast.walk(stmt.test))

    def _if(self, stmt: ast.If) -> None:
        if self._is_lowerable_guard(stmt):
            return  # model the lowering-enabled fall-through
        try:
            cond = self._cond(stmt.test)
        except SymbolicError:
            # A data-dependent branch (``if red:``) is fine as long as
            # it cannot affect the touch summary: no accesses, no step
            # boundaries. Interpret both arms for their local bindings.
            if self._contains_access_or_yield(stmt) \
                    or self._closes_steps_anywhere(stmt):
                raise
            for s in stmt.body:
                self._stmt(s)
            for s in stmt.orelse:
                self._stmt(s)
            return
        if cond is True:
            for s in stmt.body:
                self._stmt(s)
            return
        if cond is False:
            for s in stmt.orelse:
                self._stmt(s)
            return
        kind, what, positive = cond
        self.conds.append((kind, what, positive))
        for s in stmt.body:
            self._stmt(s)
        self.conds.pop()
        if stmt.orelse:
            self.conds.append((kind, what, not positive))
            for s in stmt.orelse:
                self._stmt(s)
            self.conds.pop()

    def _cond(self, test: ast.expr) -> Union[bool, CondAtom]:
        value = self._expr(test)
        return self._cond_of_value(value, test)

    def _cond_of_value(self, value: Value,
                       test: ast.expr) -> Union[bool, CondAtom]:
        if isinstance(value, VBool):
            return value.b
        if isinstance(value, VCond):
            return (value.kind, value.what, value.positive)
        if isinstance(value, VPoly):
            z = poly_is_zero(value.p)
            if z is not None:
                return not z
        raise SymbolicError(
            f"branch condition is not analyzable: {_canon_expr(test)}",
            test)

    # -- loops -------------------------------------------------------------

    def _closes_steps_anywhere(self, stmt: ast.stmt) -> bool:
        """Does this statement (or anything under it) close a super-step
        (a plain yield in interp mode, an append to the steps list in
        ctor mode)?"""
        for node in ast.walk(stmt):
            if self.mode == "interp" and isinstance(node, ast.Yield):
                return True
            if self.mode == "ctor" and isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "append" \
                    and isinstance(node.func.value, ast.Name):
                bound = self.frame.bindings.get(node.func.value.id)
                if isinstance(bound, VList) and not bound.opaque \
                        and not bound.entries:
                    return True
        return False

    def _seq_of(self, iter_expr: ast.expr) -> tuple[str, bool]:
        """Canonical sequence name of a loop iterable + enumerate flag."""
        expr = iter_expr
        enum = False
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id == "enumerate" and len(expr.args) == 1:
            enum = True
            expr = expr.args[0]
        if isinstance(expr, ast.Name):
            name = expr.id
            bound = self.frame.bindings.get(name)
            if isinstance(bound, VParam):
                return bound.canon, enum
            if name in self.param_canon:
                return self.param_canon[name], enum
            return f"local:{name}", enum
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == self.self_name:
            return f"self.{expr.attr}", enum
        raise SymbolicError(
            f"loop iterates an unrecognizable sequence: "
            f"{_canon_expr(iter_expr)}", iter_expr)

    def _bind_loop_target(self, stmt: ast.For, seq: str, enum: bool,
                          at: str) -> None:
        """Bind the loop target for iteration tag ``at`` ("0" peeled,
        "s" steady)."""
        pos: Value
        if at == "0":
            pos = VPoly(Poly.const(0))
        else:
            pos = VPoly(Poly.sym(f"{_POS_PREFIX}{seq}"))
        elem_syms = [f"$e:{seq}" if at == "s" else f"$e0:{seq}"]

        def elem(k: int | None = None) -> Value:
            base = elem_syms[0]
            name = base if k is None else f"{base}.{k}"
            return VPoly(Poly.sym(name))

        target = stmt.target
        if enum:
            if not (isinstance(target, ast.Tuple)
                    and len(target.elts) == 2):
                raise SymbolicError(
                    "enumerate loop must unpack (index, element)", stmt)
            self._assign(target.elts[0], pos, None)
            target = target.elts[1]
        if isinstance(target, ast.Name):
            self._assign(target, elem(), None)
            return
        if isinstance(target, ast.Tuple):
            for k, t in enumerate(target.elts):
                self._assign(t, elem(k), None)
            return
        raise SymbolicError("unsupported loop target", stmt)

    def _for(self, stmt: ast.For) -> None:
        if self._closes_steps_anywhere(stmt):
            self._step_loop(stmt)
        elif self._contains_access_or_yield(stmt) \
                or self._builds_spans(stmt):
            self._scatter_loop(stmt)
        # else: pure local math; nothing the summary models

    def _builds_spans(self, stmt: ast.stmt) -> bool:
        """Does the loop body grow a span list under construction?"""
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.target, ast.Name):
                bound = self.frame.bindings.get(node.target.id)
                if isinstance(bound, VList) and not bound.opaque \
                        and bound.steps is None:
                    return True
        return False

    def _step_loop(self, stmt: ast.For) -> None:
        if self._loop_done:
            raise SymbolicError(
                "more than one super-step loop in the region", stmt)
        if self.conds:
            raise SymbolicError(
                "super-step loop under an unresolved condition", stmt)
        seq, enum = self._seq_of(stmt.iter)
        self.loop_seq = seq
        self._loop_done = True
        # Peel the first iteration: loop position 0, distinct element
        # symbols, so ``k == 0`` / ``down is None`` idioms resolve.
        self._bind_loop_target(stmt, seq, enum, at="0")
        before = len(self._closed_steps())
        for s in stmt.body:
            self._stmt(s)
        peeled = len(self._closed_steps()) - before
        if peeled != 1:
            raise SymbolicError(
                f"one loop iteration closed {peeled} super-steps "
                f"(need exactly 1: a trailing yield / touches.append)",
                stmt)
        if self.frame.cur:
            raise SymbolicError(
                "touches recorded after the step boundary inside the "
                "loop body", stmt)
        # Steady state at a symbolic position >= 1, run twice: the
        # second pass must reproduce the first or the loop-carried
        # state did not stabilize (the widening check).
        templates: list[tuple[Entry, ...]] = []
        for _ in range(2):
            self._bind_loop_target(stmt, seq, enum, at="s")
            before = len(self._closed_steps())
            for s in stmt.body:
                self._stmt(s)
            closed = self._closed_steps()
            if len(closed) - before != 1:
                raise SymbolicError(
                    "steady-state iteration did not close exactly one "
                    "super-step", stmt)
            templates.append(closed.pop())
        if templates[0] != templates[1]:
            raise SymbolicError(
                "loop-carried state does not stabilize after one "
                "iteration (summary would be unsound)", stmt)
        self.body_template = StepTemplate(templates[0])

    def _closed_steps(self) -> list[tuple[Entry, ...]]:
        if self.mode == "interp":
            return self.frame.closed
        # ctor mode: the steps list being appended to. Find the unique
        # VList in steps mode; before any append, fall back to closed.
        for v in self.frame.bindings.values():
            if isinstance(v, VList) and v.steps is not None:
                return v.steps
        for v in self.frame.attrs.values():
            if isinstance(v, VList) and v.steps is not None:
                return v.steps
        return self.frame.closed

    def _scatter_loop(self, stmt: ast.For) -> None:
        seq, enum = self._seq_of(stmt.iter)
        # Track growth of the current step and of every live span list;
        # the suffix becomes one Scatter entry.
        lists = [v for v in self.frame.bindings.values()
                 if isinstance(v, VList) and v.steps is None
                 and not v.opaque]
        marks = [len(v.entries) for v in lists]
        cur_mark = len(self.frame.cur)
        suffixes: list[list[Entry]] = []
        for _ in range(2):
            self._bind_loop_target(stmt, seq, enum, at="s")
            for s in stmt.body:
                self._stmt(s)
            suffix: list[Entry] = []
            for v, mark in zip(lists, marks):
                suffix.extend(v.entries[mark:])
                del v.entries[mark:]
            suffix.extend(self.frame.cur[cur_mark:])
            del self.frame.cur[cur_mark:]
            suffixes.append(suffix)
        if suffixes[0] != suffixes[1]:
            raise SymbolicError(
                "within-step loop does not stabilize", stmt)
        if not suffixes[0]:
            return
        entry = Scatter(seq, tuple(suffixes[0]), frozenset(self.conds))
        # Scattered touches appended to a span list under construction
        # stay in that list; otherwise they join the current step.
        target_list = self._scatter_target(stmt, lists, marks)
        if target_list is not None:
            target_list.entries.append(entry)
        else:
            self.frame.cur.append(entry)

    def _scatter_target(self, stmt: ast.For, lists: list[VList],
                        marks: list[int]) -> VList | None:
        """The span list the loop body appends to, if any: detected
        syntactically (``name += [...]`` / ``name.append``)."""
        for node in ast.walk(stmt):
            name: str | None = None
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.target, ast.Name):
                name = node.target.id
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "append" \
                    and isinstance(node.func.value, ast.Name):
                name = node.func.value.id
            if name is None:
                continue
            bound = self.frame.bindings.get(name)
            if isinstance(bound, VList) and bound in lists:
                return bound
        return None

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ast.expr) -> Value:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                return VBool(expr.value)
            if isinstance(expr.value, (int, float)):
                return VPoly(Poly.const(expr.value))
            if expr.value is None:
                return VNone()
            return VOpaque("constant")
        if isinstance(expr, ast.Name):
            return self._name(expr)
        if isinstance(expr, ast.Attribute):
            return self._attribute(expr)
        if isinstance(expr, ast.BinOp):
            left = self._expr(expr.left)
            right = self._expr(expr.right)
            return self._binop_values(left, expr.op, right, expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self._expr(expr.operand)
            if isinstance(expr.op, ast.USub):
                p = self._as_poly(operand)
                if p is not None:
                    return VPoly(-p)
                if isinstance(operand, VBlock):
                    return VBlock(operand.length)
            if isinstance(expr.op, ast.Not):
                if isinstance(operand, VBool):
                    return VBool(not operand.b)
                if isinstance(operand, VCond):
                    return VCond(operand.kind, operand.what,
                                 not operand.positive)
            return VOpaque("unary op")
        if isinstance(expr, ast.Compare):
            return self._compare(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Tuple):
            return VTuple(tuple(self._expr(e) for e in expr.elts))
        if isinstance(expr, ast.List):
            return self._list_literal(expr)
        if isinstance(expr, ast.ListComp):
            return self._listcomp(expr)
        if isinstance(expr, (ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return VOpaque("comprehension")
        if isinstance(expr, ast.Subscript):
            return self._subscript(expr)
        if isinstance(expr, ast.JoinedStr):
            return VOpaque("f-string")
        if isinstance(expr, ast.IfExp):
            self._expr(expr.test)
            self._expr(expr.body)
            self._expr(expr.orelse)
            return VOpaque("conditional expression")
        if isinstance(expr, ast.Dict):
            if not expr.keys:
                return VCache(empty=True)
            return VOpaque("dict literal")
        if isinstance(expr, ast.BoolOp):
            for v in expr.values:
                self._expr(v)
            return VOpaque("boolean operator")
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        return VOpaque(type(expr).__name__)

    def _subscript(self, expr: ast.Subscript) -> Value:
        base = self._expr(expr.value)
        if isinstance(expr.slice, ast.Slice):
            lo = self._expr(expr.slice.lower) \
                if expr.slice.lower is not None else None
            hi = self._expr(expr.slice.upper) \
                if expr.slice.upper is not None else None
            if expr.slice.step is not None:
                self._expr(expr.slice.step)
                return VOpaque("strided slice")
            if isinstance(base, VBlock):
                lp = self._as_poly(lo) if lo is not None \
                    else Poly.const(0)
                hp = self._as_poly(hi) if hi is not None else base.length
                if lp is not None and hp is not None:
                    return VBlock(hp - lp)
            return VOpaque("slice")
        index = self._expr(expr.slice)
        if isinstance(base, VTuple):
            p = self._as_poly(index)
            c = p.as_const() if p is not None else None
            if c is not None and c.denominator == 1 \
                    and 0 <= int(c) < len(base.items):
                return base.items[int(c)]
        if isinstance(base, VCache):
            return VOpaque("cache lookup")
        # Fancy indexing (``pool[mine]``) and scalar element reads of
        # local blocks: values only, never a shared-memory touch.
        return VOpaque("subscript")

    def _name(self, expr: ast.Name) -> Value:
        name = expr.id
        if name in self.frame.bindings:
            return self.frame.bindings[name]
        if name in ("READ", "WRITE"):
            return VMode(READ_MODE if name == "READ" else WRITE_MODE)
        if name in self.param_canon:
            return VParam(self.param_canon[name])
        if name in self.module_consts:
            return VPoly(self.module_consts[name])
        if name in self.helpers:
            return VFunc(self.helpers[name])
        return VOpaque(f"unknown name {name!r}")

    def _attribute(self, expr: ast.Attribute) -> Value:
        if isinstance(expr.value, ast.Name):
            base = expr.value.id
            if base == self.self_name:
                if expr.attr in self.frame.attrs:
                    return self.frame.attrs[expr.attr]
                return VParam(f"self.{expr.attr}")
            if self.env_name is not None and base == self.env_name:
                return VEnvMethod(expr.attr)
            bound = self.frame.bindings.get(base)
            if isinstance(bound, VParam):
                return VParam(f"{bound.canon}.{expr.attr}")
            # Class-qualified helpers: ``LU._block_base``.
            key = f"{base}.{expr.attr}"
            if key in self.helpers:
                return VFunc(self.helpers[key])
            if expr.attr in ("READ", "WRITE"):
                return VMode(READ_MODE if expr.attr == "READ"
                             else WRITE_MODE)
        return VOpaque(f"attribute {_canon_expr(expr)}")

    def _as_poly(self, value: Value) -> Poly | None:
        if isinstance(value, VPoly):
            return value.p
        if isinstance(value, VParam):
            return Poly.sym(value.canon)
        return None

    def _binop_values(self, left: Value, op: ast.operator, right: Value,
                      at: ast.AST) -> Value:
        lp, rp = self._as_poly(left), self._as_poly(right)
        if lp is not None and rp is not None:
            if isinstance(op, ast.Add):
                return VPoly(lp + rp)
            if isinstance(op, ast.Sub):
                return VPoly(lp - rp)
            if isinstance(op, ast.Mult):
                return VPoly(lp * rp)
            if isinstance(op, (ast.Div, ast.FloorDiv)):
                c = rp.as_const()
                if c is not None and c != 0:
                    scaled = lp * Poly.const(Fraction(1, 1) / c)
                    if isinstance(op, ast.Div):
                        return VPoly(scaled)
                    sc = scaled.as_const()
                    if sc is not None and sc.denominator == 1:
                        return VPoly(scaled)
                return VOpaque("division")
            if isinstance(op, ast.Mod):
                return VOpaque("modulo")
            return VOpaque("operator")
        # List concatenation builds span lists.
        if isinstance(op, ast.Add) and isinstance(left, VList) \
                and isinstance(right, VList):
            if left.opaque or right.opaque \
                    or left.steps is not None or right.steps is not None:
                return VOpaque("list concatenation")
            return VList(entries=list(left.entries) + list(right.entries))
        # Element-wise numpy arithmetic: a block keeps its length when
        # combined with a scalar or an unknown operand (see module
        # docstring for why this assumption is acceptable).
        if isinstance(left, VBlock):
            if isinstance(right, VBlock) \
                    and left.length != right.length:
                return VOpaque("block arithmetic of differing lengths")
            return VBlock(left.length)
        if isinstance(right, VBlock):
            return VBlock(right.length)
        return VOpaque("operator")

    def _compare(self, expr: ast.Compare) -> Value:
        if len(expr.ops) != 1:
            return VOpaque("chained comparison")
        op = expr.ops[0]
        left = self._expr(expr.left)
        right = self._expr(expr.comparators[0])
        if isinstance(op, (ast.In, ast.NotIn)) \
                and isinstance(right, VCache):
            key = self._as_poly(left)
            if key is None:
                raise SymbolicError(
                    "cache membership key is not affine: "
                    f"{_canon_expr(expr.left)}", expr)
            if right.empty:
                return VBool(isinstance(op, ast.NotIn))
            return VCond("first", key.render(), isinstance(op, ast.NotIn))
        if isinstance(op, (ast.Is, ast.IsNot)):
            if isinstance(right, VNone):
                is_none = isinstance(left, VNone)
                if isinstance(left, (VNone, VBlock, VPoly, VList,
                                     VTuple, VCache)):
                    return VBool(is_none if isinstance(op, ast.Is)
                                 else not is_none)
            return VOpaque("identity comparison")
        lp, rp = self._as_poly(left), self._as_poly(right)
        if lp is not None and rp is not None \
                and isinstance(op, (ast.Eq, ast.NotEq)):
            z = poly_is_zero(lp - rp)
            if z is not None:
                return VBool(z if isinstance(op, ast.Eq) else not z)
        return VOpaque("comparison")

    # -- calls -------------------------------------------------------------

    def _call(self, expr: ast.Call) -> Value:
        func = self._callee(expr)
        if isinstance(func, VEnvMethod):
            return self._env_call(func.name, expr)
        if isinstance(func, VOpaque) and self._is_self_method(
                expr, "span_pages"):
            return self._span_pages(expr)
        if isinstance(func, VFunc):
            return self._inline(func.func, expr)
        if isinstance(func, VCache):
            return VOpaque("cache method")
        # Builtins and library calls.
        name = self._call_name(expr)
        if name == "enumerate" and len(expr.args) == 1:
            seq, _ = self._seq_of(expr)
            return VEnumerate(seq)
        if name == "len" and len(expr.args) == 1:
            arg = self._expr(expr.args[0])
            if isinstance(arg, VBlock):
                return VPoly(arg.length)
            if isinstance(arg, VParam):
                return VPoly(Poly.sym(f"len:{arg.canon}"))
            return VOpaque("len of unknown")
        if name == "int" and len(expr.args) == 1:
            arg = self._expr(expr.args[0])
            p = self._as_poly(arg)
            return VPoly(p) if p is not None else VOpaque("int()")
        if name == "set" and not expr.args:
            return VCache(empty=True)
        if name in ("np.empty", "np.zeros", "np.ones") and expr.args:
            arg = self._expr(expr.args[0])
            p = self._as_poly(arg)
            if p is not None:
                return VBlock(p)
            return VOpaque("nd allocation")
        # Method calls on known values.
        if isinstance(expr.func, ast.Attribute):
            recv = self._expr(expr.func.value)
            attr = expr.func.attr
            if isinstance(recv, VCache) and attr in ("add", "clear"):
                for a in expr.args:
                    self._expr(a)
                if attr == "add":
                    recv.empty = False
                return VNone()
            if isinstance(recv, VList) and attr == "append":
                return self._list_append(recv, expr)
            if isinstance(recv, VBlock):
                if attr == "reshape" and expr.args:
                    dims = [self._as_poly(self._expr(a))
                            for a in expr.args]
                    if all(d is not None for d in dims):
                        total = Poly.const(1)
                        for d in dims:
                            assert d is not None
                            total = total * d
                        return VBlock(total)
                    return VBlock(recv.length)
                if attr in _LENGTH_PRESERVING:
                    return VBlock(recv.length)
                return VOpaque(f"ndarray method {attr}")
        for a in expr.args:
            self._expr(a)
        for kw in expr.keywords:
            self._expr(kw.value)
        return VOpaque(f"call to {self._call_name(expr) or '<expr>'}")

    def _callee(self, expr: ast.Call) -> Value:
        f = expr.func
        if isinstance(f, ast.Name):
            bound = self.frame.bindings.get(f.id)
            if bound is not None:
                return bound
            if f.id in self.helpers:
                return VFunc(self.helpers[f.id])
            return VOpaque(f.id)
        if isinstance(f, ast.Attribute):
            if isinstance(f.value, ast.Name):
                if self.env_name is not None \
                        and f.value.id == self.env_name:
                    return VEnvMethod(f.attr)
                key = f"{f.value.id}.{f.attr}"
                if key in self.helpers:
                    return VFunc(self.helpers[key])
        return VOpaque("callee")

    def _is_self_method(self, expr: ast.Call, name: str) -> bool:
        f = expr.func
        return (isinstance(f, ast.Attribute) and f.attr == name
                and isinstance(f.value, ast.Name)
                and f.value.id == self.self_name)

    def _call_name(self, expr: ast.Call) -> str | None:
        f = expr.func
        if isinstance(f, ast.Name):
            return f.id
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            return f"{f.value.id}.{f.attr}"
        return None

    def _array_name(self, expr: ast.expr) -> str:
        value = self._expr(expr)
        if isinstance(value, VParam):
            return value.canon
        raise SymbolicError(
            f"array handle is not a kernel parameter/attribute: "
            f"{_canon_expr(expr)}", expr)

    def _index_poly(self, expr: ast.expr) -> Poly:
        value = self._expr(expr)
        p = self._as_poly(value)
        if p is None:
            raise SymbolicError(
                f"non-affine subscript: {_canon_expr(expr)}", expr)
        return p

    def _env_call(self, method: str, expr: ast.Call) -> Value:
        if method in _ACCESSES:
            mode, is_block = _ACCESSES[method]
            if len(expr.args) < 2:
                raise SymbolicError("malformed access call", expr)
            array = self._array_name(expr.args[0])
            lo = self._index_poly(expr.args[1])
            if method == "get_block":
                hi = self._index_poly(expr.args[2])
                self._touch(mode, array, lo, hi)
                return VBlock(hi - lo)
            if method == "set_block":
                values = self._expr(expr.args[2])
                if isinstance(values, VBlock):
                    length = values.length
                else:
                    vp = self._as_poly(values)
                    if vp is None:
                        raise SymbolicError(
                            "set_block extent unknown: "
                            f"{_canon_expr(expr.args[2])}", expr)
                    length = Poly.const(1)
                self._touch(mode, array, lo, lo + length)
                return VNone()
            # scalar get/set
            if method == "set" and len(expr.args) >= 3:
                self._expr(expr.args[2])
            self._touch(mode, array, lo, lo + Poly.const(1))
            return VOpaque("scalar read") if mode == READ_MODE else VNone()
        if method == "compute":
            for a in expr.args:
                self._expr(a)
            return VOpaque("compute")
        if method == "arr":
            return VOpaque("env.arr")
        raise SymbolicError(
            f"env.{method}() inside a region body (sync must stay in "
            f"the worker)", expr)

    def _span_pages(self, expr: ast.Call) -> Value:
        if len(expr.args) != 3:
            raise SymbolicError("span_pages needs (arr, lo, hi)", expr)
        return VSpanExpr(self._array_name(expr.args[0]),
                         self._index_poly(expr.args[1]),
                         self._index_poly(expr.args[2]))

    def _inline(self, func: ast.FunctionDef, expr: ast.Call) -> Value:
        """One-level inlining of a single-return helper."""
        body = [s for s in func.body
                if not (isinstance(s, ast.Expr)
                        and isinstance(s.value, ast.Constant))]
        if len(body) != 1 or not isinstance(body[0], ast.Return) \
                or body[0].value is None:
            return VOpaque(f"helper {func.name} is not single-return")
        params = [a.arg for a in func.args.args]
        if params and params[0] == "self":
            params = params[1:]
        args = [self._expr(a) for a in expr.args]
        if len(args) != len(params):
            return VOpaque(f"helper {func.name} arity")
        saved = self.frame.bindings
        self.frame.bindings = dict(saved)
        for p, a in zip(params, args):
            self.frame.bindings[p] = a
        try:
            result = self._expr(body[0].value)
        finally:
            self.frame.bindings = saved
        return result

    # -- list building (ctor touch construction) ---------------------------

    def _list_literal(self, expr: ast.List) -> Value:
        if not expr.elts:
            return VList()
        values = [self._expr(e) for e in expr.elts]
        # ``[step]`` — a literal list of span lists is a steps list.
        if all(isinstance(v, VList) and v.steps is None and not v.opaque
               for v in values):
            steps = [tuple(v.entries) for v in values
                     if isinstance(v, VList)]
            out = VList()
            out.steps = steps
            return out
        return VList(opaque=True)

    def _list_append(self, recv: VList, expr: ast.Call) -> Value:
        if len(expr.args) != 1:
            return VNone()
        value = self._expr(expr.args[0])
        if isinstance(value, VList) and not value.opaque \
                and value.steps is None:
            # Appending a span list: this list is the steps list.
            if recv.steps is None:
                if recv.entries:
                    recv.opaque = True
                    return VNone()
                recv.steps = []
            if self.conds:
                raise SymbolicError(
                    "steps appended under an unresolved condition",
                    expr)
            recv.steps.append(tuple(value.entries))
            return VNone()
        # Appending anything else makes it an ordinary (ignored) list,
        # unless it already collects steps.
        if recv.steps is None and not recv.entries:
            recv.opaque = True
        return VNone()

    def _listcomp(self, expr: ast.ListComp) -> Value:
        """``[(MODE, p) for p in <span>]`` — the descriptor idiom."""
        if len(expr.generators) != 1:
            return VList(opaque=True)
        gen = expr.generators[0]
        if gen.ifs or gen.is_async:
            return VList(opaque=True)
        source = self._expr(gen.iter)
        if not isinstance(source, VSpanExpr):
            return VList(opaque=True)
        if not isinstance(gen.target, ast.Name):
            return VList(opaque=True)
        elt = expr.elt
        if not (isinstance(elt, ast.Tuple) and len(elt.elts) == 2
                and isinstance(elt.elts[1], ast.Name)
                and elt.elts[1].id == gen.target.id):
            raise SymbolicError(
                "unrecognized touch comprehension (expected "
                "[(MODE, p) for p in self.span_pages(...)])", expr)
        mode_v = self._expr(elt.elts[0])
        if not isinstance(mode_v, VMode):
            raise SymbolicError(
                f"touch mode is not READ/WRITE: "
                f"{_canon_expr(elt.elts[0])}", expr)
        span = Span(mode_v.mode, source.array, source.lo, source.hi,
                    frozenset(self.conds))
        return VList(entries=[span])


# ---------------------------------------------------------------------------
# Module-level front end
# ---------------------------------------------------------------------------


def _module_consts(tree: ast.Module) -> dict[str, Poly]:
    """Module-level numeric constants (``_DT = 0.002``)."""
    consts: dict[str, Poly] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, (int, float)) \
                and not isinstance(stmt.value.value, bool):
            consts[stmt.targets[0].id] = Poly.const(stmt.value.value)
    return consts


def _helpers(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Inlinable single-return helpers, addressable as ``name`` (module
    level) and ``Class.name`` (staticmethods)."""
    table: dict[str, ast.FunctionDef] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            table[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    table[f"{stmt.name}.{sub.name}"] = sub
    return table


def _self_name(func: ast.FunctionDef) -> str:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else "self"


def ctor_param_canon(ctor: ast.FunctionDef) -> dict[str, str]:
    """Map constructor parameters to canonical ``self.X`` names via the
    ``self._x = x`` idiom (parameters never stored keep a ``param:``
    prefix so both methods agree when one is used directly)."""
    self_name = _self_name(ctor)
    canon: dict[str, str] = {}
    params = [a.arg for a in
              ctor.args.posonlyargs + ctor.args.args
              + ctor.args.kwonlyargs]
    def note(t: ast.expr, v: ast.expr) -> None:
        if isinstance(t, ast.Attribute) \
                and isinstance(t.value, ast.Name) \
                and t.value.id == self_name \
                and isinstance(v, ast.Name) and v.id in params:
            canon.setdefault(v.id, f"self.{t.attr}")

    for stmt in ctor.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            t, v = stmt.targets[0], stmt.value
            # ``self._pos, self._vel = pos, vel`` counts too.
            if isinstance(t, ast.Tuple) and isinstance(v, ast.Tuple) \
                    and len(t.elts) == len(v.elts):
                for te, ve in zip(t.elts, v.elts):
                    note(te, ve)
            else:
                note(t, v)
    for p in params:
        if p != self_name:
            canon.setdefault(p, f"param:{p}")
    return canon


def summarize_interp(func: ast.FunctionDef, tree: ast.Module,
                     param_canon: dict[str, str]) -> RegionSummary:
    """Summarize a kernel ``interp(self, env)`` body."""
    self_name = _self_name(func)
    env_name = None
    for a in func.args.posonlyargs + func.args.args:
        if a.arg == "env":
            env_name = a.arg
    interp = SymbolicInterp(
        "interp", self_name, env_name, param_canon,
        _module_consts(tree), _helpers(tree))
    return interp.run(func.body)


def summarize_ctor(func: ast.FunctionDef, tree: ast.Module,
                   param_canon: dict[str, str]) -> RegionSummary:
    """Summarize the touch-list construction in a kernel ``__init__``."""
    self_name = _self_name(func)
    env_name = None
    for a in func.args.posonlyargs + func.args.args:
        if a.arg == "env":
            env_name = a.arg
    interp = SymbolicInterp(
        "ctor", self_name, env_name, param_canon,
        _module_consts(tree), _helpers(tree))
    body = [s for s in func.body
            if not _is_super_init(s)]
    return interp.run(body)


def _is_super_init(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "__init__")


# ---------------------------------------------------------------------------
# Concrete evaluation (cross-validation against live kernels)
# ---------------------------------------------------------------------------


class BindError(Exception):
    """A summary symbol could not be resolved on a concrete kernel."""


def _resolve_symbol(name: str, kernel: object,
                    elems: dict[str, object]) -> Fraction:
    if name in elems:
        return Fraction(int(elems[name]))  # type: ignore[call-overload]
    if name.startswith("self."):
        value = getattr(kernel, name[5:])
        return Fraction(int(value))
    if name.startswith("len:"):
        return Fraction(len(_resolve_seq(name[4:], kernel)))
    raise BindError(f"unresolvable symbol {name!r}")


def _resolve_seq(seq: str, kernel: object) -> Sequence[object]:
    if seq.startswith("self."):
        value = getattr(kernel, seq[5:])
        return list(value)
    raise BindError(f"unresolvable sequence {seq!r}")


def _eval_poly(p: Poly, kernel: object,
               elems: dict[str, object]) -> int:
    total = Fraction(0)
    for mono, coeff in p.terms.items():
        term = coeff
        for s in mono:
            term *= _resolve_symbol(s, kernel, elems)
        total += term
    if total.denominator != 1:
        raise BindError(f"non-integer index {p.render()} = {total}")
    return int(total)


def _resolve_array(name: str, kernel: object) -> object:
    if name.startswith("self."):
        return getattr(kernel, name[5:])
    raise BindError(f"unresolvable array {name!r}")


def evaluate_summary(summary: RegionSummary, kernel: object,
                     ) -> list[list[tuple[str, int]]]:
    """Instantiate a symbolic summary on a live kernel: the concrete
    per-step ``[(mode, page), ...]`` lists its descriptor should hold.
    First-use conditions are replayed with real seen-sets."""
    env = getattr(kernel, "env")
    shift = int(getattr(env, "_shift"))
    first_seen: set[object] = set()

    def pages(span: Span, elems: dict[str, object]
              ) -> Iterator[tuple[str, int]]:
        arr = _resolve_array(span.array, kernel)
        base = int(getattr(arr, "base"))
        w0 = base + _eval_poly(span.lo, kernel, elems)
        w1 = base + _eval_poly(span.hi, kernel, elems)
        if w1 <= w0:
            return
        for page in range((w0 >> shift), ((w1 - 1) >> shift) + 1):
            yield (span.mode, page)

    def conds_hold(conds: Conds, elems: dict[str, object],
                   key_polys: dict[str, Poly]) -> bool:
        for kind, what, positive in conds:
            if kind != "first":
                raise BindError(f"unevaluable condition {kind}({what})")
            key = _eval_poly(key_polys[what], kernel, elems)
            hit = (what, key) not in first_seen
            if hit:
                first_seen.add((what, key))
            if hit != positive:
                return False
        return True

    def collect_keys(entries: Sequence[Entry]) -> dict[str, Poly]:
        keys: dict[str, Poly] = {}
        for e in entries:
            for kind, what, _pos in e.conds:
                if kind == "first":
                    keys.setdefault(what, _parse_first_key(what))
            if isinstance(e, Scatter):
                keys.update(collect_keys(e.entries))
        return keys

    def emit(entries: Sequence[Entry], elems: dict[str, object],
             out: list[tuple[str, int]],
             key_polys: dict[str, Poly]) -> None:
        for e in entries:
            if isinstance(e, Span):
                if e.conds and not conds_hold(e.conds, elems, key_polys):
                    continue
                out.extend(pages(e, elems))
            else:
                if e.conds and not conds_hold(e.conds, elems, key_polys):
                    continue
                for k, elem in enumerate(_resolve_seq(e.seq, kernel)):
                    sub = dict(elems)
                    _bind_elem(sub, e.seq, k, elem)
                    emit(e.entries, sub, out, key_polys)

    steps: list[list[tuple[str, int]]] = []
    all_entries: list[Entry] = [e for t in summary.prologue
                                for e in t.entries]
    if summary.body is not None:
        all_entries.extend(summary.body.entries)
    key_polys = collect_keys(all_entries)

    if summary.seq is None:
        for template in summary.prologue:
            out: list[tuple[str, int]] = []
            emit(template.entries, {}, out, key_polys)
            steps.append(out)
        return steps

    seq = _resolve_seq(summary.seq, kernel)
    assert summary.body is not None
    for k, elem in enumerate(seq):
        elems: dict[str, object] = {}
        _bind_elem(elems, summary.seq, k, elem, peeled=(k == 0))
        elems[f"{_POS_PREFIX}{summary.seq}"] = k
        template = summary.prologue[0] if k == 0 else summary.body
        out = []
        emit(template.entries, elems, out, key_polys)
        if k == 0:
            # The peeled step resolved every first-use test to True and
            # populated the caches unconditionally; replay that here so
            # step 1 sees the right seen-set.
            for what, key_poly in key_polys.items():
                first_seen.add((what, _eval_poly(key_poly, kernel,
                                                 elems)))
        steps.append(out)
    return steps


def _bind_elem(elems: dict[str, object], seq: str, k: int, elem: object,
               peeled: bool = False) -> None:
    tags = ["$e"] if not peeled else ["$e", "$e0"]
    for tag in tags:
        base = f"{tag}:{seq}"
        elems[base] = elem
        if isinstance(elem, (tuple, list)):
            for j, part in enumerate(elem):
                elems[f"{base}.{j}"] = part
    elems.setdefault(f"{_POS_PREFIX}{seq}", k)


def _parse_first_key(rendered: str) -> Poly:
    """Inverse of ``Poly.render`` for first-use keys (single symbols and
    simple sums are all real kernels produce)."""
    p = Poly({})
    for part in rendered.replace("- ", "+ -").split(" + "):
        part = part.strip()
        if not part:
            continue
        neg = part.startswith("-")
        if neg:
            part = part[1:]
        if "*" in part:
            first, rest = part.split("*", 1)
            try:
                coeff = Fraction(first)
                mono = tuple(sorted(rest.split("*")))
            except ValueError:
                coeff = Fraction(1)
                mono = tuple(sorted(part.split("*")))
        else:
            try:
                coeff = Fraction(part)
                mono = ()
            except ValueError:
                coeff = Fraction(1)
                mono = (part,)
        if neg:
            coeff = -coeff
        p = p + Poly({mono: coeff})
    return p

"""Intraprocedural control-flow graphs over Python AST.

One :class:`CFG` per analyzed function: a node per statement (control
headers — ``if``/``while``/``for``/``try``/``with`` — get a node for
their header expression; their bodies are built recursively), plus
synthetic entry and exit nodes. ``break``/``continue``/``return``/
``raise`` are wired to their targets; loop back edges are explicit, so
forward dataflow over the graph converges to a fixpoint that covers
every iteration count.

The graph is deliberately simple — no exception edges from arbitrary
calls, ``try`` bodies approximated by letting every handler be entered
from the try entry and from each body statement — which matches the
shape of DSM worker kernels (straight-line phases, loops, a few
conditionals) and keeps the lockset analysis in
:mod:`repro.lint.appcheck` precise where it matters.
"""

from __future__ import annotations

import ast
from typing import Iterator


class CFGNode:
    """One statement (or synthetic entry/exit) in the flow graph.

    A ``with`` statement contributes one node per context-manager item
    (its managers enter left to right, each a separate program point):
    those nodes share the ``with`` as their ``stmt`` and carry the
    :class:`ast.withitem` in ``item``. Every other node has ``item``
    None.
    """

    __slots__ = ("stmt", "item", "succs", "preds", "index")

    def __init__(self, stmt: ast.stmt | None, index: int) -> None:
        self.stmt = stmt
        self.item: ast.withitem | None = None
        self.index = index
        self.succs: list[CFGNode] = []
        self.preds: list[CFGNode] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = type(self.stmt).__name__ if self.stmt is not None else "?"
        line = getattr(self.stmt, "lineno", "-")
        if self.item is not None:
            what += f"[{ast.unparse(self.item.context_expr)}]"
        return f"<CFGNode #{self.index} {what}@{line}>"


class CFG:
    """Flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self._new(None)
        self.exit = self._new(None)

    def _new(self, stmt: ast.stmt | None) -> CFGNode:
        node = CFGNode(stmt, len(self.nodes))
        self.nodes.append(node)
        return node

    @staticmethod
    def _connect(sources: set[CFGNode], target: CFGNode) -> None:
        for src in sources:
            src.succs.append(target)
            target.preds.append(src)

    # --- reachability helpers -----------------------------------------

    def reachable_from(self, starts: set[CFGNode],
                       blocked: set[CFGNode] | None = None
                       ) -> set[CFGNode]:
        """Nodes reachable from ``starts`` without *entering* a blocked
        node (the start nodes themselves are included)."""
        blocked = blocked or set()
        seen: set[CFGNode] = set()
        stack = [n for n in starts if n not in blocked]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for succ in node.succs:
                if succ not in seen and succ not in blocked:
                    stack.append(succ)
        return seen


class _LoopFrame:
    """Break/continue targets while building a loop body."""

    __slots__ = ("header", "breaks")

    def __init__(self, header: CFGNode) -> None:
        self.header = header
        self.breaks: set[CFGNode] = set()


def _always_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: list[_LoopFrame] = []
        self.exits: set[CFGNode] = set()

    def build(self, body: list[ast.stmt]) -> CFG:
        frontier = self._body(body, {self.cfg.entry})
        CFG._connect(frontier | self.exits, self.cfg.exit)
        return self.cfg

    def _body(self, stmts: list[ast.stmt],
              frontier: set[CFGNode]) -> set[CFGNode]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt,
              frontier: set[CFGNode]) -> set[CFGNode]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            node = cfg._new(stmt)
            CFG._connect(frontier, node)
            then = self._body(stmt.body, {node})
            other = self._body(stmt.orelse, {node})
            return then | other
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = cfg._new(stmt)
            CFG._connect(frontier, node)
            frame = _LoopFrame(node)
            self.loops.append(frame)
            body_exit = self._body(stmt.body, {node})
            CFG._connect(body_exit, node)  # back edge
            self.loops.pop()
            if isinstance(stmt, ast.While) and _always_true(stmt.test):
                fallthrough: set[CFGNode] = set()
            else:
                fallthrough = {node}
            after = self._body(stmt.orelse, fallthrough) \
                if stmt.orelse else fallthrough
            return after | frame.breaks
        if isinstance(stmt, ast.Try):
            node = cfg._new(stmt)
            CFG._connect(frontier, node)
            first_body_index = len(cfg.nodes)
            body_exit = self._body(stmt.body, {node})
            body_nodes = set(cfg.nodes[first_body_index:]) | {node}
            out = self._body(stmt.orelse, body_exit) \
                if stmt.orelse else body_exit
            for handler in stmt.handlers:
                hnode = cfg._new(handler)  # type: ignore[arg-type]
                CFG._connect(body_nodes, hnode)
                out |= self._body(handler.body, {hnode})
            if stmt.finalbody:
                out = self._body(stmt.finalbody, out)
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # One node per context-manager item, chained in entry
            # order: `with a(), b():` evaluates a() before b(), and an
            # analysis walking node expressions sees each manager call
            # exactly once, at its own program point.
            for item in stmt.items:
                node = cfg._new(stmt)
                node.item = item
                CFG._connect(frontier, node)
                frontier = {node}
            return self._body(stmt.body, frontier)
        if isinstance(stmt, ast.Match):
            node = cfg._new(stmt)
            CFG._connect(frontier, node)
            out: set[CFGNode] = {node}
            for case in stmt.cases:
                out |= self._body(case.body, {node})
            return out
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = cfg._new(stmt)
            CFG._connect(frontier, node)
            self.exits.add(node)
            return set()
        if isinstance(stmt, ast.Break):
            node = cfg._new(stmt)
            CFG._connect(frontier, node)
            if self.loops:
                self.loops[-1].breaks.add(node)
            return set()
        if isinstance(stmt, ast.Continue):
            node = cfg._new(stmt)
            CFG._connect(frontier, node)
            if self.loops:
                CFG._connect({node}, self.loops[-1].header)
            return set()
        # Simple statement (including nested def/class, whose bodies are
        # opaque to this intraprocedural graph).
        node = cfg._new(stmt)
        CFG._connect(frontier, node)
        return {node}


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function body."""
    return _Builder().build(func.body)


# --- per-node expression accessors -----------------------------------------
#
# Analyses that attribute work (calls, accesses, yields) to CFG nodes
# must look only at what a node *itself* evaluates: a compound header
# evaluates its test/iterator, not its body (body statements have their
# own nodes), and an except-handler node evaluates its exception type,
# not the handler body. Walking ``node.stmt`` whole would double-count
# everything under a header once per nesting level.


def walk_no_defs(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without entering nested function or class bodies
    (they are separate analysis units with their own scopes)."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            stack.append(child)


def node_exprs(node: CFGNode) -> list[ast.AST]:
    """The expressions evaluated *at* this node — exactly once across
    the whole graph (headers own their tests, bodies their statements,
    each ``with`` item its context expression)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.item is not None:
        return [node.item.context_expr]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):  # pragma: no cover
        return []  # defensive: with-nodes always carry an item
    return [stmt]


def node_calls(node: CFGNode) -> list[ast.Call]:
    """Every call evaluated at this node, in source order."""
    calls: list[ast.Call] = []
    for root in node_exprs(node):
        for sub in walk_no_defs(root):
            if isinstance(sub, ast.Call):
                calls.append(sub)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls

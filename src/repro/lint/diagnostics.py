"""Diagnostics: findings, suppression accounting, and output formats.

A :class:`Diagnostic` is one finding pinned to a ``path:line:col`` span;
a :class:`LintResult` is the full outcome of one lint invocation. Both
output formats are deterministic by construction — diagnostics are
sorted by location and contain no timestamps, absolute paths, or
id()-derived values — so two runs over the same tree are byte-identical
(asserted in ``tests/test_lint.py``).

The JSON document (``--format json``) follows a documented, versioned
schema (:data:`SCHEMA`); see README "Static analysis" for the contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import cast

from .rules import RULES

#: Version tag of the JSON output document. Bump on any change to the
#: key layout below; consumers must check it. /2 added the "engine"
#: key to each diagnostic entry alongside the K-series touch rules.
SCHEMA = "cashmere-lint/2"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, ordered by location for stable output."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def severity(self) -> str:
        return RULES[self.rule].severity

    @property
    def slug(self) -> str:
        return RULES[self.rule].slug

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.slug}] {self.severity}: {self.message}")

    @property
    def engine(self) -> str:
        return RULES[self.rule].engine

    def to_json(self) -> dict[str, object]:
        return {"rule": self.rule, "slug": self.slug,
                "engine": self.engine, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message}

    @classmethod
    def from_json(cls, doc: dict[str, object]) -> "Diagnostic":
        """Rebuild from a :meth:`to_json` document (round-trip tests)."""
        return cls(path=str(doc["path"]), line=cast(int, doc["line"]),
                   col=cast(int, doc["col"]), rule=str(doc["rule"]),
                   message=str(doc["message"]))


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    #: Active findings, sorted by (path, line, col, rule).
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Findings silenced by ``# cashmere: ignore[...]`` comments.
    suppressed: list[Diagnostic] = field(default_factory=list)
    #: Files that were analyzed (display paths, sorted).
    files: list[str] = field(default_factory=list)

    def finish(self) -> "LintResult":
        """Sort everything into canonical order; call once when done."""
        self.diagnostics.sort()
        self.suppressed.sort()
        self.files.sort()
        return self

    # --- exit-code contract: 0 clean / 1 findings (2 = usage error,
    # --- raised before a result exists) --------------------------------

    @property
    def exit_code(self) -> int:
        return 1 if self.diagnostics else 0

    def counts(self) -> dict[str, int]:
        errors = sum(1 for d in self.diagnostics
                     if d.severity == "error")
        return {"files": len(self.files), "errors": errors,
                "warnings": len(self.diagnostics) - errors,
                "suppressed": len(self.suppressed)}

    # --- output formats ------------------------------------------------

    def format_text(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        c = self.counts()
        if self.diagnostics:
            lines.append(f"{len(self.diagnostics)} finding(s): "
                         f"{c['errors']} error(s), "
                         f"{c['warnings']} warning(s) "
                         f"({c['suppressed']} suppressed) in "
                         f"{c['files']} file(s)")
        else:
            lines.append(f"clean: 0 findings ({c['suppressed']} "
                         f"suppressed) in {c['files']} file(s)")
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "schema": SCHEMA,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suppressed": [d.to_json() for d in self.suppressed],
            "summary": self.counts(),
        }

    def format_json(self) -> str:
        return json.dumps(self.to_json(), indent=2)

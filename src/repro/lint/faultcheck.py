"""Engine 3: the fault-path lint.

Under fault injection a directory entry can be *transient* (Pending,
DESIGN.md §12): a multi-step transaction has published some but not all
of its writes. Acting on a half-updated entry is exactly the class of
protocol bug the FLASH-style NAK/Pending machinery exists to prevent,
so access to the transient state is funneled through two narrow paths:

* ``DirEntry.is_pending(at)`` / ``DirEntry.set_pending(until)`` — the
  accessors, safe to *guard* with (skipping an optimization while an
  entry is pending is always conservative);
* ``BaseProtocol._await_not_pending(proc, entry)`` — the one sanctioned
  reader of the raw ``pending_until`` field: it waits the window out
  (bounded — ``pending_until`` is a deadline, not a flag), so the
  caller proceeds against a settled entry.

**F101** flags everything else:

* a ``Load`` of a ``pending_until`` attribute in any function other
  than the sanctioned readers above — a handler peeking at transient
  state with no timeout semantics;
* ``is_pending(...)`` in a ``while`` test — an unbounded poll; the
  bounded wait is ``_await_not_pending``.

Purely syntactic, like the determinism engine: no type inference. Any
attribute named ``pending_until`` is assumed to be directory state —
the name is reserved for it throughout this codebase.
"""

from __future__ import annotations

import ast
from typing import Callable

#: report(rule, line, col, message)
Reporter = Callable[[str, int, int, str], None]

#: Functions allowed to read ``pending_until`` directly: the accessors
#: on ``DirEntry`` and the protocol's bounded wait.
SANCTIONED_PENDING_READERS = frozenset({
    "_await_not_pending", "is_pending", "set_pending",
})


def _is_is_pending_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (isinstance(func, ast.Attribute) and func.attr == "is_pending") \
        or (isinstance(func, ast.Name) and func.id == "is_pending")


class _FaultPathVisitor(ast.NodeVisitor):
    def __init__(self, report: Reporter) -> None:
        self.report = report
        self._func_stack: list[str] = []

    # --- function context ---------------------------------------------------

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    # --- pattern 1: raw pending_until reads ---------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (node.attr == "pending_until"
                and isinstance(node.ctx, ast.Load)
                and not (self._func_stack and self._func_stack[-1]
                         in SANCTIONED_PENDING_READERS)):
            self.report(
                "F101", node.lineno, node.col_offset,
                "raw read of transient directory state (pending_until) "
                "outside the sanctioned timeout path: call "
                "_await_not_pending() (or guard with is_pending()) so the "
                "wait stays bounded")
        self.generic_visit(node)

    # --- pattern 2: unbounded is_pending polling ----------------------------

    def visit_While(self, node: ast.While) -> None:
        for sub in ast.walk(node.test):
            if _is_is_pending_call(sub):
                self.report(
                    "F101", sub.lineno, sub.col_offset,
                    "polling is_pending() in a loop: the bounded wait is "
                    "_await_not_pending(), which charges the remaining "
                    "window and returns")
                break
        self.generic_visit(node)


def check_faultpaths(tree: ast.AST, report: Reporter) -> None:
    """Run the fault-path checks over one parsed module."""
    _FaultPathVisitor(report).visit(tree)

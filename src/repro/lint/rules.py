"""The rule registry: every diagnostic the linter can emit.

Rule IDs are stable, documented identifiers (they appear in README's
rule table, in ``--select`` arguments, and in per-line
``# cashmere: ignore[RULE]`` suppressions), so treat them like a wire
format: never renumber, only append.

Three engines share this registry:

* ``app`` — the application-kernel analyzer (:mod:`repro.lint.appcheck`):
  CFG + lockset analysis of worker generators written against the
  :class:`~repro.runtime.env.WorkerEnv` API.
* ``det`` — the determinism lint (:mod:`repro.lint.determinism`):
  source-level hazards that would break the simulator's run-to-run
  determinism and therefore the soundness of the content-addressed
  result cache (see DESIGN.md §11).
* ``fault`` — the fault-path lint (:mod:`repro.lint.faultcheck`):
  protocol handlers acting on transient (Pending) directory state
  outside the bounded timeout path (see DESIGN.md §12).
* ``touch`` — the symbolic touch verifier (:mod:`repro.lint.touch`):
  abstract interpretation of RegionKernel bodies over an affine index
  domain, diffing hand-written descriptors against the access summary
  of the interp body (see DESIGN.md §16).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, in decreasing order of gravity. Any finding of any
#: severity makes the lint exit nonzero; severity exists so humans can
#: triage output, not so findings can be ignored.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Rule:
    """One checkable property, with a stable ID."""

    id: str
    slug: str
    engine: str       # "app" | "det" | "core"
    severity: str     # "error" | "warning"
    summary: str


_ALL_RULES = (
    # --- core ----------------------------------------------------------
    Rule("E001", "parse-error", "core", "error",
         "file could not be parsed as Python"),
    # --- engine 1: application-kernel analyzer -------------------------
    Rule("A001", "lock-leak", "app", "error",
         "a lock acquired in the kernel may still be held on some path "
         "when the worker exits"),
    Rule("A002", "release-unheld", "app", "error",
         "release() is not dominated by an acquire() of the same lock "
         "on every path"),
    Rule("A003", "divergent-barrier", "app", "error",
         "barrier() under rank-dependent control flow: workers would "
         "arrive at different barrier episodes"),
    Rule("A004", "lockset-discipline", "app", "warning",
         "shared array is written under a lock elsewhere but accessed "
         "here with an empty lockset after the first barrier"),
    Rule("A005", "unpartitioned-write", "app", "warning",
         "unlocked write after the first barrier whose index does not "
         "depend on the rank and is not rank-guarded: every worker "
         "writes the same words concurrently"),
    Rule("A006", "init-unguarded-write", "app", "error",
         "shared write reachable before the first barrier outside a "
         "rank guard: the initialization phase is read-only for "
         "non-elected ranks"),
    Rule("A007", "inline-self-copy", "app", "warning",
         "get_block() result passed directly to set_block() on the same "
         "array: an overlapping self-copy that is only safe while "
         "get_block copies"),
    # --- engine 2: determinism lint ------------------------------------
    Rule("D101", "wall-clock", "det", "error",
         "wall-clock read outside the sanctioned bench/sweep/config "
         "modules: simulated results must not depend on real time"),
    Rule("D102", "unseeded-random", "det", "error",
         "global or unseeded random number generator: output would vary "
         "across runs and poison the result cache"),
    Rule("D103", "set-iteration", "det", "warning",
         "iteration over a set: element order is not canonical (string "
         "hashing is salted per process)"),
    Rule("D104", "id-keyed", "det", "warning",
         "id() used as a dict/collection key or sort key: identity "
         "values differ between runs"),
    Rule("D105", "env-read", "det", "error",
         "environment variable read outside config/bench/sweep: hidden "
         "input that the result-cache key cannot see"),
    Rule("D106", "frozen-mutation", "det", "error",
         "mutation of a frozen spec/config object: cache keys assume "
         "RunSpec/MachineConfig values never change after construction"),
    # --- engine 3: fault-path lint --------------------------------------
    Rule("F101", "transient-read", "fault", "error",
         "transient (Pending) directory state read outside the bounded "
         "timeout path: raw pending_until access or an is_pending() "
         "poll loop instead of _await_not_pending()"),
    # --- engine 4: symbolic touch verifier -------------------------------
    Rule("K001", "touch-mismatch", "touch", "error",
         "RegionKernel descriptor diverges from the interp body: wrong "
         "span, wrong order, wrong mode, or an entry the code never "
         "touches — the executor would replay the wrong faults"),
    Rule("K002", "touch-underapprox", "touch", "error",
         "RegionKernel descriptor omits a span the interp body provably "
         "touches: the executor would skip a protocol fault the "
         "interpreter takes (the dangerous direction)"),
    Rule("K003", "lowerable-unlowered", "touch", "warning",
         "worker region is provably lowerable (sync-free, step-shaped, "
         "affine accesses) but the module defines no RegionKernel: a "
         "candidate for the kernel-lowering backlog"),
    Rule("K004", "non-affine-touch", "touch", "warning",
         "RegionKernel body leaves the affine index domain (non-affine "
         "subscript, unstable loop state, unsupported construct): the "
         "descriptor cannot be verified symbolically"),
)

#: Ordered registry: rule ID -> :class:`Rule`.
RULES: dict[str, Rule] = {r.id: r for r in _ALL_RULES}

#: Module basenames in which wall-clock and environment reads are
#: sanctioned (the audited entry points; see DESIGN.md §11).
SANCTIONED_MODULES = frozenset({"bench.py", "sweep.py", "config.py"})

#: Sanctioned *packages*, matched against the file's displayed path
#: (forward-slash segments): every module under these directories may
#: read wall clock and environment. ``repro/metrics`` qualifies because
#: the run store stamps ingestion timestamps and resolves its database
#: path from the environment — at ingest time only, never during
#: simulation (the collector itself reads neither).
SANCTIONED_PACKAGES = frozenset({"repro/metrics"})

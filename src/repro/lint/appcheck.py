"""Engine 1: static analysis of application worker kernels.

Analyzes every function that takes a parameter named ``env`` — the
convention of the :class:`~repro.runtime.env.WorkerEnv` API used by
``src/repro/apps``, ``examples/``, and user kernels — intraprocedurally:

* **Lock balance** (A001/A002): a path-sensitive must/may lockset
  dataflow over the CFG flags locks that may still be held at worker
  exit and ``release()`` calls not dominated by an ``acquire()``.
* **Barrier divergence** (A003): barriers are global — a ``barrier()``
  reachable under control flow that depends on the processor rank makes
  workers arrive at different episodes and deadlock (or worse,
  mis-pair). Rank-dependence is found by a small taint analysis seeded
  at ``env.rank`` / ``env.local_rank`` / ``env.node_rank``.
* **Static lockset** (A004/A005): an Eraser-style discipline check —
  an array written under a lock somewhere must not be accessed
  lock-free after the first barrier — plus a partitioning heuristic
  that flags unlocked writes whose index is rank-independent and which
  are not guarded by a rank test (every worker would write the same
  words concurrently).
* **Phase misuse** (A006/A007): writes reachable before the first
  barrier outside a rank guard (the initialization phase is read-only
  for non-elected ranks), and ``get_block`` results passed directly to
  ``set_block`` on the same array (an overlapping self-copy that is
  only safe while ``get_block`` returns a private copy).

The analysis understands the local idioms of real kernels: bound-method
aliases (``get_block = env.get_block``), array handles bound from
``env.arr("name")`` (including tuple assignments), and taint flowing
through arithmetic, calls, and loop targets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from .cfg import CFG, CFGNode, build_cfg, node_calls, walk_no_defs

#: WorkerEnv data-access methods: name -> ("read"|"write", index arg slots).
_ACCESS_METHODS: dict[str, tuple[str, tuple[int, ...]]] = {
    "get": ("read", (1,)),
    "get_block": ("read", (1, 2)),
    "set": ("write", (1,)),
    "set_block": ("write", (1,)),
}

#: All WorkerEnv methods a kernel may alias to a local name.
_ENV_METHODS = frozenset(_ACCESS_METHODS) | frozenset({
    "barrier", "acquire", "release", "arr", "compute", "end_init",
    "flag_set", "flag_wait", "flag_peek",
})

#: Rank-identity attributes on env: the divergence taint seeds.
_RANK_ATTRS = frozenset({"rank", "local_rank", "node_rank"})

#: report(rule, line, col, message)
Reporter = Callable[[str, int, int, str], None]


#: Per-node expression walkers live with the CFG builder now
#: (:func:`repro.lint.cfg.node_exprs` / :func:`~repro.lint.cfg.node_calls`),
#: shared with the lowering pipeline's stage-1 proof.
_walk_no_defs = walk_no_defs

#: Comprehension forms whose generator targets open a nested scope.
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                   ast.DictComp)


@dataclass
class _Access:
    kind: str              # "read" | "write"
    array: str
    call: ast.Call
    index_tainted: bool


@dataclass
class _Ops:
    """What one CFG node does, in WorkerEnv terms."""

    syncs: list[tuple[str, str, ast.Call]] = field(default_factory=list)
    barriers: list[ast.Call] = field(default_factory=list)
    accesses: list[_Access] = field(default_factory=list)


_State = tuple[frozenset[str], frozenset[str]]  # (must, may)


def _meet(a: _State | None, b: _State) -> _State:
    if a is None:
        return b
    return (a[0] & b[0], a[1] | b[1])


class KernelAnalyzer:
    """One worker kernel (a function with an ``env`` parameter)."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 report: Reporter) -> None:
        self.func = func
        self.report = report
        self.env_names: set[str] = {"env"}
        self.method_alias: dict[str, str] = {}
        self.array_names: dict[str, str] = {}
        self.tainted: set[str] = set()
        self.guarded: dict[ast.stmt, bool] = {}    # stmt -> rank-guarded
        self.divergent: dict[ast.stmt, bool] = {}  # stmt -> rank-divergent

    # --- name resolution ----------------------------------------------

    def _env_method(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in self.env_names \
                and func.attr in _ENV_METHODS:
            return func.attr
        if isinstance(func, ast.Name):
            return self.method_alias.get(func.id)
        return None

    def _array_key(self, expr: ast.expr) -> str:
        if isinstance(expr, ast.Name):
            return self.array_names.get(expr.id, expr.id)
        if isinstance(expr, ast.Call) and self._env_method(expr) == "arr" \
                and expr.args and isinstance(expr.args[0], ast.Constant) \
                and isinstance(expr.args[0].value, str):
            return expr.args[0].value
        return ast.unparse(expr)

    @staticmethod
    def _lock_key(call: ast.Call) -> str:
        return ast.unparse(call.args[0]) if call.args else "<?>"

    def _expr_tainted(self, expr: ast.AST,
                      shadow: frozenset[str] = frozenset(),
                      extra: frozenset[str] = frozenset()) -> bool:
        """Whether evaluating ``expr`` can depend on the rank.

        Comprehensions open a scope: their generator targets *shadow*
        outer names (``[i for i in range(3)]`` is rank-independent even
        when an outer ``i`` is tainted), and a tainted iterator taints
        its targets inside the comprehension (the *extra* set) without
        leaking that name outward.
        """
        if isinstance(expr, ast.Name):
            if expr.id in extra:
                return True
            if expr.id in shadow:
                return False
            return expr.id in self.tainted
        if isinstance(expr, ast.Attribute) \
                and expr.attr in _RANK_ATTRS \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id in self.env_names \
                and expr.value.id not in shadow:
            return True
        if isinstance(expr, _COMPREHENSIONS):
            inner_shadow, inner_extra = set(shadow), set(extra)
            tainted = False
            for gen in expr.generators:
                # A tainted iterator taints the whole result (its
                # length depends on the rank) and its loop targets.
                it_tainted = self._expr_tainted(
                    gen.iter, frozenset(inner_shadow),
                    frozenset(inner_extra))
                tainted |= it_tainted
                targets = {n.id for n in ast.walk(gen.target)
                           if isinstance(n, ast.Name)}
                inner_shadow |= targets
                if it_tainted:
                    inner_extra |= targets
                else:
                    inner_extra -= targets
            ish, iex = frozenset(inner_shadow), frozenset(inner_extra)
            elts = ([expr.key, expr.value]
                    if isinstance(expr, ast.DictComp) else [expr.elt])
            conds = [c for gen in expr.generators for c in gen.ifs]
            return tainted or any(self._expr_tainted(e, ish, iex)
                                  for e in elts + conds)
        if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return False  # separate analysis units
        return any(self._expr_tainted(child, shadow, extra)
                   for child in ast.iter_child_nodes(expr))

    # --- pre-passes ----------------------------------------------------

    def _iter_stmts(self) -> Iterator[ast.stmt]:
        """All statements of this function, excluding nested defs."""
        stack: list[ast.stmt] = list(reversed(self.func.body))
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for attr in ("body", "orelse", "finalbody"):
                stack.extend(reversed(getattr(stmt, attr, [])))
            for handler in getattr(stmt, "handlers", []):
                stack.extend(reversed(handler.body))
            for case in getattr(stmt, "cases", []):
                stack.extend(reversed(case.body))

    def _bind(self, target: ast.expr, value: ast.expr | None,
              value_tainted: bool) -> None:
        """Process one (target <- value) binding for aliases/arrays/taint."""
        if isinstance(target, (ast.Tuple, ast.List)) \
                and isinstance(value, (ast.Tuple, ast.List)) \
                and len(target.elts) == len(value.elts):
            for t, v in zip(target.elts, value.elts):
                self._bind(t, v, self._expr_tainted(v))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for t in target.elts:
                self._bind(t, None, value_tainted)
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if value_tainted:
            self.tainted.add(name)
        if value is None:
            return
        # env aliases and bound-method aliases.
        if isinstance(value, ast.Name) and value.id in self.env_names:
            self.env_names.add(name)
        elif isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id in self.env_names \
                and value.attr in _ENV_METHODS:
            self.method_alias[name] = value.attr
        # array handles from env.arr("name").
        elif isinstance(value, ast.Call) \
                and self._env_method(value) == "arr" and value.args \
                and isinstance(value.args[0], ast.Constant) \
                and isinstance(value.args[0].value, str):
            self.array_names[name] = value.args[0].value

    def _prepass(self) -> None:
        """Fixpoint over assignments: aliases, array handles, taint."""
        for _ in range(8):
            before = (len(self.tainted), len(self.env_names),
                      len(self.method_alias), len(self.array_names))
            for stmt in self._iter_stmts():
                if isinstance(stmt, ast.Assign):
                    tainted = self._expr_tainted(stmt.value)
                    for target in stmt.targets:
                        self._bind(target, stmt.value, tainted)
                elif isinstance(stmt, ast.AnnAssign) \
                        and stmt.value is not None:
                    self._bind(stmt.target, stmt.value,
                               self._expr_tainted(stmt.value))
                elif isinstance(stmt, ast.AugAssign):
                    if self._expr_tainted(stmt.value):
                        self._bind(stmt.target, None, True)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if self._expr_tainted(stmt.iter):
                        self._bind(stmt.target, None, True)
            after = (len(self.tainted), len(self.env_names),
                     len(self.method_alias), len(self.array_names))
            if after == before:
                break

    def _annotate_guards(self, stmts: list[ast.stmt], guarded: bool,
                         divergent: bool) -> None:
        """Per-statement flags: under a rank guard / rank-divergent flow."""
        for stmt in stmts:
            self.guarded[stmt] = guarded
            self.divergent[stmt] = divergent
            if isinstance(stmt, ast.If):
                t = self._expr_tainted(stmt.test)
                self._annotate_guards(stmt.body, guarded or t,
                                      divergent or t)
                self._annotate_guards(stmt.orelse, guarded or t,
                                      divergent or t)
            elif isinstance(stmt, ast.While):
                t = self._expr_tainted(stmt.test)
                self._annotate_guards(stmt.body, guarded or t,
                                      divergent or t)
                self._annotate_guards(stmt.orelse, guarded, divergent)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                t = self._expr_tainted(stmt.iter)
                self._annotate_guards(stmt.body, guarded, divergent or t)
                self._annotate_guards(stmt.orelse, guarded, divergent)
            elif isinstance(stmt, ast.Try):
                self._annotate_guards(stmt.body, guarded, divergent)
                self._annotate_guards(stmt.orelse, guarded, divergent)
                self._annotate_guards(stmt.finalbody, guarded, divergent)
                for handler in stmt.handlers:
                    self._annotate_guards(handler.body, guarded,
                                          divergent)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._annotate_guards(stmt.body, guarded, divergent)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    self._annotate_guards(case.body, guarded, divergent)

    # --- per-node classification ---------------------------------------

    def _classify(self, node: CFGNode) -> _Ops:
        ops = _Ops()
        if node.stmt is None:
            return ops
        for call in node_calls(node):
            method = self._env_method(call)
            if method is None:
                continue
            if method == "barrier":
                ops.barriers.append(call)
            elif method in ("acquire", "release"):
                ops.syncs.append((method, self._lock_key(call), call))
            elif method in _ACCESS_METHODS:
                kind, index_slots = _ACCESS_METHODS[method]
                if not call.args:
                    continue
                array = self._array_key(call.args[0])
                idx_tainted = any(
                    self._expr_tainted(call.args[i])
                    for i in index_slots if i < len(call.args))
                ops.accesses.append(_Access(kind, array, call,
                                            idx_tainted))
                if method == "set_block" and len(call.args) >= 3:
                    self._check_alias(array, call)
        return ops

    def _check_alias(self, array: str, set_call: ast.Call) -> None:
        """A007: get_block of the same array inline inside set_block."""
        for node in _walk_no_defs(set_call.args[2]):
            if isinstance(node, ast.Call) \
                    and self._env_method(node) == "get_block" \
                    and node.args \
                    and self._array_key(node.args[0]) == array:
                self.report("A007", set_call.lineno, set_call.col_offset,
                            f"get_block result of {array!r} passed "
                            f"directly to set_block on the same array: "
                            f"safe only while get_block copies; bind "
                            f"and .copy() explicitly")
                return

    # --- the analysis ---------------------------------------------------

    def analyze(self) -> None:
        self._prepass()
        self._annotate_guards(self.func.body, False, False)
        cfg = build_cfg(self.func)
        ops = {node: self._classify(node) for node in cfg.nodes}

        in_state = self._lockset_fixpoint(cfg, ops)
        self._check_lock_balance(cfg, ops, in_state)
        self._check_barriers(cfg, ops)
        self._check_locksets(cfg, ops, in_state)

    def _lockset_fixpoint(self, cfg: CFG, ops: dict[CFGNode, _Ops]
                          ) -> dict[CFGNode, _State]:
        in_state: dict[CFGNode, _State | None] = {
            node: None for node in cfg.nodes}
        in_state[cfg.entry] = (frozenset(), frozenset())
        worklist = [cfg.entry]
        while worklist:
            node = worklist.pop()
            state = in_state[node]
            if state is None:
                continue
            must, may = state
            for op, key, _call in ops[node].syncs:
                if op == "acquire":
                    must, may = must | {key}, may | {key}
                else:
                    must, may = must - {key}, may - {key}
            out = (must, may)
            for succ in node.succs:
                merged = _meet(in_state[succ], out)
                if merged != in_state[succ]:
                    in_state[succ] = merged
                    worklist.append(succ)
        empty: _State = (frozenset(), frozenset())
        return {node: state if state is not None else empty
                for node, state in in_state.items()}

    def _check_lock_balance(self, cfg: CFG, ops: dict[CFGNode, _Ops],
                            in_state: dict[CFGNode, _State]) -> None:
        # A002: a release must be dominated by an acquire on every path.
        for node in cfg.nodes:
            must, _may = in_state[node]
            for op, key, call in ops[node].syncs:
                if op == "release":
                    if key not in must:
                        self.report(
                            "A002", call.lineno, call.col_offset,
                            f"release of lock {key} is not matched by "
                            f"an acquire on every path to this point")
                    must = must - {key}
                else:
                    must = must | {key}
        # A001: nothing may be held when the worker exits.
        _must, may = in_state[cfg.exit]
        if not may:
            return
        for key in sorted(may):
            sites = sorted(
                (call.lineno, call.col_offset)
                for node in cfg.nodes
                for op, k, call in ops[node].syncs
                if op == "acquire" and k == key)
            line, col = sites[0] if sites else (self.func.lineno, 0)
            self.report("A001", line, col,
                        f"lock {key} acquired here may still be held "
                        f"when the worker exits (unbalanced "
                        f"acquire/release on some path)")

    def _check_barriers(self, cfg: CFG, ops: dict[CFGNode, _Ops]) -> None:
        # A003: every worker must execute the same barrier sequence.
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            for call in ops[node].barriers:
                if self.divergent.get(node.stmt, False):
                    self.report(
                        "A003", call.lineno, call.col_offset,
                        "barrier under rank-dependent control flow: "
                        "workers would arrive at different episodes")

    def _check_locksets(self, cfg: CFG, ops: dict[CFGNode, _Ops],
                        in_state: dict[CFGNode, _State]) -> None:
        barrier_nodes = {n for n in cfg.nodes if ops[n].barriers}
        if not barrier_nodes:
            # Helper functions (no barrier) are analyzed for lock
            # balance only; phase rules need a barrier structure.
            return
        after_barrier: set[CFGNode] = set()
        for bnode in barrier_nodes:
            after_barrier |= cfg.reachable_from(set(bnode.succs))
        before_barrier = cfg.reachable_from({cfg.entry},
                                            blocked=barrier_nodes)

        # Evidence pass: which arrays are written under which locks?
        locked_writes: dict[str, set[str]] = {}
        for node in cfg.nodes:
            must, _may = in_state[node]
            for acc in ops[node].accesses:
                if acc.kind == "write" and must:
                    locked_writes.setdefault(acc.array, set()).update(
                        must)

        for node in cfg.nodes:
            must, _may = in_state[node]
            stmt_guarded = node.stmt is not None and \
                self.guarded.get(node.stmt, False)
            for acc in ops[node].accesses:
                call = acc.call
                if node in before_barrier and acc.kind == "write" \
                        and not stmt_guarded:
                    self.report(
                        "A006", call.lineno, call.col_offset,
                        f"write to {acc.array!r} reachable before the "
                        f"first barrier without a rank guard: the "
                        f"initialization phase is read-only for "
                        f"non-elected ranks")
                if node not in after_barrier or must:
                    continue
                locks = locked_writes.get(acc.array)
                if locks:
                    self.report(
                        "A004", call.lineno, call.col_offset,
                        f"array {acc.array!r} is written under lock "
                        f"{'/'.join(sorted(locks))} elsewhere but "
                        f"accessed lock-free here after the first "
                        f"barrier")
                elif acc.kind == "write" and not acc.index_tainted \
                        and not stmt_guarded:
                    self.report(
                        "A005", call.lineno, call.col_offset,
                        f"unlocked write to {acc.array!r} after the "
                        f"first barrier with a rank-independent index "
                        f"and no rank guard: every worker writes the "
                        f"same words concurrently")


def _has_env_param(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = func.args
    every = (args.posonlyargs + args.args + args.kwonlyargs)
    return any(a.arg == "env" for a in every)


def check_app(tree: ast.AST, report: Reporter) -> None:
    """Run the kernel analyzer over every env-taking function."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and _has_env_param(node):
            KernelAnalyzer(node, report).analyze()

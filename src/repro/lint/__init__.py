"""Static DSM-usage analyzer and simulator determinism lint.

Two AST-based engines behind one rule/diagnostic framework:

* the **app analyzer** (A-rules) checks worker kernels written against
  the :class:`~repro.runtime.env.WorkerEnv` API — lock balance over a
  CFG, barrier divergence under rank-dependent control flow, an
  Eraser-style static lockset discipline, and phase-misuse patterns;
* the **determinism lint** (D-rules) scans simulator source for
  hazards that would break run-to-run determinism and the soundness of
  the content-addressed result cache (DESIGN.md §11).

CLI: ``cashmere-repro lint [PATHS] [--select RULES] [--format json]``.
Programmatic: :func:`repro.lint.run`. Exit-code contract: 0 clean,
1 findings, 2 usage error.
"""

from .api import UsageError, lint_source, run
from .diagnostics import SCHEMA, Diagnostic, LintResult
from .rules import RULES, Rule

__all__ = [
    "run", "lint_source", "UsageError",
    "Diagnostic", "LintResult", "SCHEMA",
    "RULES", "Rule",
]

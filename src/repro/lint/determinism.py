"""Engine 2: the determinism lint.

The simulator's contract is that a run is a pure function of
``(RunSpec, source digest)`` — that is what makes the PR 4
content-addressed result cache sound and the differential-testing
harness reproducible. This engine scans source for constructs that
silently break that contract:

* **D101** wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now``, ...) outside the sanctioned modules
  (:data:`~repro.lint.rules.SANCTIONED_MODULES` — the audited
  bench/sweep/config entry points that deal in real time by design —
  and :data:`~repro.lint.rules.SANCTIONED_PACKAGES` — the metrics
  store, which timestamps ingests but never simulation).
* **D102** the process-global RNG (``random.random``,
  ``numpy.random.rand``, ...) or an unseeded generator construction
  (``random.Random()`` / ``numpy.random.default_rng()`` with no
  arguments).
* **D103** iteration over a set literal or ``set()``/``frozenset()``
  call: element order is not canonical across processes (string hashing
  is salted), so anything derived from the order varies run to run.
* **D104** ``id()`` used as a dict/collection key or as a sort key:
  CPython identity values differ between runs.
* **D105** environment-variable reads outside the sanctioned modules:
  a hidden input the result-cache key cannot see.
* **D106** mutation of a frozen spec object (``object.__setattr__``
  outside ``__init__``-family methods, or attribute assignment to a
  local known to hold a ``RunSpec``/``MachineConfig``/``CostModel``).

Resolution is import-aware: ``import numpy as np; np.random.rand()``
and ``from time import perf_counter; perf_counter()`` are both caught.
"""

from __future__ import annotations

import ast
from typing import Callable

from .rules import SANCTIONED_MODULES, SANCTIONED_PACKAGES

#: report(rule, line, col, message)
Reporter = Callable[[str, int, int, str], None]


def is_sanctioned(display: str) -> bool:
    """May this file read wall clock / environment?

    ``display`` is the path as the linter shows it (platform
    separators allowed). A file qualifies by basename
    (:data:`SANCTIONED_MODULES`) or by living under a sanctioned
    package directory (:data:`SANCTIONED_PACKAGES`).
    """
    norm = display.replace("\\", "/")
    base = norm.rsplit("/", 1)[-1]
    if base in SANCTIONED_MODULES:
        return True
    return any(f"/{pkg}/" in f"/{norm}" for pkg in SANCTIONED_PACKAGES)

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "time.strftime", "time.localtime",
    "time.gmtime",
})

#: Functions on the process-global ``random`` module RNG.
_GLOBAL_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.sample",
    "random.shuffle", "random.uniform", "random.gauss",
    "random.normalvariate", "random.lognormvariate",
    "random.expovariate", "random.betavariate", "random.gammavariate",
    "random.triangular", "random.vonmisesvariate",
    "random.paretovariate", "random.weibullvariate",
    "random.getrandbits", "random.randbytes", "random.seed",
})

#: Functions on numpy's legacy process-global RNG.
_NUMPY_GLOBAL_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "normal",
    "uniform", "standard_normal", "poisson", "exponential", "bytes",
})

#: Generator constructors that are deterministic only when seeded.
_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.default_rng",
    "numpy.random.RandomState", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
})

#: Frozen spec classes whose instances must never be mutated (cache
#: keys hash their field values at construction time).
_FROZEN_CLASSES = frozenset({"RunSpec", "MachineConfig", "CostModel"})

#: Methods in which ``object.__setattr__`` on frozen instances is the
#: sanctioned construction idiom.
_CTOR_METHODS = frozenset({
    "__init__", "__post_init__", "__setstate__", "__new__"})


class DeterminismChecker(ast.NodeVisitor):
    """One file's worth of determinism checks."""

    def __init__(self, display: str, report: Reporter) -> None:
        self.sanctioned = is_sanctioned(display)
        self.report = report
        #: import alias -> canonical module path ("np" -> "numpy")
        self.modules: dict[str, str] = {}
        #: from-imported name -> canonical dotted path
        self.names: dict[str, str] = {}
        self.func_stack: list[str] = []
        #: local names known to hold frozen spec instances
        self.frozen_vars: set[str] = set()

    # --- import-aware name resolution ----------------------------------

    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or
                                 alias.name.split(".")[0]] = \
                        alias.name if alias.asname else \
                        alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def _canonical(self, expr: ast.expr) -> str | None:
        """Resolve an attribute chain to a canonical dotted path."""
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.names:
            root = self.names[base]
        elif base in self.modules:
            root = self.modules[base]
        else:
            return None
        return ".".join([root] + list(reversed(parts)))

    # --- entry point ----------------------------------------------------

    def check(self, tree: ast.AST) -> None:
        self._collect_imports(tree)
        self.visit(tree)

    # --- scope tracking -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    # --- calls: D101/D102/D104/D105/D106 --------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        canon = self._canonical(node.func)
        if canon is not None:
            if canon in _WALL_CLOCK and not self.sanctioned:
                self.report(
                    "D101", node.lineno, node.col_offset,
                    f"wall-clock read {canon}() outside the sanctioned "
                    f"bench/sweep/config modules: simulated results "
                    f"must not depend on real time")
            if canon in _GLOBAL_RANDOM or (
                    canon.startswith("numpy.random.")
                    and canon.rsplit(".", 1)[1] in _NUMPY_GLOBAL_RANDOM):
                self.report(
                    "D102", node.lineno, node.col_offset,
                    f"{canon}() uses the process-global RNG: draw from "
                    f"an explicitly seeded generator instead")
            if canon in _RNG_CONSTRUCTORS and not node.args \
                    and not node.keywords:
                self.report(
                    "D102", node.lineno, node.col_offset,
                    f"{canon}() constructed without a seed: output "
                    f"would vary across runs and poison the result "
                    f"cache")
            if canon == "os.getenv" and not self.sanctioned:
                self.report(
                    "D105", node.lineno, node.col_offset,
                    "os.getenv() outside config/bench/sweep: hidden "
                    "input that the result-cache key cannot see")
        # D104: key=id in sorted()/min()/max()/.sort().
        for kw in node.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                    and kw.value.id == "id":
                self.report(
                    "D104", kw.value.lineno, kw.value.col_offset,
                    "sort key is id(): ordering by identity differs "
                    "between runs")
        # D106: object.__setattr__ outside construction methods.
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr == "__setattr__" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "object" \
                and (not self.func_stack
                     or self.func_stack[-1] not in _CTOR_METHODS):
            self.report(
                "D106", node.lineno, node.col_offset,
                "object.__setattr__ on a frozen instance outside a "
                "constructor: cache keys assume spec values never "
                "change after construction")
        self.generic_visit(node)

    # --- D105: any expression resolving to os.environ -------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.sanctioned \
                and self._canonical(node) == "os.environ":
            self.report(
                "D105", node.lineno, node.col_offset,
                "os.environ read outside config/bench/sweep: hidden "
                "input that the result-cache key cannot see")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if not self.sanctioned \
                and self.names.get(node.id) == "os.environ":
            self.report(
                "D105", node.lineno, node.col_offset,
                "os.environ read outside config/bench/sweep: hidden "
                "input that the result-cache key cannot see")

    # --- D103: iteration over sets --------------------------------------

    def _check_iterable(self, expr: ast.expr) -> None:
        is_set = isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp)
        if isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Name) \
                and expr.func.id in ("set", "frozenset"):
            is_set = True
        if is_set:
            self.report(
                "D103", expr.lineno, expr.col_offset,
                "iteration over a set: element order is not canonical; "
                "wrap in sorted(...) to fix the order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # --- D104: id() as a key --------------------------------------------

    @staticmethod
    def _is_id_call(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Call) \
            and isinstance(expr.func, ast.Name) \
            and expr.func.id == "id"

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_id_call(node.slice):
            self.report(
                "D104", node.slice.lineno, node.slice.col_offset,
                "id() used as a collection key: identity values differ "
                "between runs")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._is_id_call(key):
                self.report(
                    "D104", key.lineno, key.col_offset,
                    "id() used as a dict key: identity values differ "
                    "between runs")
        self.generic_visit(node)

    # --- D106: assignment tracking for frozen instances -----------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        ctor: str | None = None
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                ctor = func.id
            elif isinstance(func, ast.Attribute):
                ctor = func.attr
        for target in node.targets:
            if isinstance(target, ast.Name):
                if ctor in _FROZEN_CLASSES:
                    self.frozen_vars.add(target.id)
                else:
                    self.frozen_vars.discard(target.id)
            elif isinstance(target, ast.Attribute):
                self._check_frozen_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._check_frozen_target(node.target)
        self.generic_visit(node)

    def _check_frozen_target(self, target: ast.Attribute) -> None:
        if isinstance(target.value, ast.Name) \
                and target.value.id in self.frozen_vars:
            self.report(
                "D106", target.lineno, target.col_offset,
                f"attribute assignment to frozen "
                f"{target.value.id!r}: use dataclasses.replace() to "
                f"derive a new spec")


def check_determinism(tree: ast.AST, display: str,
                      report: Reporter) -> None:
    """Run the determinism checks over one parsed file.

    ``display`` is the file's displayed path (not just the basename),
    so package-level sanctioning can match directory membership.
    """
    DeterminismChecker(display, report).check(tree)

"""Engine 4: symbolic verification of RegionKernel touch lists (K-rules).

The lowering pipeline (DESIGN §14) replays protocol faults from a
kernel's hand-written descriptor instead of running its ``interp`` body;
a silent divergence between the two would replay the wrong faults and
corrupt simulation fidelity. This engine abstract-interprets both the
``interp`` body and the ``__init__`` touch-list construction over the
affine domain of :mod:`repro.lint.symbolic` and diffs the resulting
per-step span summaries:

* **K001** — descriptor/code touch mismatch: wrong span, wrong order,
  wrong mode, or a spurious descriptor entry the code never performs.
* **K002** — descriptor under-approximation: the code provably touches
  a span the descriptor omits. This is the dangerous direction — the
  executor would skip a fault the interpreter takes.
* **K003** — a worker loop is provably lowerable (sync-free, step
  shaped, affine accesses) but the module defines no RegionKernel:
  the ROADMAP's "extend kernel lowering" backlog, machine-found.
* **K004** — the analysis left the affine domain (non-affine subscript,
  unstable loop-carried state, unsupported construct): an honest
  "cannot verify", naming the offending expression.

Soundness direction (DESIGN §16): a kernel with no K002 finding has a
descriptor that over-approximates its code's touches per step — every
fault the interpreter would take, the executor replays. K001 tightens
that to exact per-step equality of the normalized summaries.
"""

from __future__ import annotations

import ast
from collections import Counter
from typing import Iterable, Sequence

from .appcheck import _ACCESS_METHODS, _ENV_METHODS, Reporter
from .symbolic import (Entry, RegionSummary, Scatter, Span, StepTemplate,
                       SymbolicError, ctor_param_canon, summarize_ctor,
                       summarize_interp)

#: Env methods that synchronize or change phase: any call disqualifies
#: a K003 candidate region (same set stage 1 rejects).
_SYNC_METHODS = frozenset(_ENV_METHODS) - frozenset(_ACCESS_METHODS) \
    - frozenset({"compute", "arr"}) | frozenset({"run_region"})

#: Cap on per-kernel mismatch diagnostics: the first divergence is the
#: actionable one; a long tail of knock-on diffs is noise.
_MAX_ENTRY_DIAGS = 3


# ---------------------------------------------------------------------------
# Kernel-class discovery and summarization
# ---------------------------------------------------------------------------


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def is_region_kernel_class(cls: ast.ClassDef) -> bool:
    return "RegionKernel" in _base_names(cls)


def kernel_classes(tree: ast.Module) -> list[ast.ClassDef]:
    return [node for node in tree.body
            if isinstance(node, ast.ClassDef)
            and is_region_kernel_class(node)]


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def summarize_kernel_class(cls: ast.ClassDef, tree: ast.Module,
                           ) -> tuple[RegionSummary, RegionSummary]:
    """Both summaries of one kernel class: ``(code, descriptor)``.

    ``code`` is inferred from ``interp`` (the ground truth); ``desc``
    from the ``__init__`` touch-list construction. Raises
    :class:`SymbolicError` when either body leaves the affine domain.
    """
    ctor = _method(cls, "__init__")
    interp = _method(cls, "interp")
    if ctor is None or interp is None:
        raise SymbolicError(
            f"kernel class {cls.name} lacks "
            f"{'__init__' if ctor is None else 'interp'}", cls)
    canon = ctor_param_canon(ctor)
    code = summarize_interp(interp, tree, canon)
    desc = summarize_ctor(ctor, tree, canon)
    return code, desc


def infer_code_summary(cls: ast.ClassDef,
                       tree: ast.Module) -> RegionSummary:
    """The interp-side summary alone (what ``lower-gen`` scaffolds
    descriptors from)."""
    ctor = _method(cls, "__init__")
    interp = _method(cls, "interp")
    if interp is None:
        raise SymbolicError(f"kernel class {cls.name} lacks interp", cls)
    canon = ctor_param_canon(ctor) if ctor is not None else {}
    return summarize_interp(interp, tree, canon)


# ---------------------------------------------------------------------------
# Summary normalization and comparison
# ---------------------------------------------------------------------------


def normalize_entries(entries: Iterable[Entry]) -> tuple[Entry, ...]:
    """Coalesce adjacent same-mode, same-array, same-condition spans
    whose word ranges are provably contiguous. The descriptor idiom
    builds one merged span where the interp body takes several abutting
    block reads (SOR's three-row window); page-wise the two are
    identical, so both sides normalize to the merged form."""
    out: list[Entry] = []
    for entry in entries:
        if isinstance(entry, Scatter):
            entry = Scatter(entry.seq, normalize_entries(entry.entries),
                            entry.conds)
        prev = out[-1] if out else None
        if (isinstance(entry, Span) and isinstance(prev, Span)
                and prev.mode == entry.mode
                and prev.array == entry.array
                and prev.conds == entry.conds
                and prev.hi == entry.lo):
            out[-1] = Span(prev.mode, prev.array, prev.lo, entry.hi,
                           prev.conds)
        else:
            out.append(entry)
    return tuple(out)


def _normalize(template: StepTemplate) -> tuple[Entry, ...]:
    return normalize_entries(template.entries)


def _span_key(entry: Entry) -> tuple[object, ...]:
    """Identity of an entry ignoring its mode (wrong-mode detection)."""
    if isinstance(entry, Span):
        return ("span", entry.array, entry.lo.key(), entry.hi.key(),
                entry.conds)
    return ("scatter", entry.seq,
            tuple(_span_key(e) + (_mode_of(e),) for e in entry.entries),
            entry.conds)


def _mode_of(entry: Entry) -> str:
    return entry.mode if isinstance(entry, Span) else "*"


def _render(entry: Entry) -> str:
    return entry.render()


class Mismatch:
    """One comparison finding, pre-classified as K001 or K002."""

    __slots__ = ("rule", "detail")

    def __init__(self, rule: str, detail: str) -> None:
        self.rule = rule
        self.detail = detail


def _compare_templates(label: str, code: StepTemplate,
                       desc: StepTemplate) -> list[Mismatch]:
    cn = _normalize(code)
    dn = _normalize(desc)
    if cn == dn:
        return []
    out: list[Mismatch] = []
    if Counter(cn) == Counter(dn):
        want = "; ".join(_render(e) for e in cn)
        out.append(Mismatch(
            "K001", f"{label}: descriptor touch order differs from the "
                    f"interp body (code order: {want})"))
        return out
    code_extra = Counter(cn) - Counter(dn)
    desc_extra = Counter(dn) - Counter(cn)
    desc_by_span = {_span_key(e): e for e in dn}
    for entry in list(code_extra.elements())[:_MAX_ENTRY_DIAGS]:
        twin = desc_by_span.get(_span_key(entry))
        if twin is not None and twin not in cn:
            out.append(Mismatch(
                "K001", f"{label}: wrong mode — code performs "
                        f"{_render(entry)}, descriptor lists "
                        f"{_render(twin)}"))
        else:
            out.append(Mismatch(
                "K002", f"{label}: code touches {_render(entry)} but "
                        f"the descriptor omits it (the executor would "
                        f"skip this fault)"))
    matched_modes = {_span_key(e) for e in cn}
    for entry in list(desc_extra.elements())[:_MAX_ENTRY_DIAGS]:
        if _span_key(entry) in matched_modes:
            continue  # already reported as wrong mode from the code side
        out.append(Mismatch(
            "K001", f"{label}: descriptor lists {_render(entry)} but "
                    f"the interp body never touches it"))
    if not out:
        out.append(Mismatch(
            "K001", f"{label}: descriptor diverges from the interp "
                    f"body's touch summary"))
    return out


def compare_summaries(code: RegionSummary,
                      desc: RegionSummary) -> list[Mismatch]:
    """Diff the interp-derived summary against the descriptor-derived
    one; empty means the descriptor provably mirrors the code."""
    if code.seq != desc.seq or len(code.prologue) != len(desc.prologue) \
            or (code.body is None) != (desc.body is None):
        c = code.render().replace("\n", " | ")
        d = desc.render().replace("\n", " | ")
        return [Mismatch(
            "K001", f"step structure differs: code is [{c}], "
                    f"descriptor is [{d}]")]
    out: list[Mismatch] = []
    for k, (ct, dt) in enumerate(zip(code.prologue, desc.prologue)):
        out.extend(_compare_templates(f"step {k}", ct, dt))
    if code.body is not None and desc.body is not None:
        out.extend(_compare_templates(
            f"steady step over {code.seq}", code.body, desc.body))
    return out


# ---------------------------------------------------------------------------
# K001/K002/K004: verify every kernel class in the file
# ---------------------------------------------------------------------------


def _touches_line(ctor: ast.FunctionDef | None,
                  cls: ast.ClassDef) -> tuple[int, int]:
    if ctor is not None:
        for node in ast.walk(ctor):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Attribute) \
                            and t.attr == "touches":
                        return node.lineno, node.col_offset
    return cls.lineno, cls.col_offset


def _check_kernels(tree: ast.Module, report: Reporter) -> None:
    for cls in kernel_classes(tree):
        ctor = _method(cls, "__init__")
        line, col = _touches_line(ctor, cls)
        try:
            code, desc = summarize_kernel_class(cls, tree)
        except SymbolicError as exc:
            at = (exc.line, exc.col) if exc.line else (cls.lineno,
                                                      cls.col_offset)
            report("K004", at[0], at[1],
                   f"cannot verify {cls.name}: {exc.why}")
            continue
        for mm in compare_summaries(code, desc):
            report(mm.rule, line, col, f"{cls.name}: {mm.detail}")


# ---------------------------------------------------------------------------
# K003: provably lowerable worker loops with no RegionKernel in sight
# ---------------------------------------------------------------------------

_AFFINE_NODES = (ast.Name, ast.Constant, ast.BinOp, ast.UnaryOp,
                 ast.Add, ast.Sub, ast.Mult, ast.USub, ast.UAdd,
                 ast.Attribute, ast.Load)


def _affine_looking(expr: ast.expr) -> bool:
    """A light syntactic check: names, constants, and +/-/* over them.
    (The full affine proof needs the kernel's parameter binding, which
    does not exist yet for an unlowered worker.)"""
    for node in ast.walk(expr):
        if not isinstance(node, _AFFINE_NODES):
            return False
    return True


class _WorkerScan:
    """Per-function state for K003 candidate detection."""

    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func
        self.env_names = {"env"}
        self.aliases: dict[str, str] = {}
        #: Names holding values read from shared memory (data-dependent
        #: indexing through these disqualifies a candidate).
        self.loaded: set[str] = set()
        self._prepass()

    def _prepass(self) -> None:
        assigns: list[tuple[str, ast.expr]] = []
        for node in ast.walk(self.func):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                v = node.value
                if isinstance(v, ast.Attribute) \
                        and isinstance(v.value, ast.Name) \
                        and v.value.id in self.env_names \
                        and v.attr in _ENV_METHODS:
                    self.aliases[target.id] = v.attr
                    continue
                assigns.append((target.id, v))
                if self._reads_shared(v):
                    self.loaded.add(target.id)
        # Transitive closure: a name computed from a loaded name is
        # itself data-dependent (count = int(meta[0]) after meta was
        # get_block'd must disqualify indexing through count).
        for _ in range(len(assigns)):
            grew = False
            for name, v in assigns:
                if name in self.loaded:
                    continue
                if any(isinstance(n, ast.Name) and n.id in self.loaded
                       for n in ast.walk(v)):
                    self.loaded.add(name)
                    grew = True
            if not grew:
                break

    def _reads_shared(self, expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) \
                    and self.env_method(node) in ("get", "get_block"):
                return True
        return False

    def env_method(self, call: ast.Call) -> str | None:
        f = call.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
                and f.value.id in self.env_names:
            return f.attr if f.attr in _ENV_METHODS else None
        if isinstance(f, ast.Name):
            return self.aliases.get(f.id)
        return None

    # -- candidate tests ---------------------------------------------------

    def _passes_env(self, call: ast.Call) -> bool:
        """A non-env call that receives env could hide synchronization."""
        if self.env_method(call) is not None:
            return False
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id in self.env_names:
                return True
        return False

    def region_blockers(self, stmts: Sequence[ast.stmt]) -> str | None:
        """Why this statement run cannot be a sync-free region (None if
        it can)."""
        accesses = 0
        writes = 0
        affine = True
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.YieldFrom):
                    return "delegates with yield from"
                if not isinstance(node, ast.Call):
                    continue
                method = self.env_method(node)
                if method in _SYNC_METHODS:
                    return f"calls env.{method}()"
                if self._passes_env(node):
                    return "passes env to a helper"
                if method in _ACCESS_METHODS:
                    accesses += 1
                    kind, slots = _ACCESS_METHODS[method]
                    if kind == "write":
                        writes += 1
                    for slot in slots:
                        if slot >= len(node.args):
                            continue
                        idx = node.args[slot]
                        if not _affine_looking(idx):
                            affine = False
                        else:
                            for sub in ast.walk(idx):
                                if isinstance(sub, ast.Name) \
                                        and sub.id in self.loaded:
                                    affine = False
        if accesses == 0:
            return "no shared accesses"
        if writes == 0:
            return "no shared writes"
        if not affine:
            return "non-affine or data-dependent indexing"
        return None

    def candidates(self) -> list[tuple[int, int, str]]:
        """(line, col, description) of provably lowerable regions."""
        found: list[tuple[int, int, str]] = []
        for node in ast.walk(self.func):
            if not isinstance(node, ast.For):
                continue
            # Shape (a): a step loop — each iteration does affine
            # accesses and ends at a plain yield (a super-step).
            body = node.body
            if self._is_step_loop(body) \
                    and self.region_blockers(body) is None:
                found.append((node.lineno, node.col_offset,
                              "per-iteration super-step loop"))
                continue
            # Shape (b): a straight-line phase inside an iteration
            # loop — a conditional block of affine accesses ending in
            # one plain yield (a single-step region).
            for stmt in body:
                if isinstance(stmt, ast.If) \
                        and self._is_single_step(stmt.body) \
                        and not stmt.orelse \
                        and self.region_blockers(stmt.body) is None:
                    found.append((stmt.lineno, stmt.col_offset,
                                  "single-step phase block"))
        return found

    def _is_step_loop(self, body: Sequence[ast.stmt]) -> bool:
        """Every iteration ends at exactly one plain top-level yield."""
        if not body:
            return False
        yields = [s for s in body
                  if isinstance(s, ast.Expr)
                  and isinstance(s.value, ast.Yield)]
        return len(yields) == 1 and body[-1] is yields[0]

    def _is_single_step(self, body: Sequence[ast.stmt]) -> bool:
        if len(body) < 2:
            return False
        if not self._is_step_loop(body):
            return False
        # Require >= 2 accesses with >= 1 write for the single-step
        # shape, so trivial one-access blocks don't nag.
        accesses = 0
        writes = 0
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    method = self.env_method(node)
                    if method in _ACCESS_METHODS:
                        accesses += 1
                        if _ACCESS_METHODS[method][0] == "write":
                            writes += 1
        return accesses >= 2 and writes >= 1


def _check_unlowered(tree: ast.Module, report: Reporter) -> None:
    # Per-file gate: a module that already defines RegionKernels has
    # made its lowering decisions; K003 only points at untouched files.
    if kernel_classes(tree):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        args = node.args
        every = args.posonlyargs + args.args + args.kwonlyargs
        if not any(a.arg == "env" for a in every):
            continue
        if not any(isinstance(n, (ast.Yield, ast.YieldFrom))
                   for n in ast.walk(node)):
            continue
        scan = _WorkerScan(node)
        for line, col, what in scan.candidates():
            report("K003", line, col,
                   f"{what} in {node.name}() is provably lowerable "
                   f"(sync-free, step-shaped, affine accesses) but "
                   f"this module defines no RegionKernel — see the "
                   f"ROADMAP item on extending kernel lowering")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_touches(tree: ast.AST, report: Reporter) -> None:
    """Run the K-rules over one parsed module."""
    if not isinstance(tree, ast.Module):
        return
    _check_kernels(tree, report)
    _check_unlowered(tree, report)

"""The lint driver: file discovery, engine dispatch, suppression.

Programmatic entry point::

    from repro.lint import run
    result = run(["src/repro", "examples"])
    assert result.exit_code == 0, result.format_text()

All four engines run over every file: the app analyzer only triggers
on functions that take an ``env`` parameter, the determinism checks
skip the sanctioned modules, the fault-path checks key on names
reserved for directory state, and the touch verifier keys on
RegionKernel subclasses, so it is safe (and simpler) not to route
files to engines by path.

Output is deterministic: files are discovered in sorted order, display
paths are relative with forward slashes, and :meth:`LintResult.finish`
sorts every diagnostic by location.
"""

from __future__ import annotations

import ast
import os

from .appcheck import check_app
from .determinism import check_determinism
from .faultcheck import check_faultpaths
from .touch import check_touches
from .diagnostics import Diagnostic, LintResult
from .rules import RULES
from .suppress import is_suppressed, suppressions


class UsageError(Exception):
    """Bad invocation (unknown path, unknown rule): CLI exit code 2."""


def resolve_select(select: str | list[str] | None
                   ) -> frozenset[str] | None:
    """Expand a ``--select`` spec into a set of rule IDs.

    Accepts exact IDs (``A001``), engine prefixes (``A``, ``D``), and
    comma-separated combinations; ``None`` means every rule.
    """
    if select is None:
        return None
    parts: list[str] = []
    specs = select.split(",") if isinstance(select, str) else list(select)
    for spec in specs:
        for piece in spec.split(","):
            piece = piece.strip().upper()
            if piece:
                parts.append(piece)
    if not parts:
        return None
    chosen: set[str] = set()
    for part in parts:
        matched = [rid for rid in RULES
                   if rid == part or rid.startswith(part)]
        if not matched:
            known = ", ".join(RULES)
            raise UsageError(
                f"unknown rule or prefix {part!r} in --select "
                f"(known: {known})")
        chosen.update(matched)
    return frozenset(chosen)


def discover(paths: list[str]) -> list[tuple[str, str]]:
    """Expand files/directories into ``(abspath, display)`` pairs.

    Directories are walked recursively for ``*.py`` (skipping hidden
    directories and ``__pycache__``); the result is deduplicated by
    real path and sorted by display path so output order never depends
    on argument order or filesystem enumeration order.
    """
    found: dict[str, str] = {}

    def display(path: str) -> str:
        rel = os.path.relpath(path)
        shown = path if rel.startswith("..") else rel
        return shown.replace(os.sep, "/")

    def add(path: str) -> None:
        real = os.path.realpath(path)
        found.setdefault(real, display(path))

    for path in paths:
        if os.path.isfile(path):
            add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__")
                for name in sorted(files):
                    if name.endswith(".py"):
                        add(os.path.join(root, name))
        else:
            raise UsageError(f"no such file or directory: {path}")
    return sorted(found.items(), key=lambda item: item[1])


def lint_source(source: str, display: str,
                select: frozenset[str] | None = None,
                ) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Lint one file's source text: ``(active, suppressed)``."""
    active: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    table = suppressions(source)

    def report(rule: str, line: int, col: int, message: str) -> None:
        if select is not None and rule not in select:
            return
        diag = Diagnostic(display, line, col, rule, message)
        if is_suppressed(table, line, rule):
            suppressed.append(diag)
        else:
            active.append(diag)

    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        report("E001", exc.lineno or 1, (exc.offset or 1) - 1,
               f"file could not be parsed: {exc.msg}")
        return active, suppressed
    check_app(tree, report)
    check_determinism(tree, display, report)
    check_faultpaths(tree, report)
    check_touches(tree, report)
    return active, suppressed


def run(paths: list[str], select: str | list[str] | None = None,
        ) -> LintResult:
    """Lint ``paths`` and return a finished :class:`LintResult`."""
    chosen = resolve_select(select)
    result = LintResult()
    for abspath, shown in discover(paths):
        with open(abspath, encoding="utf-8") as fh:
            source = fh.read()
        active, suppressed = lint_source(source, shown, chosen)
        result.files.append(shown)
        result.diagnostics.extend(active)
        result.suppressed.extend(suppressed)
    return result.finish()

"""Memory Channel regions: versioned words with timed visibility.

The Memory Channel is write-only from remote nodes: a write issued at time
``t`` becomes visible in every mapped receive region at ``t + latency``
(plus any bandwidth queueing). The hub imposes a single global order on
writes to the same region, even from different nodes (Section 2.1).

:class:`VersionedWord` models one 32-bit MC word: it records the history
of (visibility time, value) pairs so a reader whose local clock is ``T``
sees exactly the writes that were globally performed by ``T``. This is
what makes the simulated MC locks and barriers honest: a processor cannot
observe a write before the network would have delivered it.

:class:`MCRegion` is a fixed-size array of versioned words with an
attached :class:`~repro.sim.engine.Condition` fired whenever a write
becomes visible, so parked waiters (barrier arrivals, flag spins) wake at
the correct simulated time.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..errors import MemoryChannelError
from ..sim.engine import Condition, Simulator

#: History entries retained per word. The protocols only need the current
#: and in-flight values, but lock back-off patterns can briefly stack a few.
_HISTORY_LIMIT = 8

#: Minimum spacing the hub imposes between successive writes to one region.
_ORDERING_EPSILON = 1e-6


class VersionedWord:
    """One Memory Channel word with visibility-timed history."""

    __slots__ = ("_history",)

    def __init__(self, initial: Any = 0) -> None:
        # (visible_at, value), ascending by visible_at; index 0 always valid.
        self._history: list[tuple[float, Any]] = [(0.0, initial)]

    def write(self, visible_at: float, value: Any) -> None:
        """Record a write that becomes globally visible at ``visible_at``."""
        history = self._history
        if history and visible_at < history[-1][0]:
            # The hub orders writes; a later-arriving write cannot become
            # visible before one already accepted.
            visible_at = history[-1][0] + _ORDERING_EPSILON
        history.append((visible_at, value))
        if len(history) > _HISTORY_LIMIT:
            del history[:len(history) - _HISTORY_LIMIT]

    def read(self, at: float) -> Any:
        """The value a reader with local clock ``at`` observes.

        A small epsilon absorbs floating-point drift between a waiter's
        accumulated clock and the exact visibility instant that woke it.
        """
        history = self._history
        at += 1e-6
        entry = history[-1]
        if entry[0] <= at:  # common case: all writes already visible
            return entry[1]
        # Walk back to the newest entry visible by ``at``; index 0 is the
        # floor — a reader predating all retained history gets the oldest
        # retained value (the best, and for protocol usage only correct,
        # answer).
        i = len(history) - 2
        while i > 0 and history[i][0] > at:
            i -= 1
        return history[i][1]

    def last_visible_at(self) -> float:
        return self._history[-1][0]

    def latest(self) -> Any:
        """The most recent value regardless of visibility (debug/tests)."""
        return self._history[-1][1]


class MCRegion:
    """A mapped Memory Channel region of ``size`` words.

    ``loopback`` mirrors the hardware flag: with loop-back enabled a node's
    own writes return through the hub to its local receive region, letting
    the writer detect that a write has been globally performed
    (synchronization objects, Figure 1). Without loop-back, writers must
    "double" writes to their local copy in software (the global directory).
    The region model itself is shared — visibility timing is identical for
    every node — so ``loopback`` only affects how *writers* may read.
    """

    def __init__(self, sim: Simulator, name: str, size: int,
                 initial: Any = 0, loopback: bool = False) -> None:
        if size < 1:
            raise MemoryChannelError(f"region {name!r} must have >=1 word")
        self.sim = sim
        self.name = name
        self.loopback = loopback
        self.words = [VersionedWord(initial) for _ in range(size)]
        self.visible = Condition(sim, name=f"mc:{name}")
        self.write_count = 0

    def __len__(self) -> int:
        return len(self.words)

    def post(self, index: int, value: Any, visible_at: float) -> None:
        """Record a write and arrange for waiters to wake at visibility."""
        self.words[index].write(visible_at, value)
        self.write_count += 1
        # Fire unconditionally: a waiter may park between the post and the
        # visibility time, and a fire with no waiters is a cheap no-op.
        self.sim.schedule(max(visible_at, self.sim.now),
                          _fire_at(self.visible, visible_at))

    def read(self, index: int, at: float) -> Any:
        return self.words[index].read(at)

    def read_all(self, at: float) -> list[Any]:
        return [w.read(at) for w in self.words]

    def snapshot_latest(self) -> list[Any]:
        """Latest values ignoring visibility (tests and debugging only)."""
        return [w.latest() for w in self.words]


def _fire_at(cond: Condition, at: float):
    def run() -> None:
        cond.fire(at)
    return run


class MappingTable:
    """Accounting for Memory Channel connections (Section 2.3).

    The hardware supports 64K connections covering a 128 Mbyte MC address
    space; the paper packs shared pages into *superpages* so large data
    sets fit. We enforce the connection budget so the superpage machinery
    is load-bearing rather than decorative.
    """

    def __init__(self, max_connections: int = 65536) -> None:
        self.max_connections = max_connections
        self._used = 0
        self._names: list[str] = []

    @property
    def used(self) -> int:
        return self._used

    def allocate(self, name: str, connections: int = 1) -> None:
        if connections < 1:
            raise MemoryChannelError("connection count must be positive")
        if self._used + connections > self.max_connections:
            raise MemoryChannelError(
                f"Memory Channel mapping table exhausted allocating "
                f"{connections} connection(s) for {name!r} "
                f"({self._used}/{self.max_connections} in use)")
        self._used += connections
        self._names.append(name)

    def allocated_names(self) -> Iterable[str]:
        return tuple(self._names)

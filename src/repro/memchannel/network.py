"""The simulated Memory Channel network.

Models the characteristics the protocols rely on (Section 2.1):

* remote *writes* only — reads of remote memory are impossible, which is
  why the protocols broadcast directory entries and use explicit
  request/reply messages for page fetches;
* 5.2 us process-to-process write latency;
* 29 MB/s per-link sustained bandwidth, ~60 MB/s aggregate (modeled as
  ``aggregate/link`` concurrent channels at the link rate);
* total global ordering of writes to the same region;
* loop-back: a node may observe its own writes returning through the hub.

All protocol traffic is accounted by category so the harness can
regenerate Table 3's "Data (Mbytes)" row and break traffic down further.
"""

from __future__ import annotations

from typing import Any

from ..config import MachineConfig
from ..errors import MemoryChannelError
from ..sim.engine import MultiChannelResource, Simulator
from .regions import MappingTable, MCRegion

#: Wire size of one Memory Channel word (the Alpha's 32-bit atomic grain).
MC_WORD_BYTES = 4


class MemoryChannel:
    """Latency/bandwidth model plus the region and mapping-table namespace."""

    def __init__(self, sim: Simulator, config: MachineConfig) -> None:
        self.sim = sim
        self.config = config
        costs = config.costs
        self.latency = costs.mc_latency
        self.link_bandwidth = costs.mc_link_bandwidth
        channels = max(1, round(costs.mc_aggregate_bandwidth
                                / costs.mc_link_bandwidth))
        self.links = MultiChannelResource(channels, name="mc-links")
        self.mapping_table = MappingTable()
        self._regions: dict[str, MCRegion] = {}
        #: Bytes moved over the network, by protocol category.
        self.traffic: dict[str, int] = {}
        #: Optional event tracer (:class:`repro.trace.Tracer`); when set,
        #: word writes and bulk transfers appear on the wire track.
        self.trace = None
        #: Optional fault injector (:class:`repro.memchannel.faults.
        #: FaultInjector`); when set, word writes may be deferred past
        #: their nominal visibility time (hub-level reordering between
        #: regions — per-region order is still enforced by
        #: :class:`~repro.memchannel.regions.VersionedWord`).
        self.injector = None

    # --- regions -----------------------------------------------------------

    def new_region(self, name: str, size: int, initial: Any = 0,
                   loopback: bool = False, connections: int = 1) -> MCRegion:
        """Create a named MC region of ``size`` words.

        ``connections`` is the number of mapping-table entries consumed
        (one per transmit/receive mapping pair in the real hardware; the
        superpage layer passes the per-node mapping count).
        """
        if name in self._regions:
            raise MemoryChannelError(f"duplicate MC region {name!r}")
        self.mapping_table.allocate(name, connections)
        region = MCRegion(self.sim, name, size, initial=initial,
                          loopback=loopback)
        self._regions[name] = region
        return region

    def region(self, name: str) -> MCRegion:
        return self._regions[name]

    # --- writes and transfers ----------------------------------------------

    def write_word(self, region: MCRegion, index: int, value: Any,
                   at: float, category: str = "meta") -> float:
        """Issue a single-word remote write at time ``at``.

        Returns the time at which the write is globally visible. Single
        words ride in the adapter's write buffer, so they pay latency but
        no meaningful bandwidth serialization.
        """
        visible_at = at + self.latency
        if self.injector is not None:
            visible_at += self.injector.word_jitter()
        region.post(index, value, visible_at)
        self.account(category, MC_WORD_BYTES)
        if self.trace is not None:
            self.trace.instant("mc_word", None, at, obj=category,
                               bytes=MC_WORD_BYTES, region=region.name)
        return visible_at

    def broadcast_write(self, region: MCRegion, index: int, value: Any,
                        at: float, fanout: int, category: str = "meta") -> float:
        """A write replicated to ``fanout`` receive regions (directory,
        locks, write notices). One wire transaction fans out at the hub;
        traffic is charged once per receiver."""
        visible_at = at + self.latency
        if self.injector is not None:
            visible_at += self.injector.word_jitter()
        region.post(index, value, visible_at)
        self.account(category, MC_WORD_BYTES * max(1, fanout))
        if self.trace is not None:
            self.trace.instant("mc_word", None, at, obj=category,
                               bytes=MC_WORD_BYTES * max(1, fanout),
                               region=region.name, fanout=fanout)
        return visible_at

    def transfer(self, at: float, nbytes: int,
                 category: str = "data") -> tuple[float, float]:
        """Book a bulk transfer (page or diff) issued at time ``at``.

        Returns ``(send_complete, visible_at)``: the issuing processor is
        busy until ``send_complete`` (its store stream is throttled by the
        link), and the data is usable at the destination at ``visible_at``.
        """
        if nbytes < 0:
            raise MemoryChannelError(f"negative transfer size {nbytes}")
        service = nbytes / self.link_bandwidth
        begin, end = self.links.acquire(at, service)
        self.account(category, nbytes)
        if self.trace is not None:
            self.trace.span("mc_transfer", None, begin, end - begin,
                            obj=category, bytes=nbytes)
        return end, end + self.latency

    def visibility(self, at: float) -> float:
        """When a meta-data write issued at ``at`` becomes globally visible."""
        return at + self.latency

    # --- accounting ----------------------------------------------------------

    def bandwidth_snapshot(self) -> tuple[float, dict[str, int]]:
        """Cumulative link busy time (us) and per-category traffic bytes.

        The metrics collector polls this at each sampling boundary and
        differences consecutive snapshots into bandwidth-utilization and
        bytes-per-interval series. Read-only.
        """
        return self.links.busy_time, dict(self.traffic)

    def account(self, category: str, nbytes: int) -> None:
        self.traffic[category] = self.traffic.get(category, 0) + nbytes

    @property
    def total_bytes(self) -> int:
        return sum(self.traffic.values())

    def traffic_mbytes(self) -> float:
        return self.total_bytes / 1e6

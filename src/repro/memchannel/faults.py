"""Deterministic fault injection for the Memory Channel model.

The :class:`FaultInjector` is the single authority for every injected
fault in a run: delayed and lost write notices, hub-level reordering of
remote word writes, NAK'd explicit requests, slowed-down server nodes,
and one crash-stopped node. It is attached to a
:class:`~repro.cluster.machine.Cluster` when ``MachineConfig.faults``
is set, and every injection site holds an ``injector`` attribute that
is ``None`` by default — a run without fault injection executes
exactly the code it executed before this module existed (the same
observer discipline as :mod:`repro.check` and :mod:`repro.trace`).

Determinism contract (DESIGN.md §12): all decisions come from one
private ``random.Random(seed)`` stream, consulted in simulation order,
and a decision point draws from the stream *only when its configured
rate is non-zero*. Consequences:

* a zero-rate :class:`~repro.config.FaultConfig` draws nothing and is
  byte-identical to ``faults=None``;
* enabling one fault class does not perturb the schedule positions at
  which an *independent* class would otherwise fire only via the
  simulation schedule itself (fault classes share the stream but each
  opportunity is reached in deterministic simulated order);
* rerunning with the same seed reproduces the exact fault schedule —
  every discovered failure is a one-line regression test.

What each fault models on the real hardware:

* **notice delay / drop** — write notices travel as non-acknowledged
  remote writes into a per-source bin; a dropped payload still advances
  the bin's tail pointer (that word write is part of the ordered
  stream), so the consumer sees a sequence *gap* and must conservatively
  resynchronize (:meth:`~repro.protocol.base.BaseProtocol` recovery).
* **reorder** — the hub may deliver writes to *different* regions out
  of issue order; per-region order is still guaranteed, which
  :class:`~repro.memchannel.regions.VersionedWord` enforces regardless
  of the jitter injected here.
* **NAK** — a server whose protocol state is transiently Pending
  refuses the request (FLASH-style negative acknowledgement,
  SNIPPETS.md Snippet 3); the requester backs off and retries.
* **slowdown / crash-stop** — an overloaded or failed node: handler
  service stretches by a factor, or the node halts entirely and its
  requests go unanswered.
"""

from __future__ import annotations

import random

from ..config import FaultConfig, MachineConfig


class FaultInjector:
    """Seeded source of all injected faults for one run."""

    def __init__(self, config: MachineConfig) -> None:
        faults = config.faults
        if faults is None:
            raise ValueError("FaultInjector requires config.faults")
        self.faults: FaultConfig = faults
        self._rng = random.Random(faults.seed)
        self._slow = frozenset(faults.slow_nodes) if \
            faults.slowdown > 1.0 else frozenset()
        # Injection bookkeeping (injector-side; processor stats count
        # the protocol-visible consequences).
        self.notices_delayed = 0
        self.notices_dropped = 0
        self.words_reordered = 0
        self.naks_injected = 0
        self.ties_permuted = 0

    # --- decision points ---------------------------------------------------
    # Each draws from the RNG only when its rate is non-zero, so fault
    # classes can be toggled independently and zero-rate configs are
    # byte-identical to no injector at all.

    def _hit(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate

    def notice_fate(self) -> tuple[bool, float]:
        """``(lost, extra_delay_us)`` for one posted write notice."""
        if self._hit(self.faults.notice_drop_rate):
            self.notices_dropped += 1
            return True, 0.0
        if self._hit(self.faults.notice_delay_rate):
            self.notices_delayed += 1
            return False, self.faults.notice_delay_us
        return False, 0.0

    def word_jitter(self) -> float:
        """Extra visibility delay for one remote word write, us."""
        if self._hit(self.faults.reorder_rate):
            self.words_reordered += 1
            return self._rng.uniform(0.0, self.faults.reorder_window_us)
        return 0.0

    def nak_request(self) -> bool:
        """Whether the server NAKs this explicit request attempt."""
        if self._hit(self.faults.nak_rate):
            self.naks_injected += 1
            return True
        return False

    def choose_tie(self, n: int) -> int:
        """Simulator choice-point hook: which of ``n`` same-instant
        events fires first (``Simulator.chooser``). Same-time events
        carry no ordering guarantee on the Memory Channel, so any
        permutation is a legal schedule."""
        if n > 1 and self._hit(self.faults.reorder_rate):
            self.ties_permuted += 1
            return self._rng.randrange(n)
        return 0

    # --- rate-free queries (no randomness) ---------------------------------

    def node_slowdown(self, node_id: int) -> float:
        """Service-time multiplier for request handlers on ``node_id``."""
        return self.faults.slowdown if node_id in self._slow else 1.0

    def node_crashed(self, node_id: int, at: float) -> bool:
        """Whether ``node_id`` has crash-stopped by simulated time ``at``."""
        return node_id == self.faults.crash_node \
            and at >= self.faults.crash_at_us

    def summary(self) -> dict[str, int]:
        """Injection counts, for reports and tests."""
        return {
            "notices_delayed": self.notices_delayed,
            "notices_dropped": self.notices_dropped,
            "words_reordered": self.words_reordered,
            "naks_injected": self.naks_injected,
            "ties_permuted": self.ties_permuted,
        }

"""Simulated DEC Memory Channel: regions, mapping table, network model,
and deterministic fault injection."""

from .faults import FaultInjector
from .network import MC_WORD_BYTES, MemoryChannel
from .regions import MappingTable, MCRegion, VersionedWord

__all__ = ["MemoryChannel", "MCRegion", "VersionedWord", "MappingTable",
           "MC_WORD_BYTES", "FaultInjector"]

"""Exception hierarchy for the Cashmere-2L reproduction.

All library errors derive from :class:`CashmereError` so callers can catch
one base class. Specific subclasses distinguish configuration mistakes,
protocol invariant violations, and simulation engine misuse.
"""

from __future__ import annotations


class CashmereError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(CashmereError):
    """An invalid machine, protocol, or application configuration."""


class SimulationError(CashmereError):
    """Misuse of the discrete-event simulation engine.

    Examples: scheduling an event in the past, running a finished
    simulator, or a simulated process yielding an unknown instruction.
    """


class DeadlockError(SimulationError):
    """The simulation stalled with live processes and no pending events."""


class ProtocolError(CashmereError):
    """A coherence-protocol invariant was violated.

    These indicate bugs in protocol code (or corrupted meta-data), never
    user error: e.g. a flush of a page without a twin, a directory entry
    claiming an exclusive holder on two nodes, or an incoming diff that
    overlaps local modifications in a data-race-free program.
    """


class MemoryChannelError(CashmereError):
    """Invalid use of the simulated Memory Channel.

    Examples: reading a transmit-only mapping, writing a receive-only
    mapping, exceeding the mapping table, or misaligned sub-word writes.
    """


class ProtectionFault(CashmereError):
    """An access violated page permissions and no handler accepted it.

    The DSM protocols install fault handlers that normally consume these;
    seeing one escape means shared memory was accessed outside a running
    protocol (for example, from non-simulated code).
    """

    def __init__(self, processor: object, page: int, write: bool) -> None:
        kind = "write" if write else "read"
        super().__init__(f"unhandled {kind} fault on page {page} by {processor}")
        self.processor = processor
        self.page = page
        self.write = write


class DataRaceError(CashmereError):
    """The runtime detected an application data race.

    Cashmere requires data-race-free applications; the simulator checks
    the invariant the protocol relies on (incoming diffs never overlap
    local dirty words) and raises this when an application breaks it.
    The happens-before race detector (:mod:`repro.check`) raises it too,
    with full provenance of the racing access pair.
    """


class CoherenceViolation(CashmereError):
    """The coherence oracle caught the protocol serving wrong data.

    Raised by :mod:`repro.check` when a checked execution diverges from
    the golden (happens-before-ordered sequential) image: a read that
    returned a value other than the one written by the happens-before
    latest write, a master/exclusive page copy that disagrees with the
    golden memory at a sync point, or a structural directory/twin
    invariant failure. Unlike :class:`DataRaceError` (an application
    bug), this always indicates a protocol bug.

    Structured fields name the first divergent word so counterexamples
    shrink well: ``page``, ``offset``, ``word`` (global word index),
    ``expected``, ``actual``, ``check`` (which oracle check fired) and
    ``event`` (the provenance of the access or last write involved).
    """

    def __init__(self, message: str, *, check: str = "",
                 page: int | None = None, offset: int | None = None,
                 word: int | None = None, expected: float | None = None,
                 actual: float | None = None, event: object = None) -> None:
        super().__init__(message)
        self.check = check
        self.page = page
        self.offset = offset
        self.word = word
        self.expected = expected
        self.actual = actual
        self.event = event


class NodeCrashedError(SimulationError):
    """A crash-stopped node was detected (fault injection, DESIGN.md §12).

    Raised either by a crashed node's own processors when they reach
    their crash time, or by a requester whose retry budget was exhausted
    against an unresponsive node. Crash-stop is a *clean* failure: the
    raise is deterministic (same seed and config, same failure point),
    so crash runs make exact regression tests.
    """


class LoweringError(CashmereError):
    """A kernel region failed the stage-1 lowerability proof
    (:mod:`repro.lower.analyze`).

    Region bodies must be sync-free: any ``yield from`` delegation or
    call to a blocking/synchronizing env method (``barrier``,
    ``acquire``, ``release``, flag operations) inside a
    :class:`~repro.lower.RegionKernel.interp` body makes the region
    non-lowerable, because the batched executor could not replay the
    side effects of the sync at the right simulated instant. These
    indicate a malformed kernel class, never user data.
    """


class InvariantViolation(CashmereError):
    """The model checker found a reachable state violating a coherence
    invariant (:mod:`repro.check.explore`).

    Carries the minimal counterexample: the interleaving ``schedule``
    (which processor stepped, in order) and the per-step operation
    ``trace`` that drives the real protocol code back into the violating
    state. ``cause`` is the underlying check failure (a
    :class:`CoherenceViolation`, :class:`ProtocolError`, or
    :class:`DataRaceError`).
    """

    def __init__(self, message: str, *, schedule: tuple[int, ...] = (),
                 trace: tuple = (), cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.schedule = schedule
        self.trace = trace
        self.cause = cause


class UnknownCounterError(CashmereError):
    """A statistics counter name outside the canonical set was used.

    Counters are write-mostly: a typo'd name would silently accumulate
    into the stats ``Counter`` and never be read back, so both increments
    and reads validate against :data:`repro.stats.COUNTER_NAMES`.
    """

"""Stage 2: region kernels — the compiled form of a lowerable loop.

A :class:`RegionKernel` packages one sync-free worker loop region twice:

* ``interp(env)`` — the original per-step generator loop, byte-identical
  to the pre-lowering worker code. This is the ground truth: the
  fallback the runtime uses whenever lowering is off (observers, fault
  injection, write-through protocols, ``CASHMERE_NO_LOWERING``) and the
  reference the parity tests diff the batched path against. Stage 1
  (:mod:`.analyze`) proves this body sync-free once per class.
* the **descriptor** — per-step ordered first-touch page lists
  (``touches``), a fixed per-step :class:`~repro.sim.process.Compute`
  cost (``cost``), and the staged data hooks ``ingest`` (copy a step's
  newly-validated input spans out of the page frames at the instant the
  interpreter would have read them) and ``materialize`` (write a run of
  steps' results back through the frames in one vectorized operation).

The split matters for correctness under concurrency: input values are
*ingested* per step at validation time — the simulated instant the
interpreted ``get_block`` would have copied them — so a later
invalidation or remap of those pages cannot leak into the batch;
results are *materialized* before the executor ever yields to another
simulation event, so no foreign event can observe (or shoot down) a
half-committed region. Writes go straight into the frames: with the
write cache on (the only configuration that lowers), a warm interpreted
``set_block`` is exactly a frame store, so the values and the protocol
state agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vm.page import Perm
from .analyze import check_kernel_class

#: Permission levels the touch lists request (re-exported so kernels and
#: the executor share one spelling).
READ = Perm.READ
WRITE = Perm.WRITE


@dataclass(frozen=True)
class RegionDescriptor:
    """What one compiled region will do — introspection/reporting form."""

    n: int
    cpu_us: float
    mem_bytes: float
    pages_read: tuple[int, ...]
    pages_written: tuple[int, ...]
    #: Serialized per-step first-touch lists, ``((need, page), ...)``
    #: per step with ``need`` as the integer Perm value — hashable and
    #: JSON-friendly, parsed back with :meth:`to_touches`.
    touches: tuple[tuple[tuple[int, int], ...], ...] = ()

    def to_touches(self) -> list[list[tuple[Perm, int]]]:
        """The exact per-step ``(need, page)`` lists the executor
        replays (the inverse of :meth:`RegionKernel.describe`)."""
        return [[(Perm(need), page) for need, page in step]
                for step in self.touches]


class RegionKernel:
    """One lowerable sync-free loop region of a worker kernel.

    Subclasses set, in ``__init__`` (after calling ``super().__init__``):

    * ``n`` — the number of super-steps (loop iterations);
    * ``cost`` — the per-step ``Compute`` instruction (build it with
      ``env.compute(...)`` so the compute-scale parameter applies);
    * when ``self.lowerable`` — ``touches``: a list of ``n`` per-step
      sequences of ``(need, page)`` pairs, in the exact order the
      interpreted body first touches each page at that step (``need``
      is :data:`READ` or :data:`WRITE`), plus whatever staging buffers
      ``ingest``/``materialize`` use.

    ``interp(env)`` must reproduce the original loop exactly; the
    executor's per-step fault replay is equivalent only because the
    touch lists mirror that body's access order.
    """

    n: int = 0
    cost = None
    touches: list = []

    #: Adaptive-policy state (per subclass): batching only pays when the
    #: event horizon actually lets steps coalesce. See :meth:`want_lowered`.
    _adapt_execs = 0
    _adapt_ratio = float("inf")
    #: Mean steps-per-batch below which interpretation is cheaper than
    #: the batched executor (measured: break-even ≈ 2 on SOR rows).
    _adapt_threshold = 2.0
    #: Re-probe cadence: every Nth execution runs lowered regardless, so
    #: a phase whose schedule skew changes (stragglers, imbalance) can
    #: re-earn batching. 64 keeps the probe tax under ~2% of a fully
    #: lockstep run while still re-detecting within one app iteration
    #: (32 processors x 2 sweeps probe every half-iteration).
    _adapt_probe = 64

    def __init__(self, env) -> None:
        cls = type(self)
        if "_lower_report" not in cls.__dict__:
            cls._lower_report = check_kernel_class(cls)
        self.env = env
        #: Whether this environment runs the batched executor; kernels
        #: build touch lists and staging buffers only when set.
        self.lowerable = bool(getattr(env, "_lowering", False))

    # --- adaptive policy --------------------------------------------------

    def want_lowered(self) -> bool:
        """Whether the batched executor is expected to beat the
        interpreter for the next execution of this region class.

        In a lockstep-contended schedule (all processors' events
        interleaved step by step) the horizon check bounds every batch
        at one step and the batched machinery is pure overhead; the
        interpreter is byte-identical, so falling back is free. The
        decision uses the class's last measured steps-per-batch ratio,
        with a periodic probe so changed schedules are re-detected.

        This is the *reference* form of the policy. The runtime hot
        path (``WorkerEnv.run_region``) inlines an equivalent hoisted
        decision — a bare ratio-vs-threshold compare in the lowered
        steady state, with the probe countdown kept per (env, kernel
        class) and only in the interpreting regime — so no per-entry
        counter increment or modulo runs on lockstep schedules.
        """
        cls = type(self)
        k = cls._adapt_execs
        cls._adapt_execs = k + 1
        if k % cls._adapt_probe == 0:
            return True
        return cls._adapt_ratio >= cls._adapt_threshold

    def note_execution(self, steps: int, batches: int) -> None:
        """Executor feedback: one region execution took ``batches``
        events to cover ``steps`` super-steps."""
        type(self)._adapt_ratio = steps / batches if batches else float("inf")

    # --- stage-3 hooks (batched execution) --------------------------------

    def begin(self) -> None:
        """Reset per-execution state; called once per region execution."""

    def ingest(self, i: int) -> None:
        """Copy step ``i``'s newly-readable input spans out of the page
        frames (runs right after step ``i``'s fault replay, i.e. at the
        simulated instant the interpreted body would have read them)."""

    def ingest_batch(self, lo: int, hi: int) -> None:
        """Ingest steps ``[lo, hi)`` at once. The executor defers warm
        steps' ingests to batch boundaries: sound because no event (and
        no fault) runs between a warm step and its batch boundary, so
        the frames hold the same bytes a per-step copy would have seen.
        Kernels whose input spans are contiguous across steps should
        override this with one vectorized copy."""
        for i in range(lo, hi):
            self.ingest(i)

    def materialize(self, lo: int, hi: int) -> None:
        """Commit the results of steps ``[lo, hi)`` to the page frames,
        bit-identical to what ``interp`` would have written."""
        raise NotImplementedError

    def interp(self, env):
        """The original per-step loop (generator); the ground truth."""
        raise NotImplementedError

    # --- introspection ----------------------------------------------------

    def describe(self) -> RegionDescriptor:
        reads: set[int] = set()
        writes: set[int] = set()
        for step in self.touches:
            for need, page in step:
                (writes if need >= WRITE else reads).add(page)
        cost = self.cost
        return RegionDescriptor(
            n=self.n,
            cpu_us=cost.cpu_us if cost is not None else 0.0,
            mem_bytes=cost.mem_bytes if cost is not None else 0.0,
            pages_read=tuple(sorted(reads)),
            pages_written=tuple(sorted(writes)),
            touches=tuple(tuple((int(need), page) for need, page in step)
                          for step in self.touches))

    # --- span helpers for subclasses --------------------------------------

    def span_pages(self, arr, lo: int, hi: int) -> list[int]:
        """Page ids covered by words ``[lo, hi)`` of ``arr``, ascending —
        the order ``get_block``/``set_block`` fault them."""
        shift = self.env._shift
        w0 = arr.base + lo
        w1 = arr.base + hi
        if w1 <= w0:
            return []
        return list(range(w0 >> shift, ((w1 - 1) >> shift) + 1))

    def read_span(self, arr, lo: int, hi: int, out: np.ndarray) -> None:
        """Copy words ``[lo, hi)`` of ``arr`` from the frames into ``out``."""
        env = self.env
        frames = env._frames
        shift, mask = env._shift, env._mask
        wpp = mask + 1
        w = arr.base + lo
        w1 = arr.base + hi
        pos = 0
        while w < w1:
            page = w >> shift
            off = w & mask
            take = min(wpp - off, w1 - w)
            out[pos:pos + take] = frames[page][off:off + take]
            pos += take
            w += take

    def write_span(self, arr, lo: int, values: np.ndarray) -> None:
        """Store ``values`` at word offset ``lo`` of ``arr`` via the frames."""
        env = self.env
        frames = env._frames
        shift, mask = env._shift, env._mask
        wpp = mask + 1
        w = arr.base + lo
        w1 = w + len(values)
        pos = 0
        while w < w1:
            page = w >> shift
            off = w & mask
            take = min(wpp - off, w1 - w)
            frames[page][off:off + take] = values[pos:pos + take]
            pos += take
            w += take

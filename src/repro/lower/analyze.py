"""Stage 1: the lowerability proof for kernel region bodies.

A region body (:meth:`~repro.lower.regions.RegionKernel.interp`) is the
original per-step loop a worker used to inline. Lowering replays its
page faults from a precomputed touch list and charges its compute cost
without running the Python body — which is only sound if the body
*cannot* do anything else. This module proves that statically, over the
same statement CFG the lint's kernel analyzer uses
(:mod:`repro.lint.cfg`):

* **single entry** — a function body has exactly one CFG entry, and
  every reachable node is reached from it; sync points live in the
  worker, so the region is the maximal code between them;
* **sync-free** — no ``yield from`` delegation anywhere (that is how
  every blocking operation — barriers, lock acquires, flag waits —
  reaches the simulator), and no call to a synchronizing or
  phase-changing env method, even a non-delegated one (``release``,
  ``flag_set``, ``end_init`` take effect immediately);
* **step-shaped** — plain ``yield`` expressions are the region's
  super-step boundaries (each charges the step cost); anything else a
  worker could yield would need the interpreter.

Data accesses (``get``/``set``/``get_block``/``set_block``) are allowed
and collected into the report — they are what the stage-2 touch lists
describe. The proof is per kernel *class*, runs once, and failure is a
hard :class:`~repro.errors.LoweringError`: a region that cannot be
proven is a malformed kernel, not a fallback case (per-run fallback is
for page-state preconditions, not for code shape).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass

from ..errors import LoweringError
# The lint package's kernel-analysis building blocks (PR 5): the
# statement CFG and the source-ordered call scanner double as the
# region analyzer's front end.
from ..lint.appcheck import _ACCESS_METHODS, _ENV_METHODS
from ..lint.cfg import build_cfg, node_calls, node_exprs, walk_no_defs

#: Env methods that synchronize, block, or change phase: any call makes
#: the region non-lowerable. (``compute`` and ``arr`` are pure; the
#: access methods are what the touch lists model.)
_SYNC_METHODS = frozenset(_ENV_METHODS) - frozenset(_ACCESS_METHODS) \
    - frozenset({"compute", "arr"}) | frozenset({"run_region"})


@dataclass(frozen=True)
class RegionReport:
    """Stage-1 result for one region body (all checks passed)."""

    #: Qualified name of the analyzed function.
    name: str
    #: CFG nodes reachable from the region's single entry.
    nodes: int
    #: Arrays read / written, as source expressions (e.g. ``"self._src"``).
    reads: tuple[str, ...]
    writes: tuple[str, ...]
    #: Number of ``yield`` sites (super-step boundaries) in the body.
    yields: int


def _fail(name: str, node: ast.AST, why: str) -> LoweringError:
    line = getattr(node, "lineno", 0)
    return LoweringError(f"{name} is not lowerable (line {line}): {why}")


def _env_param(func: ast.FunctionDef) -> str:
    args = func.args
    every = args.posonlyargs + args.args + args.kwonlyargs
    for a in every:
        if a.arg == "env":
            return a.arg
    raise LoweringError(
        f"{func.name} is not a region body: no ``env`` parameter")


def _alias_prepass(func: ast.FunctionDef, env_name: str) -> dict[str, str]:
    """Bound-method aliases (``get_block = env.get_block``), including
    tuple assignments — the same local idiom the lint resolves."""
    aliases: dict[str, str] = {}

    def bind(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)) \
                and isinstance(value, (ast.Tuple, ast.List)) \
                and len(target.elts) == len(value.elts):
            for t, v in zip(target.elts, value.elts):
                bind(t, v)
            return
        if isinstance(target, ast.Name) and isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id == env_name:
            aliases[target.id] = value.attr

    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                bind(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            bind(stmt.target, stmt.value)
    return aliases


def analyze_region(func: ast.FunctionDef,
                   name: str | None = None) -> RegionReport:
    """Prove one function body lowerable; raise LoweringError if not."""
    name = name or func.name
    env_name = _env_param(func)
    aliases = _alias_prepass(func, env_name)

    def env_method(call: ast.Call) -> str | None:
        f = call.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
                and f.value.id == env_name:
            return f.attr
        if isinstance(f, ast.Name):
            return aliases.get(f.id)
        return None

    cfg = build_cfg(func)
    reachable = cfg.reachable_from({cfg.entry})
    reads: list[str] = []
    writes: list[str] = []
    yields = 0
    for node in cfg.nodes:
        if node not in reachable or node.stmt is None:
            continue
        # Per-node expressions only: each yield is counted exactly once
        # (at its own statement node), never again at an enclosing
        # loop or ``with`` header.
        for root in node_exprs(node):
            for expr in walk_no_defs(root):
                if isinstance(expr, ast.YieldFrom):
                    raise _fail(name, expr,
                                "``yield from`` delegates to a "
                                "sub-generator (sync); regions must "
                                "end at sync points")
                if isinstance(expr, ast.Yield):
                    yields += 1
        for call in node_calls(node):
            method = env_method(call)
            if method is None:
                continue
            if method in _SYNC_METHODS:
                raise _fail(name, call,
                            f"calls env.{method}(); synchronization and "
                            f"phase changes must stay in the worker")
            if method in _ACCESS_METHODS:
                kind, _slots = _ACCESS_METHODS[method]
                target = ast.unparse(call.args[0]) if call.args else "<?>"
                (reads if kind == "read" else writes).append(target)
    return RegionReport(
        name=name, nodes=len(reachable), yields=yields,
        reads=tuple(dict.fromkeys(reads)),
        writes=tuple(dict.fromkeys(writes)))


def check_kernel_class(cls) -> RegionReport:
    """Prove a :class:`RegionKernel` subclass's ``interp`` body lowerable."""
    func = inspect.unwrap(cls.interp)
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError) as exc:
        raise LoweringError(
            f"{cls.__name__}.interp: source unavailable for the "
            f"lowerability proof ({exc})") from exc
    tree = ast.parse(source)
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        raise LoweringError(
            f"{cls.__name__}.interp must be a plain function")
    return analyze_region(fdef, name=f"{cls.__name__}.interp")

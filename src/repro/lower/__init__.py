"""Kernel lowering: compile sync-free worker loop regions into batched
super-steps (DESIGN.md §14).

The PR 3 software TLB removed per-access protocol dispatch; what remains
of the interpreter's wall-clock cost is per-*step* machinery — one
generator resume, one event push/pop, and one Python loop body per app
loop iteration. This package removes that too, in three stages:

* **Stage 1 — prove** (:mod:`.analyze`): a region body — the
  ``interp()`` method of a :class:`RegionKernel` — is statically checked
  over its statement CFG (reusing the :mod:`repro.lint` machinery) to be
  single-entry and sync-free: no ``yield from`` delegation, no
  barrier/lock/flag calls, only plain data accesses and ``yield
  <compute>`` steps. Sync points stay in the worker, so regions are by
  construction the maximal code between them.
* **Stage 2 — compile** (:class:`RegionKernel` subclasses): each region
  carries a descriptor: per-step ordered first-touch page lists (the
  exact pages the interpreted body would fault on, in access order), a
  fixed per-step ``Compute`` cost, and a vectorized numpy thunk
  (``materialize``) equivalent to the loop body bit for bit.
* **Stage 3 — execute** (:mod:`.exec`): when
  ``MachineConfig.lowering`` is on and no observer is attached, the
  runtime executes the region as a batched instruction: per step it
  validates the touch list against the live page table (replaying real
  protocol faults at the exact simulated instant the interpreter would
  have faulted), charges the step's compute cost with the identical
  arithmetic, and keeps going inline while no other simulation event is
  due — then commits the accumulated steps with one numpy call.

Byte identity with the interpreter is the design invariant, not a
best-effort goal: ``tests/test_lowering.py`` asserts identical
``RunStats`` (every counter, bucket, and the exec time bit pattern) and
identical result arrays for SOR, Water, and LU under all four protocols.
The escape hatch is ``CASHMERE_NO_LOWERING=1`` (or
``MachineConfig(lowering=False)``); the checker, tracer, metrics
collector, and fault injection all force per-step interpretation
automatically because they observe the per-access paths a batch skips.
"""

from .analyze import RegionReport, analyze_region, check_kernel_class
from .exec import LoweredRun, region_instruction
from .regions import READ, WRITE, RegionDescriptor, RegionKernel

__all__ = [
    "READ", "WRITE",
    "RegionDescriptor", "RegionKernel", "RegionReport",
    "LoweredRun", "analyze_region", "check_kernel_class",
    "region_instruction",
]

"""Stage 3: the batched region executor.

A lowered region executes as a single *region instruction*: the worker
generator yields one :class:`LoweredRun`, and the simulation layer hands
it the process to drive (``SimProcess._dispatch``). The executor then
reproduces, step by step, exactly what the interpreted loop would have
done — while collapsing every step the event queue permits into the
current simulation event:

1. **validate / fault replay** — step ``i``'s touch list is checked
   against the live page table; an insufficient permission triggers the
   *real* protocol fault handler (``read_fault``/``write_fault``), at
   the same processor clock and in the same order the interpreted
   body's accesses would have faulted. Touches with sufficient
   permission charge nothing — exactly like a warm interpreted access.
2. **ingest** — the kernel copies the step's newly-validated input
   spans out of the frames (the values the interpreted ``get_block``
   would have returned at this instant).
3. **charge** — the step's ``Compute`` cost goes through
   ``Processor.run_compute``, the same arithmetic (bucket accounting,
   bus-interval bookkeeping, poll charge) the interpreter's dispatch
   uses, so clocks and buckets stay bit-identical.
4. **horizon check** — the interpreter would now push this process's
   resume event at the current clock and return to the event loop; the
   next step runs inline only if no other event is due at or before
   this clock (a same-time event has a smaller sequence number and
   would run first under interpretation). Otherwise the pending steps
   are committed (``materialize``) and a continuation event is pushed
   at the exact clock — byte-identical scheduling, minus the queue
   churn of events that would have been popped immediately anyway.

Why no foreign event can invalidate a collapsed batch: the protocols
are analytic — fault handlers and request servicing charge clocks and
mutate state synchronously, they never schedule simulator events — and
``Simulator.schedule`` never inserts before ``sim.now``. So between two
steps of one batch nothing else can run, *by construction*; any event
that could interleave already sits in the queue and trips the horizon
check. The continuation re-enters through ``service_requests()`` first,
like every interpreted resume (``SimProcess._step``).

Failures inside a region propagate exactly like failures inside a
worker step: the process is marked failed and the group's failure hook
runs (``SimProcess`` routes interpreted-body exceptions the same way).
"""

from __future__ import annotations

from heapq import heappush

from ..vm.page import Perm

_WRITE = Perm.WRITE
_INF = float("inf")


def region_instruction(kernel, env):
    """Generator: the lowered execution of one region (a single yield)."""
    yield LoweredRun(kernel, env)


class LoweredRun:
    """One batched execution of a :class:`~repro.lower.RegionKernel`.

    Instances are reusable: ``WorkerEnv.run_region`` caches one per
    (env, kernel) and calls :meth:`reset` on re-entry, so a lockstep
    schedule that enters the same region thousands of times pays the
    constructor (and the bound-method allocation) exactly once.
    """

    __slots__ = ("kernel", "env", "_sp", "_i", "_batches", "_cont_cb",
                 "_valid")

    def __init__(self, kernel, env) -> None:
        self.kernel = kernel
        self.env = env
        self._sp = None
        #: Next step index (the resume point after a horizon break).
        self._i = 0
        #: Number of commits so far (adaptive-policy feedback).
        self._batches = 0
        # One stable bound method per run: continuations are pushed
        # repeatedly and must not allocate a fresh closure each time.
        self._cont_cb = self._continue
        #: Pages already validated this ``_run`` call, mapped to the
        #: strongest permission level checked. Consecutive steps of one
        #: region overlap heavily (a SOR page holds eight rows), and a
        #: warm batch freezes the page table by construction, so a page
        #: validated once stays valid until an event or a fault runs.
        self._valid: dict = {}

    def reset(self) -> None:
        """Rearm for the next execution of the same region (the cached
        re-entry path — equivalent to constructing a fresh run)."""
        self._sp = None
        self._i = 0
        self._batches = 0

    # -- SimProcess hook ---------------------------------------------------

    def drive(self, sp) -> None:
        """Begin executing the region on process ``sp`` (dispatch hook)."""
        self._sp = sp
        try:
            self.kernel.begin()
            self._run()
        except BaseException as exc:  # noqa: BLE001 - mirrors SimProcess._step
            self._fail(exc)

    # -- internals ---------------------------------------------------------

    def _continue(self) -> None:
        """Resume after a horizon break (one scheduled event later)."""
        sp = self._sp
        if sp.done:
            return
        # An interpreted resume polls for requests before running the
        # body (SimProcess._step); the continuation must too.
        sp.ctx.service_requests()
        try:
            self._run()
        except BaseException as exc:  # noqa: BLE001
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        sp = self._sp
        sp.done = True
        sp.failed = exc
        if sp._registry is not None:
            sp._registry.on_failure(sp, exc)

    def _commit(self, lo: int, pend: int, i: int) -> None:
        """Ingest any deferred steps, commit ``[lo, i)``, and push the
        next event (region resume when done, else a continuation)."""
        kernel = self.kernel
        if pend < i:
            kernel.ingest_batch(pend, i)
        kernel.materialize(lo, i)
        self._i = i
        self._batches += 1
        sp = self._sp
        sim = sp.sim
        sim._seq += 1
        if i == kernel.n:
            kernel.note_execution(i, self._batches)
            cb = sp._resume_cb
        else:
            cb = self._cont_cb
        heappush(sim._queue, (sp.ctx.clock, sim._seq, cb))

    def _run(self) -> None:
        sp = self._sp
        proc = sp.ctx
        sim = sp.sim
        queue = sim._queue
        kernel = self.kernel
        env = self.env
        st = env._pstate
        rows = st.rows
        lidx = st.lidx
        proto = env._protocol
        read_fault = proto.read_fault
        write_fault = proto.write_fault
        touches = kernel.touches
        run_compute = proc.run_compute
        cost = kernel.cost
        cpu = cost.cpu_us
        mem = cost.mem_bytes
        n = kernel.n
        costs = proc._costs
        polling = proc._polling
        poll = costs.poll_check
        service = mem / costs.node_bus_bandwidth if mem > 0 else 0.0
        bus = proc.node.bus
        buckets = proc.stats.buckets
        i = self._i
        lo = i     # first uncommitted step (materialize floor)
        pend = i   # first step whose ingest is still deferred
        # Validated-page cache, scoped to this _run call: cleared on
        # entry (a continuation means foreign events ran and may have
        # downgraded permissions) and after every fault replay (the
        # protocol handlers mutate page-table state). Between those
        # points nothing else can run, so a page checked once at a
        # given need stays good — repeat touches skip the page-table
        # row lookup entirely.
        valid = self._valid
        valid.clear()
        vget = valid.get
        while True:
            # -- warm inner loop: consecutive steps whose touch lists
            # are fully satisfied charge with Processor.run_compute's
            # untraced arithmetic inlined over hoisted locals. The FP
            # operation sequence is identical add for add, so clocks,
            # buckets, and bus state stay bit-identical; hoisting is
            # sound because nothing else can run mid-batch (no event is
            # popped, and warm steps make no protocol calls, so the
            # queue — and therefore ``head`` — is frozen).
            c = proc.clock
            head = queue[0][0] if queue else _INF
            bu = buckets["user"]
            bp = buckets["polling"]
            iv = bus._intervals
            bb = bus.busy_time
            br = bus.total_requests
            dirty = False
            cold = False
            while True:
                for need, page in touches[i]:
                    if vget(page, 0) < need:
                        if rows[page][lidx] < need:
                            cold = True
                            break
                        valid[page] = need
                if cold:
                    break
                # inlined run_compute (cf. cluster/machine.py): cpu,
                # bus interval, polling — same branches, same order.
                if cpu > 0:
                    bu += cpu
                    c += cpu
                if mem > 0:
                    if not iv or iv[-1][1] <= c:
                        br += 1
                        bb += service
                        if service > 0:
                            if iv and iv[-1][1] == c:
                                iv[-1][1] = c + service
                            else:
                                iv.append([c, c + service])
                                if len(iv) > 4096:
                                    del iv[:2048]
                            delta = c + service - c
                            bu += delta
                            c += delta
                    else:
                        # Clock behind the bus timeline: take the real
                        # queueing acquire (it keeps its own counters —
                        # sync the hoisted ones around the call).
                        bus.busy_time = bb
                        bus.total_requests = br
                        begin, end = bus.acquire(c, service)
                        delta = end - c
                        if delta > 0:
                            bu += delta
                            c += delta
                        bb = bus.busy_time
                        br = bus.total_requests
                if polling and poll > 0:
                    bp += poll
                    c += poll
                dirty = True
                i += 1
                if i == n or head <= c:
                    break
            if dirty:
                proc.clock = c
                buckets["user"] = bu
                buckets["polling"] = bp
                bus.busy_time = bb
                bus.total_requests = br
            if not cold:
                # Region finished, or another event is due at or before
                # our clock (it would run before the interpreter's next
                # step — same-time events carry smaller seq numbers):
                # commit everything batched so far and yield.
                self._commit(lo, pend, i)
                return
            # -- cold step: flush deferred ingests (its faults may
            # rewrite frames), then replay the real protocol faults at
            # the exact clock, in the order the interpreted body's
            # accesses would have taken them. A write touch on an
            # unwritable page takes write_fault regardless of whether
            # the page is mapped at all, like store_range.
            if pend < i:
                kernel.ingest_batch(pend, i)
            for need, page in touches[i]:
                if rows[page][lidx] < need:
                    if need is _WRITE:
                        write_fault(proc, st, page)
                    else:
                        read_fault(proc, st, page)
            valid.clear()  # fault handlers mutate page-table state
            kernel.ingest(i)
            run_compute(cpu, mem)
            i += 1
            pend = i
            if i == n or (queue and queue[0][0] <= proc.clock):
                self._commit(lo, pend, i)
                return
            # else: loop — re-hoist (faults may have posted events or
            # moved the bus timeline).

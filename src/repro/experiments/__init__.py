"""Experiment harnesses regenerating the paper's tables and figures.

See DESIGN.md's per-experiment index: table1/table2/table3 and
figure6/figure7 map one-to-one to the paper's artifacts; shootdown and
lockfree reproduce the Section 3.3.4 / 3.3.5 ablations.
"""

from .configs import (APP_ORDER, FULL_PLATFORM, PLACEMENT_ORDER,
                      PROTOCOL_ORDER, QUICK_PLACEMENTS, experiment_config)
from .figure6 import Figure6Results, run_figure6
from .figure7 import Figure7Results, run_figure7
from .lockfree import LockFreeResults, run_lockfree_ablation
from .polling import PollingResults, run_polling_ablation
from .sensitivity import SensitivityResults, run_sensitivity
from .shootdown import ShootdownResults, run_shootdown_ablation
from .sweep import (CellResult, ResultCache, RunSpec, Sweep, SweepStats,
                    execute_cell, run_cells)
from .table1 import PAPER_TABLE1, Table1Results, run_table1
from .table2 import Table2Row, format_table2, run_table2
from .table3 import Table3Results, run_table3

__all__ = [
    "APP_ORDER", "PROTOCOL_ORDER", "PLACEMENT_ORDER", "QUICK_PLACEMENTS",
    "FULL_PLATFORM", "experiment_config",
    "run_table1", "run_table2", "run_table3", "run_figure6", "run_figure7",
    "run_shootdown_ablation", "run_lockfree_ablation", "run_sensitivity",
    "run_polling_ablation",
    "Table1Results", "Table2Row", "Table3Results", "Figure6Results",
    "Figure7Results", "ShootdownResults", "LockFreeResults",
    "SensitivityResults", "PollingResults",
    "format_table2", "PAPER_TABLE1",
    "RunSpec", "CellResult", "ResultCache", "Sweep", "SweepStats",
    "run_cells", "execute_cell",
]

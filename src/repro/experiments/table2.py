"""Experiment E2 — Table 2: data set sizes and sequential execution time.

Runs every application sequentially (uninstrumented: plain arrays, no
protocol) at experiment scale and reports, next to the paper's values,
the scaled problem size, the shared-memory footprint, and the simulated
sequential time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import make_app
from ..stats.report import format_table
from .configs import APP_ORDER, FULL_PLATFORM, bench_params
from .sweep import RunSpec, run_cells


@dataclass
class Table2Row:
    app: str
    problem: str
    shared_kbytes: float
    seq_time_s: float
    paper_problem: str
    paper_seq_time_s: float


def run_table2(apps: tuple[str, ...] = APP_ORDER,
               sweep=None) -> list[Table2Row]:
    specs = [RunSpec.seq_run(name, FULL_PLATFORM) for name in apps]
    cells = run_cells(specs, sweep)
    rows = []
    for name, cell in zip(apps, cells):
        app = make_app(name)
        params = bench_params(app)
        problem = ", ".join(f"{k}={v}" for k, v in params.items())
        rows.append(Table2Row(
            app=name,
            problem=problem,
            shared_kbytes=cell.shared_kbytes,
            seq_time_s=cell.exec_time_us / 1e6,
            paper_problem=app.paper_problem_size,
            paper_seq_time_s=app.paper_seq_time_s,
        ))
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    table_rows = [
        (r.app, [r.shared_kbytes, r.seq_time_s, r.paper_seq_time_s])
        for r in rows]
    out = format_table(
        "Table 2: data set sizes and sequential execution time (scaled)",
        ["KB shared", "seq (s)", "paper (s)"], table_rows, col_width=12)
    details = ["", "Scaled problem sizes:"]
    for r in rows:
        details.append(f"  {r.app:7s} {r.problem}   "
                       f"(paper: {r.paper_problem})")
    return out + "\n" + "\n".join(details)


if __name__ == "__main__":  # pragma: no cover
    print(format_table2(run_table2()))

"""Experiment E4 — Figure 6: breakdown of execution time at 32 processors.

For every application and protocol, reports the percentage of aggregate
processor time spent in User code, Protocol code, Polling, Communication
& Wait, and Write Doubling (1L only), normalized — as in the paper — to
the total execution time of Cashmere-2L, so bars above 100% show how much
slower a protocol is than 2L.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.process import TIME_BUCKETS
from ..stats.report import format_table
from .configs import APP_ORDER, FULL_PLATFORM, PROTOCOL_ORDER
from .sweep import RunSpec, run_cells

BUCKET_LABELS = {
    "user": "User",
    "protocol": "Protocol",
    "polling": "Polling",
    "comm_wait": "Comm & Wait",
    "write_double": "Write Doubling",
}


@dataclass
class Figure6Results:
    #: breakdown[app][protocol][bucket] -> percent of 2L total time.
    breakdown: dict[str, dict[str, dict[str, float]]] = \
        field(default_factory=dict)
    exec_time_s: dict[str, dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        sections = []
        for app, per_proto in self.breakdown.items():
            rows = []
            for bucket in TIME_BUCKETS:
                rows.append((BUCKET_LABELS[bucket],
                             [per_proto[p].get(bucket, 0.0)
                              for p in per_proto]))
            rows.append(("Total (% of 2L)",
                         [sum(per_proto[p].values()) for p in per_proto]))
            sections.append(format_table(
                f"Figure 6 — {app}: normalized execution time breakdown (%)",
                list(per_proto), rows, col_width=9, label_width=18))
        return "\n\n".join(sections)


def run_figure6(apps: tuple[str, ...] = APP_ORDER,
                protocols: tuple[str, ...] = PROTOCOL_ORDER,
                config=None, sweep=None) -> Figure6Results:
    config = config or FULL_PLATFORM
    specs = [RunSpec.app_run(app_name, protocol, config)
             for app_name in apps for protocol in protocols]
    cells = iter(run_cells(specs, sweep))
    results = Figure6Results()
    for app_name in apps:
        runs = {protocol: next(cells) for protocol in protocols}
        base = runs[protocols[0]].total_time
        results.breakdown[app_name] = {}
        results.exec_time_s[app_name] = {}
        for protocol, cell in runs.items():
            results.breakdown[app_name][protocol] = {
                b: 100.0 * cell.buckets[b] / base for b in TIME_BUCKETS}
            results.exec_time_s[app_name][protocol] = \
                cell.exec_time_us / 1e6
    return results


if __name__ == "__main__":  # pragma: no cover
    import sys
    apps = tuple(sys.argv[1:]) or APP_ORDER
    print(run_figure6(apps=apps).format())

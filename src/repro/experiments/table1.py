"""Experiment E1/E8 — Table 1 and the Section 3.1 basic operation costs.

Measures, on the simulated platform, the primitive operations the paper
reports: lock acquire, barriers (2 and 32 processors), page transfers
(local/remote), directory updates with and without locking, twin
creation, diff costs, and the Memory Channel's latency and bandwidth.
Costs that are model *inputs* (mprotect, page fault) are reported from
the cost model for completeness; costs that *emerge* from the protocol
machinery (locks, barriers, transfers) are measured end-to-end.

Measured times are scaled back to the paper's 8 Kbyte pages where they
are page-size dependent, so the table is directly comparable to Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.machine import Cluster
from ..config import MachineConfig, PAPER_PAGE_BYTES
from ..protocol import make_protocol
from ..sim.process import Compute, ProcessGroup
from ..stats.report import format_table
from ..sync import Barrier, MCLock
from .configs import EXPERIMENT_PAGE_BYTES


@dataclass
class Table1Results:
    """All measured basic operation costs, in microseconds."""

    lock_acquire: dict[str, float]
    barrier_2p: dict[str, float]
    barrier_32p: dict[str, float]
    page_transfer_local: dict[str, float | None]
    page_transfer_remote: dict[str, float]
    dir_update_lock_free: float
    dir_update_locked: float
    twin_creation_8k: float
    diff_out_remote_8k: tuple[float, float]
    diff_in_8k: tuple[float, float]
    mc_latency: float
    mc_link_bandwidth: float

    def format(self) -> str:
        rows = [
            ("Lock Acquire", [self.lock_acquire["2L"],
                              self.lock_acquire["1LD"]]),
            ("Barrier (2 procs)", [self.barrier_2p["2L"],
                                   self.barrier_2p["1LD"]]),
            ("Barrier (32 procs)", [self.barrier_32p["2L"],
                                    self.barrier_32p["1LD"]]),
            ("Page Transfer (Local)", [self.page_transfer_local["2L"],
                                       self.page_transfer_local["1LD"]]),
            ("Page Transfer (Remote)", [self.page_transfer_remote["2L"],
                                        self.page_transfer_remote["1LD"]]),
        ]
        table = format_table(
            "Table 1: costs of basic operations (us, scaled to 8K pages)",
            ["2L/2LS", "1LD/1L"], rows, col_width=12)
        extra = [
            f"Directory update: {self.dir_update_lock_free:.1f} us "
            f"lock-free, {self.dir_update_locked:.1f} us with global lock",
            f"Twin creation (8K page): {self.twin_creation_8k:.0f} us",
            f"Outgoing diff, remote home (8K): "
            f"{self.diff_out_remote_8k[0]:.0f}-"
            f"{self.diff_out_remote_8k[1]:.0f} us",
            f"Incoming diff (8K): {self.diff_in_8k[0]:.0f}-"
            f"{self.diff_in_8k[1]:.0f} us",
            f"MC write latency: {self.mc_latency:.1f} us; link bandwidth: "
            f"{self.mc_link_bandwidth:.0f} MB/s",
        ]
        return table + "\n" + "\n".join(extra)


def _micro_cluster(protocol: str, nodes: int, ppn: int) -> tuple:
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn,
                        page_bytes=EXPERIMENT_PAGE_BYTES,
                        shared_bytes=EXPERIMENT_PAGE_BYTES * 16,
                        superpage_pages=1)
    cluster = Cluster(cfg)
    proto = make_protocol(protocol, cluster)
    return cfg, cluster, proto


def measure_lock_acquire(protocol: str) -> float:
    """Uncontended lock acquire + release between two processors."""
    cfg, cluster, proto = _micro_cluster(protocol, 2, 2)
    lock = MCLock(cluster, proto, 0)
    proc = cluster.processors[0]
    measured = {}

    def worker():
        start = proc.clock
        yield from lock.acquire(proc)
        lock.release(proc)
        measured["t"] = proc.clock - start

    group = ProcessGroup(cluster.sim)
    group.spawn(proc, worker(), "locker")
    group.run()
    return measured["t"]


def measure_barrier(protocol: str, nodes: int, ppn: int) -> float:
    """Barrier crossing time with simultaneous arrival (mean over procs)."""
    cfg, cluster, proto = _micro_cluster(protocol, nodes, ppn)
    barrier = Barrier(cluster, proto)
    times: list[float] = []

    def worker(proc):
        def gen():
            yield Compute(10.0)  # align everyone
            start = proc.clock
            yield from barrier.wait(proc)
            times.append(proc.clock - start)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), f"p{proc.global_id}")
    group.run()
    return sum(times) / len(times)


def measure_page_transfer(protocol: str, local: bool) -> float | None:
    """Time for a read fault that must fetch the page.

    ``local`` = requester on the same SMP node as the home. Two-level
    protocols have no local transfers (the node shares the frame in
    hardware), so this returns None for them.
    """
    two_level = protocol in ("2L", "2LS")
    if local and two_level:
        return None
    cfg, cluster, proto = _micro_cluster(protocol, 2, 2)
    # Page 1's home owner: owner 1 = node 1 (2L) or processor 1 (1-level).
    page = 1
    if two_level:
        reader = cluster.processors[0]       # node 0: remote
    elif local:
        reader = cluster.processors[0]       # proc 0, same node as proc 1
    else:
        reader = cluster.processors[2]       # node 1... home is proc 1
        # For the one-level protocols, home of page 1 is processor 1 on
        # node 0, so a node-1 processor is remote.
    measured = {}

    def worker():
        yield Compute(1.0)
        start = reader.clock
        proto.load(reader, page, 0)
        measured["t"] = reader.clock - start
        yield Compute(1.0)

    group = ProcessGroup(cluster.sim)
    group.spawn(reader, worker(), "reader")
    group.run()
    # Scale the data-size dependent portion to the paper's 8K pages.
    scale = PAPER_PAGE_BYTES / cfg.page_bytes
    if local:
        move_us = cfg.page_bytes / cfg.costs.node_bus_bandwidth
    else:
        move_us = cfg.page_bytes / cfg.costs.mc_link_bandwidth
    copy_us = cfg.page_copy_cost()
    sized = move_us + 2 * copy_us
    fixed = measured["t"] - sized
    return fixed + scale * sized


def run_table1(sweep=None) -> Table1Results:
    """Measure Table 1 via the sweep engine (one cacheable cell)."""
    from .sweep import RunSpec, run_cells
    return run_cells([RunSpec.table1_run()], sweep)[0].payload


def _measure_table1() -> Table1Results:
    cfg = MachineConfig()
    costs = cfg.costs
    lock = {p: measure_lock_acquire(p) for p in ("2L", "1LD")}
    barrier2 = {p: measure_barrier(p, 2, 1) for p in ("2L", "1LD")}
    barrier32 = {p: measure_barrier(p, 8, 4) for p in ("2L", "1LD")}
    local = {p: measure_page_transfer(p, local=True)
             for p in ("2L", "1LD")}
    remote = {p: measure_page_transfer(p, local=False)
              for p in ("2L", "1LD")}
    return Table1Results(
        lock_acquire=lock,
        barrier_2p=barrier2,
        barrier_32p=barrier32,
        page_transfer_local=local,
        page_transfer_remote=remote,
        dir_update_lock_free=costs.dir_update,
        dir_update_locked=costs.dir_update_locked,
        twin_creation_8k=cfg.twin_cost(),
        diff_out_remote_8k=(costs.diff_out_remote_min,
                            costs.diff_out_remote_max),
        diff_in_8k=(costs.diff_in_min, costs.diff_in_max),
        mc_latency=costs.mc_latency,
        mc_link_bandwidth=costs.mc_link_bandwidth,
    )


#: Paper values for EXPERIMENTS.md comparison.
PAPER_TABLE1 = {
    "lock_acquire": {"2L": 19.0, "1LD": 11.0},
    "barrier_2p": {"2L": 58.0, "1LD": 41.0},
    "barrier_32p": {"2L": 321.0, "1LD": 364.0},
    "page_transfer_local": {"2L": None, "1LD": 467.0},
    "page_transfer_remote": {"2L": 824.0, "1LD": 777.0},
}


if __name__ == "__main__":  # pragma: no cover
    print(run_table1().format())

"""Extension experiment — sensitivity of the two-level advantage to the
computation-to-communication ratio.

The paper repeatedly explains its results through each application's
computation-to-communication ratio: the two-level protocols' advantage is
"slight" for compute-bound applications (SOR, LU, TSP, Water) and large
(22–46%) for communication-bound ones (Em3d, Gauss, Ilink, Barnes). This
experiment makes that explanation quantitative on our platform: it sweeps
a uniform multiplier over an application's compute density (the
``_compute_scale`` runtime knob) and reports how the 1LD/2L and 1L/2L
execution-time ratios collapse toward 1.0 as computation grows.

This is not a paper artifact; it is the kind of ablation DESIGN.md calls
out for validating that the protocol comparison is driven by the
communication structure rather than by tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..stats.report import format_table
from .configs import FULL_PLATFORM
from .sweep import RunSpec, run_cells

DEFAULT_SCALES = (0.25, 1.0, 4.0)


@dataclass
class SensitivityResults:
    #: ratio[app][scale][protocol] = T_protocol / T_2L.
    ratio: dict[str, dict[float, dict[str, float]]] = field(
        default_factory=dict)

    def format(self) -> str:
        sections = []
        for app, per_scale in self.ratio.items():
            scales = sorted(per_scale)
            rows = [
                ("1LD / 2L", [per_scale[s]["1LD"] for s in scales]),
                ("1L / 2L", [per_scale[s]["1L"] for s in scales]),
            ]
            sections.append(format_table(
                f"Sensitivity — {app}: protocol gap vs compute density",
                [f"x{s:g}" for s in scales], rows, col_width=9,
                label_width=12))
        return "\n\n".join(sections)


def run_sensitivity(apps: tuple[str, ...] = ("Em3d",),
                    scales: tuple[float, ...] = DEFAULT_SCALES,
                    config=None, sweep=None) -> SensitivityResults:
    config = config or FULL_PLATFORM
    protocols = ("2L", "1LD", "1L")
    specs = [RunSpec.app_run(app_name, protocol, config,
                             params={"_compute_scale": scale})
             for app_name in apps for scale in scales
             for protocol in protocols]
    cells = iter(run_cells(specs, sweep))
    results = SensitivityResults()
    for app_name in apps:
        results.ratio[app_name] = {}
        for scale in scales:
            times = {p: next(cells).exec_time_us for p in protocols}
            results.ratio[app_name][scale] = {
                p: times[p] / times["2L"] for p in times}
    return results


if __name__ == "__main__":  # pragma: no cover
    import sys
    apps = tuple(sys.argv[1:]) or ("Em3d",)
    print(run_sensitivity(apps=apps).format())

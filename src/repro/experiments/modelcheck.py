"""The ``modelcheck`` subcommand: exhaustive small-config exploration.

Runs :class:`~repro.check.ModelChecker` — every interleaving of the
default 2-node x 2-processor x 2-page script set, through the real
protocol code — for the requested protocols, and reports per-protocol
state counts and the verdict. With ``--mutant`` it instead checks a
deliberately broken protocol (a 2L that never sends write notices) and
*expects* a violation: exit 0 when the checker catches it, exit 1 when
it slips through — a self-test of the checker's teeth. A counterexample
is printed step by step and, with ``--out``, exported as a Chrome trace
for timeline inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..check import MUTANTS, ExplorationResult, ModelChecker

#: Protocols covered by default: the paper's contribution and the
#: one-level comparison point (2LS shares 2L's acquire/release machinery
#: and 1L's write-through path needs no release-time merge, so these two
#: cover the distinct coherence state machines).
DEFAULT_PROTOCOLS = ("2L", "1LD")


@dataclass
class ModelCheckReport:
    """All per-protocol exploration results for one invocation."""

    results: dict[str, ExplorationResult] = field(default_factory=dict)
    mutant: str | None = None

    @property
    def ok(self) -> bool:
        """True when the invocation met its expectation: clean protocols
        explored exhaustively with no violation — or, in mutant mode,
        the planted bug caught."""
        if self.mutant is not None:
            return all(r.counterexample is not None
                       for r in self.results.values())
        return all(r.ok and r.exhaustive for r in self.results.values())

    def to_json(self) -> dict:
        return {
            "mutant": self.mutant,
            "ok": self.ok,
            "results": {name: r.summary()
                        for name, r in self.results.items()},
        }

    def format(self) -> str:
        lines = []
        header = ("Model check (exhaustive small-config exploration)"
                  if self.mutant is None else
                  f"Model check self-test (mutant: {self.mutant})")
        lines.append(header)
        lines.append("=" * len(header))
        for name, r in self.results.items():
            verdict = ("PASS" if r.ok and r.exhaustive else
                       "INCOMPLETE (budget)" if r.ok else "VIOLATION")
            if self.mutant is not None:
                verdict = ("CAUGHT" if r.counterexample is not None
                           else "MISSED")
            lines.append(f"{name:>10}: {verdict}  "
                         f"[{r.states} states, {r.replays} replays, "
                         f"{r.complete_schedules} complete schedules]")
            if r.counterexample is not None:
                lines.append(r.counterexample.describe())
        return "\n".join(lines)


def run_modelcheck(protocols: tuple[str, ...] = DEFAULT_PROTOCOLS, *,
                   budget: int = 100_000, mutant: str | None = None,
                   out: str | None = None) -> ModelCheckReport:
    """Explore each protocol (or the named mutant) exhaustively.

    ``budget`` caps the distinct-state count per protocol. ``out``
    writes the first counterexample found (if any) as a Chrome trace.
    """
    report = ModelCheckReport(mutant=mutant)
    if mutant is not None:
        factory = MUTANTS[mutant]
        checker = ModelChecker(protocol=factory, max_states=budget)
        report.results[f"2L+{mutant}"] = checker.run()
    else:
        for name in protocols:
            checker = ModelChecker(protocol=name, max_states=budget)
            report.results[name] = checker.run()
    if out is not None:
        for name, r in report.results.items():
            if r.counterexample is not None:
                checker = ModelChecker(
                    protocol=MUTANTS[mutant] if mutant is not None
                    else name, max_states=budget)
                checker.export_counterexample(r.counterexample, out)
                break
    return report

"""Experiment E5 — Figure 7: speedups across placements.

For every application and protocol, runs the paper's placement ladder
(4:1, 4:4, 8:1, 8:2, 8:4, 16:2, 16:4, 24:3, 32:4 — "processors :
processors-per-node") and reports the speedup over the uninstrumented
sequential execution. For the one-level protocols the home-node
optimization variant is run as well (the unshaded bar extensions in the
paper's Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..stats.report import format_table
from .configs import (APP_ORDER, FULL_PLATFORM, PLACEMENT_ORDER,
                      PROTOCOL_ORDER, experiment_config)
from .sweep import RunSpec, run_cells


@dataclass
class Figure7Results:
    #: speedup[app][protocol][placement]; protocol keys include
    #: "1LD+HO"/"1L+HO" for the home-node optimization variants.
    speedup: dict[str, dict[str, dict[str, float]]] = \
        field(default_factory=dict)
    seq_time_s: dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        sections = []
        for app, per_proto in self.speedup.items():
            placements = None
            rows = []
            for proto, per_place in per_proto.items():
                placements = list(per_place)
                rows.append((proto, [per_place[p] for p in placements]))
            sections.append(format_table(
                f"Figure 7 — {app} speedups "
                f"(sequential: {self.seq_time_s[app]:.2f}s)",
                placements or [], rows, col_width=8, label_width=10))
        return "\n\n".join(sections)


def _variants(protocols: tuple[str, ...],
              home_opt: bool) -> list[tuple[str, str, bool]]:
    variants: list[tuple[str, str, bool]] = [
        (p, p, False) for p in protocols]
    if home_opt:
        variants += [(f"{p}+HO", p, True)
                     for p in protocols if p in ("1LD", "1L")]
    return variants


def run_figure7(apps: tuple[str, ...] = APP_ORDER,
                protocols: tuple[str, ...] = PROTOCOL_ORDER,
                placements: tuple[str, ...] = PLACEMENT_ORDER,
                home_opt: bool = True, sweep=None) -> Figure7Results:
    variants = _variants(protocols, home_opt)
    specs = []
    for app_name in apps:
        specs.append(RunSpec.seq_run(app_name, FULL_PLATFORM))
        for label, protocol, ho in variants:
            for placement in placements:
                specs.append(RunSpec.app_run(
                    app_name, protocol, experiment_config(placement),
                    home_opt=ho))
    cells = iter(run_cells(specs, sweep))
    results = Figure7Results()
    for app_name in apps:
        seq_us = next(cells).exec_time_us
        results.seq_time_s[app_name] = seq_us / 1e6
        per_proto: dict[str, dict[str, float]] = {}
        for label, protocol, ho in variants:
            per_proto[label] = {
                placement: seq_us / next(cells).exec_time_us
                for placement in placements}
        results.speedup[app_name] = per_proto
    return results


if __name__ == "__main__":  # pragma: no cover
    import sys
    args = sys.argv[1:]
    apps = tuple(a for a in args if a in APP_ORDER) or APP_ORDER
    quick = "--quick" in args
    placements = ("4:1", "8:4", "32:4") if quick else PLACEMENT_ORDER
    print(run_figure7(apps=apps, placements=placements).format())

"""Experiment E6 — Section 3.3.4: TLB shootdown versus two-way diffing.

Compares Cashmere-2L (two-way diffing) against Cashmere-2LS (shootdown)
at 32 processors, with the shootdown mechanism implemented over polled
messages and over intra-node interrupts. The paper's findings to
reproduce:

* 2L ≈ 2LS with polling (shootdown is rare under a multi-writer protocol
  and cheap with polled messages);
* interrupt-based shootdown costs Water — the lock-based false-sharing
  application — about 6% (even with the kernel-optimized 80 us
  interrupts);
* shootdown counts are non-zero essentially only for Water.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..stats.report import format_table, pct_change
from .configs import FULL_PLATFORM
from .sweep import RunSpec, run_cells


@dataclass
class ShootdownResults:
    #: exec_time_s[app][variant]; variants: 2L, 2LS-poll, 2LS-intr.
    exec_time_s: dict[str, dict[str, float]] = field(default_factory=dict)
    shootdowns: dict[str, dict[str, int]] = field(default_factory=dict)

    def format(self) -> str:
        apps = list(self.exec_time_s)
        variants = ["2L", "2LS-poll", "2LS-intr"]
        rows = []
        for v in variants:
            rows.append((f"exec time (s) {v}",
                         [self.exec_time_s[a][v] for a in apps]))
        rows.append(("2LS-poll vs 2L (%)",
                     [pct_change(self.exec_time_s[a]["2LS-poll"],
                                 self.exec_time_s[a]["2L"]) for a in apps]))
        rows.append(("2LS-intr vs 2L (%)",
                     [pct_change(self.exec_time_s[a]["2LS-intr"],
                                 self.exec_time_s[a]["2L"]) for a in apps]))
        rows.append(("shootdowns (poll)",
                     [self.shootdowns[a]["2LS-poll"] for a in apps]))
        return format_table(
            "Section 3.3.4 — shootdown vs two-way diffing at 32 processors",
            apps, rows, col_width=10, label_width=24)


def run_shootdown_ablation(
        apps: tuple[str, ...] = ("Water", "SOR", "Em3d"),
        sweep=None) -> ShootdownResults:
    results = ShootdownResults()
    interrupt_cfg = replace(FULL_PLATFORM, polling=False)
    variants = (("2L", "2L", FULL_PLATFORM),
                ("2LS-poll", "2LS", FULL_PLATFORM),
                ("2LS-intr", "2LS", interrupt_cfg))
    specs = [RunSpec.app_run(app_name, protocol, cfg)
             for app_name in apps for _, protocol, cfg in variants]
    cells = iter(run_cells(specs, sweep))
    for app_name in apps:
        runs = {label: next(cells) for label, _, _ in variants}
        results.exec_time_s[app_name] = {
            k: c.table3["exec_time_s"] for k, c in runs.items()}
        results.shootdowns[app_name] = {
            k: int(c.table3["shootdowns"]) for k, c in runs.items()}
    return results


if __name__ == "__main__":  # pragma: no cover
    print(run_shootdown_ablation().format())

"""Wall-clock benchmark harness: the repo's performance trajectory.

Unlike every other experiment (which reports *simulated* time), ``bench``
measures how long the simulator itself takes to run — the number the
fast-path work optimizes. Four microbenchmarks plus two full application
runs:

``access``
    Warm-path ``get``/``set``/``get_block``/``set_block`` through a real
    :class:`~repro.runtime.env.WorkerEnv` (no faults after warmup): the
    inline page-access cache's home turf.
``fault_storm``
    Rounds of page faults: every round each processor writes a page it
    has never touched, so every access takes the full protocol path.
``barrier``
    Barrier episodes with no data access: synchronization machinery only.
``sor32`` / ``water32``
    Full 32-processor (8 nodes x 4) runs under 2L with default problem
    sizes; also reports simulated-us per wall-second (simulator
    throughput).
``sweep_serial`` / ``sweep_parallel`` / ``sweep_warm``
    The sweep engine (:mod:`repro.experiments.sweep`) over a
    figure7-style grid of cells: cold serial, cold on a process pool
    (``jobs = min(4, cores)`` — recorded in the report; no speedup is
    expected on a single-core host), and cache-warm (every cell served
    from a pre-populated content-addressed cache, zero simulations).

Methodology: each benchmark is run ``reps`` times after one untimed
warmup with the garbage collector disabled around the timed region, and
the *best* wall time is reported — the minimum is the stable statistic on
a machine with background load. Results can be written as a
``BENCH_*.json`` and compared against a committed baseline
(``benchmarks/perf/baseline.json``); the access microbenchmark gates CI
at a 2x regression (headroom for runner speed variance).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import MachineConfig
from ..apps import make_app
from ..cluster.machine import Cluster
from ..protocol import make_protocol
from ..runtime.api import fastpath_enabled
from ..runtime.env import WorkerEnv
from ..runtime.program import ParallelRuntime, run_app
from ..sim.process import Charge, ProcessGroup
from ..sync.barrier import Barrier

#: Schema tag written into every BENCH_*.json. Bumped to 2 when the
#: report gained ``fastpath``/``jobs`` environment provenance and the
#: cache-warm sweep's hit/miss counts; the metrics store
#: (:mod:`repro.metrics.store`) ingests both schemas.
SCHEMA = "cashmere-bench-2"

#: CI regression gate: fail when the access microbenchmark is more than
#: this factor slower than the committed baseline.
ACCESS_REGRESSION_FACTOR = 2.0


@dataclass
class BenchResult:
    """One benchmark's timing."""

    name: str
    wall_s: float               # best rep
    reps: int
    sim_us: float | None = None  # simulated time, for full runs
    #: Free-form provenance (e.g. the sweep benches record jobs/cells).
    extra: dict | None = None

    @property
    def sim_us_per_wall_s(self) -> float | None:
        if self.sim_us is None or self.wall_s <= 0:
            return None
        return self.sim_us / self.wall_s


@dataclass
class BenchReport:
    """All benchmark results plus environment provenance."""

    results: list[BenchResult] = field(default_factory=list)
    quick: bool = False
    baseline: dict | None = None
    baseline_path: str | None = None

    def result(self, name: str) -> BenchResult | None:
        for r in self.results:
            if r.name == name:
                return r
        return None

    def to_json(self) -> dict:
        benchmarks = {}
        for r in self.results:
            entry: dict = {"wall_s": r.wall_s, "reps": r.reps}
            if r.sim_us is not None:
                entry["sim_us"] = r.sim_us
                entry["sim_us_per_wall_s"] = r.sim_us_per_wall_s
            if r.extra:
                entry.update(r.extra)
            benchmarks[r.name] = entry
        out = {
            "schema": SCHEMA,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": self.quick,
            # Schema 2: the two environment knobs that change what the
            # timed code actually executes.
            "fastpath": fastpath_enabled(MachineConfig()),
            "jobs": os.environ.get("CASHMERE_JOBS") or None,
            "benchmarks": benchmarks,
        }
        if self.baseline is not None:
            out["baseline"] = self.baseline
            if self.baseline_path:
                out["baseline_path"] = self.baseline_path
            speedups = {}
            base_benches = self.baseline.get("benchmarks", {})
            for r in self.results:
                base = base_benches.get(r.name, {}).get("wall_s")
                if base and r.wall_s > 0:
                    speedups[r.name] = base / r.wall_s
            out["speedup_vs_baseline"] = speedups
        return out

    def format(self) -> str:
        lines = ["Wall-clock benchmarks (best of reps, gc off)",
                 "--------------------------------------------"]
        base_benches = (self.baseline or {}).get("benchmarks", {})
        for r in self.results:
            line = f"{r.name:14s} {r.wall_s * 1e3:9.1f} ms"
            if r.sim_us is not None:
                line += f"  ({r.sim_us_per_wall_s / 1e6:6.2f} sim-s/wall-s)"
            if r.extra:
                line += "  (" + ", ".join(
                    f"{k}={v}" for k, v in r.extra.items()) + ")"
            base = base_benches.get(r.name, {}).get("wall_s")
            if base and r.wall_s > 0:
                line += f"  [{base / r.wall_s:4.2f}x vs baseline]"
            lines.append(line)
        return "\n".join(lines)

    def check_regression(self) -> str | None:
        """CI gate: None when healthy, else a failure message."""
        # Host-independent sweep-cache gate: a cache-warm sweep executes
        # zero simulations, so it must beat the cold serial sweep by a
        # wide margin on any machine. 2x is deliberately loose (the real
        # ratio is >10x); tripping it means the cache is not serving.
        warm = self.result("sweep_warm")
        serial = self.result("sweep_serial")
        if warm is not None and serial is not None and \
                warm.wall_s >= 0.5 * serial.wall_s:
            return (f"sweep cache-warm run not faster than cold serial: "
                    f"{warm.wall_s:.4f}s warm vs {serial.wall_s:.4f}s "
                    f"serial (expected < 0.5x) — result cache is not "
                    f"serving hits")
        if self.baseline is None:
            return None
        access = self.result("access")
        base = self.baseline.get("benchmarks", {}).get("access",
                                                       {}).get("wall_s")
        if access is None or not base:
            return None
        if access.wall_s > ACCESS_REGRESSION_FACTOR * base:
            return (f"access microbenchmark regressed: {access.wall_s:.4f}s "
                    f"vs baseline {base:.4f}s "
                    f"(> {ACCESS_REGRESSION_FACTOR}x)")
        return None


def _best_of(fn, reps: int) -> float:
    """Best wall time of ``reps`` calls after one untimed warmup."""
    fn()  # warmup (imports, allocator, caches)
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


# --- microbenchmarks ----------------------------------------------------------


def bench_access(ops: int = 200_000) -> None:
    """Warm get/set/get_block/set_block through a real WorkerEnv."""
    app = make_app("SOR")
    params = app.small_params()
    rt = ParallelRuntime(app, params, MachineConfig(nodes=1,
                                                    procs_per_node=1), "2L")
    rt.protocol.end_initialization()
    env = WorkerEnv(rt, rt.cluster.processors[0])
    arr = rt.segment.array("red")
    vals = np.arange(16.0)
    # Touch once so the remaining iterations are all warm.
    env.set(arr, 0, 1.0)
    env.get(arr, 0)
    for i in range(ops // 4):
        env.set(arr, i % 64, 1.0)
        env.get(arr, i % 64)
        env.set_block(arr, 0, vals)
        env.get_block(arr, 0, 16)


def bench_fault_storm(rounds: int = 12, nodes: int = 2, ppn: int = 2,
                      pages: int = 24) -> None:
    """Every round, every processor writes a page it has never touched."""
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * (pages + 1))
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()
    nprocs = cluster.num_procs
    wpp = cfg.words_per_page

    def worker(proc):
        def gen():
            rank = proc.global_id
            for rnd in range(rounds):
                page = (rank + rnd * nprocs) % pages
                for off in (0, wpp // 2, wpp - 1):
                    proto.store(proc, page, off, float(rnd + 1))
                    _ = proto.load(proc, page, off)
                yield Charge(1.0, "user")
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), name=f"storm:p{proc.global_id}")
    group.run()


def bench_barrier(episodes: int = 300, nodes: int = 4, ppn: int = 2) -> None:
    """Barrier episodes with no shared-data access."""
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn)
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()

    def worker(proc):
        def gen():
            for _ in range(episodes):
                yield Charge(1.0, "user")
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), name=f"bar:p{proc.global_id}")
    group.run()


def _full_run(app_name: str, small: bool = False) -> float:
    """One full 8x4 run under 2L; returns the simulated time (us)."""
    app = make_app(app_name)
    params = app.small_params() if small else app.default_params()
    config = MachineConfig(nodes=8, procs_per_node=4)
    result = run_app(app, params, config, "2L")
    return result.exec_time_us


def _sweep_specs(quick: bool) -> list:
    """A figure7-style grid of independent cells for the sweep benches."""
    from .configs import experiment_config
    from .sweep import RunSpec
    apps = ("SOR", "Em3d") if quick else ("SOR", "Em3d", "Barnes", "Water")
    protocols = ("2L", "1LD") if quick else ("2L", "2LS", "1LD", "1L")
    placements = ("4:1", "8:4") if quick else ("4:1", "8:4", "32:4")
    return [RunSpec.app_run(a, p, experiment_config(pl))
            for a in apps for p in protocols for pl in placements]


def bench_sweep(quick: bool = False) -> list[BenchResult]:
    """Serial vs process-pool vs cache-warm wall clock over one grid.

    The cold passes are timed once (re-running them cold would mean
    re-simulating the whole grid per rep); the warm pass is best-of-3
    since cache hits are cheap. The pool size is recorded in ``extra``
    — on a single-core host the parallel pass degenerates to serial and
    shows no speedup, by design.
    """
    from .sweep import ResultCache, Sweep, run_cells
    specs = _sweep_specs(quick)
    jobs = min(4, os.cpu_count() or 1)
    extra = {"cells": len(specs), "cores": os.cpu_count() or 1}
    results = []
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        run_cells(specs, Sweep(jobs=1))
        results.append(BenchResult("sweep_serial",
                                   time.perf_counter() - t0, 1,
                                   extra=dict(extra, jobs=1)))
        t0 = time.perf_counter()
        run_cells(specs, Sweep(jobs=jobs))
        results.append(BenchResult("sweep_parallel",
                                   time.perf_counter() - t0, 1,
                                   extra=dict(extra, jobs=jobs)))
    finally:
        gc.enable()
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(root=tmp)
        run_cells(specs, Sweep(jobs=1, cache=cache))  # populate
        warm = Sweep(jobs=1, cache=cache)
        wall = _best_of(lambda: run_cells(specs, warm), 3)
        results.append(BenchResult(
            "sweep_warm", wall, 3,
            extra=dict(extra, jobs=1, executed=warm.stats.executed,
                       hits=warm.stats.hits, misses=warm.stats.misses)))
    return results


# --- driver -------------------------------------------------------------------


def load_baseline(path: str) -> dict | None:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def run_bench(quick: bool = False, baseline_path: str | None = None,
              progress=None) -> BenchReport:
    """Run the benchmark suite; ``quick`` shrinks reps and problem sizes."""
    report = BenchReport(quick=quick)
    if baseline_path:
        report.baseline = load_baseline(baseline_path)
        report.baseline_path = baseline_path
    reps = 2 if quick else 3

    def note(name):
        if progress is not None:
            progress(name)

    note("access")
    ops = 50_000 if quick else 200_000
    report.results.append(BenchResult(
        "access", _best_of(lambda: bench_access(ops), reps), reps))

    note("fault_storm")
    rounds = 6 if quick else 12
    report.results.append(BenchResult(
        "fault_storm", _best_of(lambda: bench_fault_storm(rounds), reps),
        reps))

    note("barrier")
    episodes = 100 if quick else 300
    report.results.append(BenchResult(
        "barrier", _best_of(lambda: bench_barrier(episodes), reps), reps))

    note("sor32")
    sim_us = [0.0]

    def sor_run():
        sim_us[0] = _full_run("SOR", small=quick)
    report.results.append(BenchResult(
        "sor32", _best_of(sor_run, reps), reps, sim_us=sim_us[0]))

    note("water32")
    wat_us = [0.0]

    def water_run():
        wat_us[0] = _full_run("Water", small=quick)
    report.results.append(BenchResult(
        "water32", _best_of(water_run, reps), reps, sim_us=wat_us[0]))

    note("sweep")
    report.results.extend(bench_sweep(quick))

    return report

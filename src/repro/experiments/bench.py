"""Wall-clock benchmark harness: the repo's performance trajectory.

Unlike every other experiment (which reports *simulated* time), ``bench``
measures how long the simulator itself takes to run — the number the
fast-path work optimizes. Four microbenchmarks plus two full application
runs:

``access``
    Warm-path ``get``/``set``/``get_block``/``set_block`` through a real
    :class:`~repro.runtime.env.WorkerEnv` (no faults after warmup): the
    inline page-access cache's home turf.
``fault_storm``
    Rounds of page faults: every round each processor writes a page it
    has never touched, so every access takes the full protocol path.
``barrier``
    Barrier episodes with no data access: synchronization machinery only.
``directory``
    Directory entry operations (permission updates, sharer scans,
    occupancy) at 8, 64, and 512 owners: the sparse O(sharers) entries'
    per-access cost must stay near-flat in cluster size (the
    ``flatness`` ratio gates CI, see
    :data:`DIRECTORY_FLATNESS_FACTOR`); the dense O(num_owners) form is
    timed once at 512 owners for reference.
``sor32`` / ``water32``
    Full 32-processor (8 nodes x 4) runs under 2L with default problem
    sizes; also reports simulated-us per wall-second (simulator
    throughput).
``sor_band_lowered`` / ``sor_band_interp``
    The kernel-lowering pipeline's home turf (DESIGN.md §14): a
    single-processor SOR band run with lowering on vs forced per-step
    interpretation. A solo processor never trips the batched executor's
    event-horizon check, so whole half-sweeps collapse into single
    events — this pair carries the host-independent >=2x ratio gate.
    (The 32-processor runs are lockstep-contended: every step, another
    processor's event is due, so batches degenerate to one step and
    lowering adaptively falls back — which is why the gate lives here
    and not on ``sor32``.) The lowered rep is also diffed against the
    interpreted rep — stats and result bytes — as a CI parity check.
``sweep_serial`` / ``sweep_parallel`` / ``sweep_warm``
    The sweep engine (:mod:`repro.experiments.sweep`) over a
    figure7-style grid of cells: cold serial, cold on a process pool
    (``jobs = min(2, cores)``; ``cores``, ``jobs``, and the honest
    measured ``speedup`` are recorded — on a single-core host the pool
    degenerates to serial-plus-overhead and the speedup reads < 1),
    and cache-warm (every cell served from a pre-populated
    content-addressed cache, zero simulations).

Methodology: each benchmark is run ``reps`` times after one untimed
warmup with the garbage collector disabled around the timed region, and
the *best* wall time is reported — the minimum is the stable statistic on
a machine with background load. Every benchmark also records the
simulated time it covered (``sim_us``) and the derived simulator
throughput (``sim_us_per_wall_s``); for ``access`` the simulated time is
honestly ~0 — warm accesses charge nothing, that is the point of the
fast path. Results can be written as a ``BENCH_*.json`` and compared
against a committed baseline (``benchmarks/perf/baseline.json``); the
access microbenchmark gates CI at a 2x regression (headroom for runner
speed variance). ``--profile`` additionally runs one rep of each
single-process benchmark under :mod:`cProfile` and reports the top
functions by cumulative time.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..config import MachineConfig
from ..apps import make_app
from ..cluster.machine import Cluster
from ..protocol import make_protocol
from ..protocol.directory import GlobalDirectory
from ..vm.page import Perm
from ..runtime.api import fastpath_enabled, lowering_enabled
from ..runtime.env import WorkerEnv
from ..runtime.program import ParallelRuntime, run_app
from ..sim.process import Charge, ProcessGroup
from ..sync.barrier import Barrier

#: Schema tag written into every BENCH_*.json. Bumped to 2 when the
#: report gained ``fastpath``/``jobs`` environment provenance and the
#: cache-warm sweep's hit/miss counts; bumped to 3 when every
#: microbenchmark gained ``sim_us``/``sim_us_per_wall_s``, the sweep
#: benches an honest measured ``speedup``, and the report the
#: ``lowering`` provenance flag plus the ``sor_band_*`` lowering pair.
#: The metrics store (:mod:`repro.metrics.store`) ingests all three.
SCHEMA = "cashmere-bench-3"

#: CI regression gate: fail when the access microbenchmark is more than
#: this factor slower than the committed baseline.
ACCESS_REGRESSION_FACTOR = 2.0

#: Host-independent directory-scaling gate: sparse O(sharers) entries
#: must keep the per-update cost at 512 owners within this factor of
#: the 8-owner cost (measured ≈1x — the sparse form never touches a
#: num_owners-sized structure; the dense form reads ~40x here).
DIRECTORY_FLATNESS_FACTOR = 3.0


def report_stamp() -> str:
    """Wall-time stamp for ``BENCH_*.json`` provenance. Lives here (a
    sanctioned real-time module, see D101) so other report writers —
    e.g. the scale family — never read the clock themselves."""
    return time.strftime("%Y-%m-%dT%H:%M:%S")

#: CI lowering gate: the lowered solo SOR band run must beat the
#: interpreted one by at least this wall-clock factor. Host-independent
#: (both runs execute in the same process on the same host, and the
#: ratio — measured ≈4x — has wide headroom) and byte-identity is
#: asserted separately, so a trip means the batched executor stopped
#: batching, not that the runner is slow.
LOWERING_SPEEDUP_FACTOR = 2.0


@dataclass
class BenchResult:
    """One benchmark's timing."""

    name: str
    wall_s: float               # best rep
    reps: int
    sim_us: float | None = None  # simulated time, for full runs
    #: Free-form provenance (e.g. the sweep benches record jobs/cells).
    extra: dict | None = None

    @property
    def sim_us_per_wall_s(self) -> float | None:
        if self.sim_us is None or self.wall_s <= 0:
            return None
        return self.sim_us / self.wall_s


@dataclass
class BenchReport:
    """All benchmark results plus environment provenance."""

    results: list[BenchResult] = field(default_factory=list)
    quick: bool = False
    baseline: dict | None = None
    baseline_path: str | None = None
    #: ``--profile``: top functions by cumulative time over one rep of
    #: each single-process benchmark (list of row dicts), else None.
    profile: list[dict] | None = None

    def result(self, name: str) -> BenchResult | None:
        for r in self.results:
            if r.name == name:
                return r
        return None

    def to_json(self) -> dict:
        benchmarks = {}
        for r in self.results:
            entry: dict = {"wall_s": r.wall_s, "reps": r.reps}
            if r.sim_us is not None:
                entry["sim_us"] = r.sim_us
                entry["sim_us_per_wall_s"] = r.sim_us_per_wall_s
            if r.extra:
                entry.update(r.extra)
            benchmarks[r.name] = entry
        out = {
            "schema": SCHEMA,
            "timestamp": report_stamp(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": self.quick,
            # Schema 2/3: the environment knobs that change what the
            # timed code actually executes.
            "fastpath": fastpath_enabled(MachineConfig()),
            "lowering": lowering_enabled(MachineConfig()),
            "jobs": os.environ.get("CASHMERE_JOBS") or None,
            "benchmarks": benchmarks,
        }
        if self.profile is not None:
            out["profile"] = self.profile
        if self.baseline is not None:
            out["baseline"] = self.baseline
            if self.baseline_path:
                out["baseline_path"] = self.baseline_path
            speedups = {}
            base_benches = self.baseline.get("benchmarks", {})
            for r in self.results:
                base = base_benches.get(r.name, {}).get("wall_s")
                if base and r.wall_s > 0:
                    speedups[r.name] = base / r.wall_s
            out["speedup_vs_baseline"] = speedups
        return out

    def format(self) -> str:
        lines = ["Wall-clock benchmarks (best of reps, gc off)",
                 "--------------------------------------------"]
        base_benches = (self.baseline or {}).get("benchmarks", {})
        for r in self.results:
            line = f"{r.name:14s} {r.wall_s * 1e3:9.1f} ms"
            if r.sim_us is not None:
                line += f"  ({r.sim_us_per_wall_s / 1e6:6.2f} sim-s/wall-s)"
            if r.extra:
                line += "  (" + ", ".join(
                    f"{k}={v}" for k, v in r.extra.items()) + ")"
            base = base_benches.get(r.name, {}).get("wall_s")
            if base and r.wall_s > 0:
                line += f"  [{base / r.wall_s:4.2f}x vs baseline]"
            lines.append(line)
        return "\n".join(lines)

    def format_profile(self) -> str:
        rows = self.profile or []
        lines = [f"cProfile, one rep per benchmark — top {len(rows)} by "
                 f"cumulative time",
                 f"{'ncalls':>10s} {'tottime':>9s} {'cumtime':>9s}  function"]
        for row in rows:
            lines.append(f"{row['ncalls']:>10d} {row['tottime_s']:>8.3f}s "
                         f"{row['cumtime_s']:>8.3f}s  {row['function']}")
        return "\n".join(lines)

    def check_regression(self) -> str | None:
        """CI gate: None when healthy, else a failure message."""
        # Host-independent sweep-cache gate: a cache-warm sweep executes
        # zero simulations, so it must beat the cold serial sweep by a
        # wide margin on any machine. 2x is deliberately loose (the real
        # ratio is >10x); tripping it means the cache is not serving.
        warm = self.result("sweep_warm")
        serial = self.result("sweep_serial")
        if warm is not None and serial is not None and \
                warm.wall_s >= 0.5 * serial.wall_s:
            return (f"sweep cache-warm run not faster than cold serial: "
                    f"{warm.wall_s:.4f}s warm vs {serial.wall_s:.4f}s "
                    f"serial (expected < 0.5x) — result cache is not "
                    f"serving hits")
        # Host-independent lowering gates (see LOWERING_SPEEDUP_FACTOR):
        # parity is mandatory, and the solo-band lowered run must beat
        # the interpreted one by the configured ratio.
        lowered = self.result("sor_band_lowered")
        interp = self.result("sor_band_interp")
        if lowered is not None and lowered.extra:
            for key in ("parity", "parity_sor32"):
                verdict = lowered.extra.get(key)
                if verdict is not None and verdict != "ok":
                    return (f"lowering {key} check failed: lowered and "
                            f"interpreted runs diverged ({verdict}) — "
                            f"the batched executor is not byte-identical")
        if lowered is not None and interp is not None and \
                lowered.wall_s > 0 and \
                interp.wall_s < LOWERING_SPEEDUP_FACTOR * lowered.wall_s:
            return (f"kernel lowering not paying off: lowered solo SOR "
                    f"band {lowered.wall_s:.4f}s vs interpreted "
                    f"{interp.wall_s:.4f}s "
                    f"(expected >= {LOWERING_SPEEDUP_FACTOR}x speedup) — "
                    f"the batched executor is not batching")
        # Host-independent directory-scaling gate: both owner counts run
        # in the same process, only their ratio gates (measured ≈1x).
        directory = self.result("directory")
        if directory is not None and directory.extra:
            flatness = directory.extra.get("flatness")
            if flatness is not None and \
                    flatness > DIRECTORY_FLATNESS_FACTOR:
                return (f"directory per-access cost not flat in cluster "
                        f"size: 512-owner ops cost {flatness}x the "
                        f"8-owner ops (expected <= "
                        f"{DIRECTORY_FLATNESS_FACTOR}x) — the sparse "
                        f"entries are scanning owner-sized state")
        if self.baseline is None:
            return None
        access = self.result("access")
        base = self.baseline.get("benchmarks", {}).get("access",
                                                       {}).get("wall_s")
        if access is None or not base:
            return None
        if access.wall_s > ACCESS_REGRESSION_FACTOR * base:
            return (f"access microbenchmark regressed: {access.wall_s:.4f}s "
                    f"vs baseline {base:.4f}s "
                    f"(> {ACCESS_REGRESSION_FACTOR}x)")
        return None


def _best_of(fn, reps: int) -> float:
    """Best wall time of ``reps`` calls after one untimed warmup."""
    fn()  # warmup (imports, allocator, caches)
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


# --- microbenchmarks ----------------------------------------------------------


def bench_access(ops: int = 200_000) -> float:
    """Warm get/set/get_block/set_block through a real WorkerEnv.

    Returns the simulated time covered — honestly ~0: after the first
    touch every access is warm, and a warm access charges nothing (that
    is the fast path's contract). The throughput column for this bench
    is therefore meaningless by design; the wall clock is the number.
    """
    app = make_app("SOR")
    params = app.small_params()
    rt = ParallelRuntime(app, params, MachineConfig(nodes=1,
                                                    procs_per_node=1), "2L")
    rt.protocol.end_initialization()
    env = WorkerEnv(rt, rt.cluster.processors[0])
    proc = rt.cluster.processors[0]
    arr = rt.segment.array("red")
    vals = np.arange(16.0)
    # Touch once so the remaining iterations are all warm.
    env.set(arr, 0, 1.0)
    env.get(arr, 0)
    for i in range(ops // 4):
        env.set(arr, i % 64, 1.0)
        env.get(arr, i % 64)
        env.set_block(arr, 0, vals)
        env.get_block(arr, 0, 16)
    return proc.clock


def _directory_ops(num_owners: int, pages: int, ops: int,
                   dense: bool = False) -> None:
    """Exercise the directory entry operations one coherence
    transition performs: permission reads and writes, sharer scans,
    exclusive-holder queries, and the occupancy sweep.

    The op mix touches at most 4 sharers per page regardless of
    ``num_owners`` — the realistic regime (Table 3's applications
    average ~2) where the sparse entries' O(sharers) bound means the
    cost must not grow with the owner count."""
    cfg = MachineConfig(nodes=2, procs_per_node=2, page_bytes=512,
                        shared_bytes=512 * pages)
    directory = GlobalDirectory(cfg, num_owners, dense=dense)
    sharers = min(4, num_owners)
    for i in range(ops):
        entry = directory.entry(i % pages)
        owner = (i * 7) % sharers
        entry.set_perm(owner, Perm.READ if i & 1 else Perm.WRITE)
        entry.perm_of(owner)
        entry.sharers()
        entry.has_other_sharer(owner)
        entry.exclusive_holder()
        if i & 7 == 0:
            entry.set_perm(owner, Perm.INVALID)
    directory.occupancy()


def bench_directory(reps: int, quick: bool = False) -> BenchResult:
    """Directory metadata cost vs cluster size: the sparse-entry bench.

    Runs the same op mix at 8, 64, and 512 owners and reports the
    per-op cost of each; the ``flatness`` ratio (512-owner cost over
    8-owner cost) carries the CI gate — sparse entries never touch a
    ``num_owners``-sized structure on the access path, so the ratio
    must stay near 1 on any host (see
    :data:`DIRECTORY_FLATNESS_FACTOR`). A single dense-form rep at 512
    owners is timed alongside for the report (the O(num_owners)
    reference the sparse form replaces)."""
    pages = 64
    ops = 20_000 if quick else 80_000
    per_op_us = {}
    wall_512 = 0.0
    for owners in (8, 64, 512):
        wall = _best_of(lambda: _directory_ops(owners, pages, ops), reps)
        per_op_us[owners] = wall * 1e6 / ops
        if owners == 512:
            wall_512 = wall
    dense_wall = _best_of(
        lambda: _directory_ops(512, pages, ops, dense=True), 1)
    return BenchResult(
        "directory", wall_512, reps,
        extra={"ops": ops,
               "per_op_us_8": round(per_op_us[8], 4),
               "per_op_us_64": round(per_op_us[64], 4),
               "per_op_us_512": round(per_op_us[512], 4),
               "flatness": round(per_op_us[512] / per_op_us[8], 2),
               "dense_per_op_us_512": round(dense_wall * 1e6 / ops, 4)})


def bench_fault_storm(rounds: int = 12, nodes: int = 2, ppn: int = 2,
                      pages: int = 24) -> float:
    """Every round, every processor writes a page it has never touched.

    Returns the simulated time the storm covered (faults and barriers
    both charge), so the report can state the simulator's throughput on
    an all-cold-path workload."""
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn, page_bytes=512,
                        shared_bytes=512 * (pages + 1))
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()
    nprocs = cluster.num_procs
    wpp = cfg.words_per_page

    def worker(proc):
        def gen():
            rank = proc.global_id
            for rnd in range(rounds):
                page = (rank + rnd * nprocs) % pages
                for off in (0, wpp // 2, wpp - 1):
                    proto.store(proc, page, off, float(rnd + 1))
                    _ = proto.load(proc, page, off)
                yield Charge(1.0, "user")
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), name=f"storm:p{proc.global_id}")
    group.run()
    return max(proc.clock for proc in cluster.processors)


def bench_barrier(episodes: int = 300, nodes: int = 4, ppn: int = 2) -> float:
    """Barrier episodes with no shared-data access; returns the
    simulated time the episodes covered."""
    cfg = MachineConfig(nodes=nodes, procs_per_node=ppn)
    cluster = Cluster(cfg)
    proto = make_protocol("2L", cluster)
    barrier = Barrier(cluster, proto)
    proto.end_initialization()

    def worker(proc):
        def gen():
            for _ in range(episodes):
                yield Charge(1.0, "user")
                yield from barrier.wait(proc)
        return gen()

    group = ProcessGroup(cluster.sim)
    for proc in cluster.processors:
        group.spawn(proc, worker(proc), name=f"bar:p{proc.global_id}")
    group.run()
    return max(proc.clock for proc in cluster.processors)


def _full_run(app_name: str, small: bool = False) -> float:
    """One full 8x4 run under 2L; returns the simulated time (us)."""
    app = make_app(app_name)
    params = app.small_params() if small else app.default_params()
    config = MachineConfig(nodes=8, procs_per_node=4)
    result = run_app(app, params, config, "2L")
    return result.exec_time_us


def _run_fingerprint(result, app, params) -> tuple:
    """Stats + result bytes, for the lowering parity check."""
    stats = result.stats
    return (
        stats.exec_time_us,
        dict(stats.aggregate.counters),
        dict(stats.aggregate.buckets),
        stats.mc_traffic_bytes,
        [(dict(ps.counters), dict(ps.buckets)) for ps in stats.per_proc],
        {name: result.array(name).tobytes()
         for name in app.result_arrays(params)},
    )


def bench_lowering(reps: int, quick: bool = False) -> list[BenchResult]:
    """Lowered vs interpreted SOR: the kernel-lowering pipeline's bench.

    Times a single-processor band run both ways (the horizon-friendly
    placement where batching actually happens; the ratio carries the CI
    gate — see :data:`LOWERING_SPEEDUP_FACTOR`), and diffs the two runs'
    statistics and result bytes. A second parity diff runs the 8x4
    ``sor32`` placement with small parameters: the lockstep-contended
    schedule where the executor commits after every step and the
    adaptive policy falls back to the interpreter.
    """
    band_cfg = MachineConfig(nodes=1, procs_per_node=1)
    app = make_app("SOR")
    # Default problem size even under --quick: the small grid finishes
    # in ~1 ms, where fixed per-run setup dilutes the ratio the CI gate
    # depends on, and the default 1x1 run is itself only tens of ms.
    params = app.default_params()
    state: dict = {}

    def run_one(cfg, key):
        result = run_app(make_app("SOR"), params, cfg, "2L")
        state[key] = (result.exec_time_us,
                      _run_fingerprint(result, app, params))

    lowered_wall = _best_of(lambda: run_one(band_cfg, "lowered"), reps)
    interp_wall = _best_of(
        lambda: run_one(replace(band_cfg, lowering=False), "interp"), reps)
    parity = "ok" if state["lowered"][1] == state["interp"][1] \
        else "MISMATCH"

    cfg32 = MachineConfig(nodes=8, procs_per_node=4)
    p32 = app.small_params()
    low32 = run_app(make_app("SOR"), p32, cfg32, "2L")
    int32 = run_app(make_app("SOR"), p32,
                    replace(cfg32, lowering=False), "2L")
    parity32 = "ok" if _run_fingerprint(low32, app, p32) == \
        _run_fingerprint(int32, app, p32) else "MISMATCH"

    extra = {"placement": "1:1"}
    speedup = interp_wall / lowered_wall if lowered_wall > 0 else None
    return [
        BenchResult("sor_band_lowered", lowered_wall, reps,
                    sim_us=state["lowered"][0],
                    extra=dict(extra, parity=parity,
                               parity_sor32=parity32,
                               speedup=round(speedup, 2)
                               if speedup else None)),
        BenchResult("sor_band_interp", interp_wall, reps,
                    sim_us=state["interp"][0], extra=dict(extra)),
    ]


def _sweep_specs(quick: bool) -> list:
    """A figure7-style grid of independent cells for the sweep benches."""
    from .configs import experiment_config
    from .sweep import RunSpec
    apps = ("SOR", "Em3d") if quick else ("SOR", "Em3d", "Barnes", "Water")
    protocols = ("2L", "1LD") if quick else ("2L", "2LS", "1LD", "1L")
    placements = ("4:1", "8:4") if quick else ("4:1", "8:4", "32:4")
    return [RunSpec.app_run(a, p, experiment_config(pl))
            for a in apps for p in protocols for pl in placements]


def bench_sweep(quick: bool = False) -> list[BenchResult]:
    """Serial vs process-pool vs cache-warm wall clock over one grid.

    The cold passes are timed once (re-running them cold would mean
    re-simulating the whole grid per rep); the warm pass is best-of-3
    since cache hits are cheap. The pool holds ``min(2, cores)``
    workers — two is enough to show real overlap without oversubscribing
    small CI runners — and the report records ``cores``, ``jobs``, and
    the honest measured ``speedup`` (cold serial wall over cold parallel
    wall): on a single-core host the pool degenerates to serial plus
    fork/IPC overhead and the speedup reads below 1, by design.
    """
    from .sweep import ResultCache, Sweep, run_cells
    specs = _sweep_specs(quick)
    cores = os.cpu_count() or 1
    jobs = min(2, cores)
    extra = {"cells": len(specs), "cores": cores}
    results = []
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        run_cells(specs, Sweep(jobs=1))
        serial_wall = time.perf_counter() - t0
        results.append(BenchResult("sweep_serial", serial_wall, 1,
                                   extra=dict(extra, jobs=1)))
        t0 = time.perf_counter()
        run_cells(specs, Sweep(jobs=jobs))
        parallel_wall = time.perf_counter() - t0
        results.append(BenchResult(
            "sweep_parallel", parallel_wall, 1,
            extra=dict(extra, jobs=jobs,
                       speedup=round(serial_wall / parallel_wall, 2)
                       if parallel_wall > 0 else None)))
    finally:
        gc.enable()
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(root=tmp)
        run_cells(specs, Sweep(jobs=1, cache=cache))  # populate
        warm = Sweep(jobs=1, cache=cache)
        wall = _best_of(lambda: run_cells(specs, warm), 3)
        results.append(BenchResult(
            "sweep_warm", wall, 3,
            extra=dict(extra, jobs=1, executed=warm.stats.executed,
                       hits=warm.stats.hits, misses=warm.stats.misses)))
    return results


# --- driver -------------------------------------------------------------------


def load_baseline(path: str) -> dict | None:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _profile_rows(fns: list, top: int = 15) -> list[dict]:
    """One cProfile rep over ``fns``; rows for the top-N by cumulative
    time (recursive frames like the worker generators report their
    total, as pstats does)."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        for fn in fns:
            fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    for (path, line, func), (_cc, nc, tt, ct, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        where = f"{os.path.basename(path)}:{line}({func})" \
            if line else func
        rows.append({"function": where, "ncalls": nc,
                     "tottime_s": round(tt, 6), "cumtime_s": round(ct, 6)})
    rows.sort(key=lambda r: r["cumtime_s"], reverse=True)
    return rows[:top]


def run_bench(quick: bool = False, baseline_path: str | None = None,
              progress=None, profile: bool = False) -> BenchReport:
    """Run the benchmark suite; ``quick`` shrinks reps and problem sizes.

    ``profile`` additionally runs one untimed rep of each
    single-process benchmark under cProfile and attaches the top
    functions by cumulative time to the report.
    """
    report = BenchReport(quick=quick)
    if baseline_path:
        report.baseline = load_baseline(baseline_path)
        report.baseline_path = baseline_path
    reps = 2 if quick else 3

    def note(name):
        if progress is not None:
            progress(name)

    sim_us = [0.0]

    def tracked(fn):
        """Route a microbench's returned simulated time into sim_us."""
        def run():
            sim_us[0] = fn()
        return run

    note("access")
    ops = 50_000 if quick else 200_000
    access_run = tracked(lambda: bench_access(ops))
    report.results.append(BenchResult(
        "access", _best_of(access_run, reps), reps, sim_us=sim_us[0]))

    note("fault_storm")
    rounds = 6 if quick else 12
    storm_run = tracked(lambda: bench_fault_storm(rounds))
    report.results.append(BenchResult(
        "fault_storm", _best_of(storm_run, reps), reps, sim_us=sim_us[0]))

    note("barrier")
    episodes = 100 if quick else 300
    barrier_run = tracked(lambda: bench_barrier(episodes))
    report.results.append(BenchResult(
        "barrier", _best_of(barrier_run, reps), reps, sim_us=sim_us[0]))

    note("directory")
    report.results.append(bench_directory(reps, quick))

    note("sor32")
    sor_run = tracked(lambda: _full_run("SOR", small=quick))
    report.results.append(BenchResult(
        "sor32", _best_of(sor_run, reps), reps, sim_us=sim_us[0]))

    note("water32")
    water_run = tracked(lambda: _full_run("Water", small=quick))
    report.results.append(BenchResult(
        "water32", _best_of(water_run, reps), reps, sim_us=sim_us[0]))

    note("lowering")
    report.results.extend(bench_lowering(reps, quick))

    note("sweep")
    report.results.extend(bench_sweep(quick))

    if profile:
        note("profile")
        report.profile = _profile_rows([
            access_run, storm_run, barrier_run, sor_run, water_run])

    return report

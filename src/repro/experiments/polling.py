"""Experiment E10 — §2.3: polling versus interrupts for explicit requests.

The paper experimented with both delivery mechanisms for explicit
requests (page fetches, exclusive-mode breaks) and found that "polling
provides better performance in almost every case" despite the kernel
modifications that cut interrupt latency by an order of magnitude
(§2.3, "Kernel changes": intra-node 980 → 80 µs, inter-node 980 → 445 µs).

This experiment runs applications under both delivery mechanisms (and
optionally with the unmodified-kernel interrupt latencies) and reports
execution times. Polling costs show up as per-loop-iteration checks;
interrupts as per-request delivery latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..stats.report import format_table, pct_change
from .configs import FULL_PLATFORM
from .sweep import RunSpec, run_cells


@dataclass
class PollingResults:
    #: exec_time_s[app][variant]: polling / interrupts / slow-interrupts.
    exec_time_s: dict[str, dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        apps = list(self.exec_time_s)
        variants = ["polling", "interrupts", "slow-intr"]
        rows = []
        for v in variants:
            rows.append((f"exec time (s) {v}",
                         [self.exec_time_s[a].get(v) for a in apps]))
        rows.append(("interrupts vs polling (%)",
                     [pct_change(self.exec_time_s[a]["polling"],
                                 self.exec_time_s[a]["interrupts"])
                      for a in apps]))
        return format_table(
            "Section 2.3 — polling vs interrupt request delivery "
            "(2L, 32 processors; positive % = polling faster)",
            apps, rows, col_width=11, label_width=26)


def run_polling_ablation(
        apps: tuple[str, ...] = ("Em3d", "Barnes", "Gauss"),
        include_slow: bool = True, sweep=None) -> PollingResults:
    results = PollingResults()
    configs = {
        "polling": FULL_PLATFORM,
        "interrupts": replace(FULL_PLATFORM, polling=False),
    }
    if include_slow:
        configs["slow-intr"] = replace(FULL_PLATFORM, polling=False,
                                       fast_interrupts=False)
    specs = [RunSpec.app_run(app_name, "2L", cfg)
             for app_name in apps for cfg in configs.values()]
    cells = iter(run_cells(specs, sweep))
    for app_name in apps:
        results.exec_time_s[app_name] = {
            variant: next(cells).table3["exec_time_s"]
            for variant in configs}
    return results


if __name__ == "__main__":  # pragma: no cover
    import sys
    apps = tuple(sys.argv[1:]) or ("Em3d", "Barnes", "Gauss")
    print(run_polling_ablation(apps=apps).format())

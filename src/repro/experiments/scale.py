"""Experiment S — big-cluster scaling (DESIGN.md §15).

The paper's machine stops at 8 nodes x 4 processors; this family charts
what the simulated protocol — and the simulator itself — does when the
cluster keeps growing: a ladder of placements from 8x4 (32 processors)
to 64x8 (512 processors) running SOR, Water, and LU under 2L with the
combining-tree barrier. Per rung it reports:

* **speedup** over the uninstrumented sequential run (same problem
  size across the ladder — strong scaling, so the curve bends where
  communication overtakes the shrinking per-processor compute);
* **Memory Channel traffic** (Mbytes) — the broadcast-medium load that
  grows with sharers and with directory-update fan-out;
* **barrier cost** — mean departure latency per episode (the
  O(slots) vs O(log slots) term the tree topology targets) and total
  combine-hop count;
* **directory occupancy** — mean sharers per page at end of run, the
  quantity the sparse O(sharers) entries keep per-access cost flat in
  (the dense form pays O(num_owners) per scan regardless).

Each cell also records the simulator's *wall clock* (the number the
sparse directory and tree barrier optimize; cache-served cells report
their hit cost, so gate wall clocks only on cold runs), and
:meth:`ScaleResults.to_bench_json` emits the ladder as a
``BENCH_scale.json`` in the bench-report shape the metrics store
ingests (``cashmere-repro metrics import BENCH_scale.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MachineConfig
from ..stats.report import format_table
from .configs import EXPERIMENT_PAGE_BYTES
from .sweep import RunSpec, Sweep, wall_clock

#: The placement ladder, (nodes, procs_per_node): 32 to 512 processors.
LADDER = ((8, 4), (16, 4), (16, 8), (32, 8), (64, 8))

#: Reduced ladder for ``--quick`` / the CI smoke cell.
QUICK_LADDER = ((8, 4), (16, 4))

#: Applications with enough exposed parallelism to feed 512 processors.
SCALE_APPS = ("SOR", "Water", "LU")

SCALE_PROTOCOL = "2L"

#: Strong-scaling problem sizes: fixed across the ladder, sized so the
#: largest rung still gives every processor work (SOR: 2 rows each at
#: 512; LU: 1024 blocks; Water: 2 molecules each).
SCALE_PARAMS = {
    "SOR": {"rows": 1026, "cols": 64, "iters": 2},
    "Water": {"mols": 1024, "steps": 1},
    "LU": {"n": 384, "block": 12},
}

#: ``--quick`` sizes, matched to the reduced ladder's 64 processors.
QUICK_PARAMS = {
    "SOR": {"rows": 130, "cols": 32, "iters": 2},
    "Water": {"mols": 96, "steps": 1},
    "LU": {"n": 96, "block": 12},
}


def scale_config(nodes: int, ppn: int,
                 barrier: str = "tree") -> MachineConfig:
    """Machine configuration for one ladder rung."""
    return MachineConfig(nodes=nodes, procs_per_node=ppn,
                         page_bytes=EXPERIMENT_PAGE_BYTES,
                         barrier=barrier)


def _label(nodes: int, ppn: int) -> str:
    return f"{nodes}x{ppn}"


@dataclass
class ScaleResults:
    """Per-app, per-rung scaling series."""

    ladder: tuple = LADDER
    apps: tuple = SCALE_APPS
    quick: bool = False
    barrier: str = "tree"
    seq_time_s: dict[str, float] = field(default_factory=dict)
    #: rows[app][label] — see :func:`run_scale` for the keys.
    rows: dict[str, dict[str, dict]] = field(default_factory=dict)

    def format(self) -> str:
        labels = [_label(n, p) for n, p in self.ladder]
        sections = []
        for app in self.apps:
            per = self.rows[app]
            table_rows = [
                ("processors", [per[la]["procs"] for la in labels]),
                ("speedup", [per[la]["speedup"] for la in labels]),
                ("exec (s)", [per[la]["exec_s"] for la in labels]),
                ("MC traffic (MB)",
                 [per[la]["mc_mbytes"] for la in labels]),
                ("barrier us/episode",
                 [per[la]["barrier_us_per_episode"] for la in labels]),
                ("combine hops",
                 [per[la]["combine_hops"] for la in labels]),
                ("sharers/page",
                 [per[la]["sharers_per_page"] for la in labels]),
                ("wall clock (s)",
                 [per[la]["wall_s"] for la in labels]),
            ]
            sections.append(format_table(
                f"Scale — {app} under {SCALE_PROTOCOL}, "
                f"{self.barrier} barrier "
                f"(sequential: {self.seq_time_s[app]:.2f}s)",
                labels, table_rows, col_width=10, label_width=20))
        return "\n\n".join(sections)

    def to_bench_json(self) -> dict:
        """The ladder in the ``BENCH_*.json`` report shape (bench
        schema), one benchmark per (app, rung) cell, so
        ``cashmere-repro metrics import`` ingests it unchanged."""
        from .bench import SCHEMA, report_stamp
        benchmarks = {}
        for app in self.apps:
            for la, row in self.rows[app].items():
                benchmarks[f"scale_{app.lower()}_{la}"] = {
                    "wall_s": row["wall_s"],
                    "reps": 1,
                    "sim_us": row["exec_s"] * 1e6,
                    "sim_us_per_wall_s": row["exec_s"] * 1e6 /
                    row["wall_s"] if row["wall_s"] > 0 else None,
                    "procs": row["procs"],
                    "speedup": row["speedup"],
                    "mc_mbytes": row["mc_mbytes"],
                    "barrier_us_per_episode":
                        row["barrier_us_per_episode"],
                    "sharers_per_page": row["sharers_per_page"],
                }
        return {
            "schema": SCHEMA,
            "timestamp": report_stamp(),
            "experiment": "scale",
            "quick": self.quick,
            "barrier": self.barrier,
            "protocol": SCALE_PROTOCOL,
            "benchmarks": benchmarks,
        }


def run_scale(apps: tuple[str, ...] = SCALE_APPS,
              ladder: tuple | None = None, quick: bool = False,
              barrier: str = "tree", sweep=None) -> ScaleResults:
    """Run the scaling ladder; one sweep cell per (app, rung).

    Cells run one at a time (not fanned out) so each one's recorded
    wall clock measures that simulation alone.
    """
    sweep = sweep if sweep is not None else Sweep()
    if ladder is None:
        ladder = QUICK_LADDER if quick else LADDER
    params_by_app = QUICK_PARAMS if quick else SCALE_PARAMS
    results = ScaleResults(ladder=tuple(ladder), apps=tuple(apps),
                           quick=quick, barrier=barrier)
    for app_name in apps:
        params = params_by_app[app_name]
        seq_spec = RunSpec.seq_run(app_name, scale_config(*ladder[0]),
                                   params=params)
        seq_us = sweep.run([seq_spec])[0].exec_time_us
        results.seq_time_s[app_name] = seq_us / 1e6
        per: dict[str, dict] = {}
        for nodes, ppn in ladder:
            spec = RunSpec.app_run(
                app_name, SCALE_PROTOCOL,
                scale_config(nodes, ppn, barrier), params=params)
            t0 = wall_clock()
            cell = sweep.run([spec])[0]
            wall = wall_clock() - t0
            s = cell.scale or {}
            episodes = max(1, s.get("barrier_episodes", 0))
            per[_label(nodes, ppn)] = {
                "procs": nodes * ppn,
                "exec_s": cell.exec_time_us / 1e6,
                "speedup": seq_us / cell.exec_time_us,
                "wall_s": wall,
                "mc_mbytes": s.get("mc_traffic_bytes", 0) / 1e6,
                "barrier_us_per_episode":
                    s.get("barrier_depart_us", 0.0) / episodes,
                "combine_hops": s.get("barrier_combine_hops", 0),
                "sharers_per_page": s.get("dir_sharers", 0) /
                    max(1, s.get("dir_pages", 1)),
                "dir_histogram": s.get("dir_histogram"),
            }
        results.rows[app_name] = per
    return results


if __name__ == "__main__":  # pragma: no cover
    import sys
    args = sys.argv[1:]
    apps = tuple(a for a in args if a in SCALE_APPS) or SCALE_APPS
    print(run_scale(apps=apps, quick="--quick" in args).format())

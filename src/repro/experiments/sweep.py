"""Parallel sweep engine: declarative experiment cells, a process pool,
and a content-addressed result cache.

The paper's evaluation is an embarrassingly parallel grid: every table
and figure is assembled from *independent* simulations (one per
application x protocol x placement x config-override cell). This module
turns that structure into a first-class object:

* :class:`RunSpec` — one cell, described declaratively (application,
  protocol, canonicalized :class:`~repro.config.MachineConfig`,
  parameter overrides, protocol variant flags). Specs are frozen,
  hashable, and picklable; :func:`execute_cell` is a *pure function*
  ``RunSpec -> CellResult``.
* :func:`run_cells` — executes a list of specs, serially by default or
  on a :class:`concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``
  (``--jobs N`` on the CLI, or the ``CASHMERE_JOBS`` environment
  variable). Results are merged back **in spec order**, so parallel
  output is byte-identical to serial output by construction.
* :class:`ResultCache` — an on-disk content-addressed memo table
  (default ``.cashmere-cache/``, overridable via ``CASHMERE_CACHE_DIR``).
  The key hashes the RunSpec together with the package version and a
  digest of every ``src/repro`` source file, so *any* code change
  invalidates every entry; the value is the pickled
  :class:`CellResult`. Because the simulator is fully deterministic
  (asserted by the fast-path and tracing determinism suites), a cache
  hit is bit-exact with a re-execution.

Fan-out is sound for the same reason memoization is: a cell's outcome
depends only on its spec and the source tree, never on what other cells
ran before it in the same process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from .. import __version__
from ..apps import make_app
from ..config import CostModel, MachineConfig
from ..runtime.api import SharedSegment
from ..runtime.program import run_app
from ..runtime.sequential import run_sequential

#: Bump when the CellResult layout or the key derivation changes.
#: 2: CellResult gained the ``scale`` dict (directory occupancy,
#: barrier cost, MC traffic — the scale experiment family's series).
CACHE_SCHEMA = "cashmere-sweep-2"

#: Default on-disk cache location (relative to the working directory),
#: unless ``CASHMERE_CACHE_DIR`` says otherwise.
DEFAULT_CACHE_DIR = ".cashmere-cache"


def wall_clock() -> float:
    """The sanctioned wall-clock read.

    Simulated results are a pure function of ``(RunSpec, source
    digest)`` and must never depend on real time; progress reporting
    may. Every wall-clock read outside this module and ``bench.py``
    goes through here so the determinism lint (rule D101, see
    DESIGN.md §11) can prove the rest of the tree clean.
    """
    return time.time()


# --- RunSpec ------------------------------------------------------------------


def config_key(config: MachineConfig) -> tuple:
    """Canonical, hashable encoding of a :class:`MachineConfig`.

    Every field (including the nested cost model) is flattened into
    sorted-by-declaration ``(name, value)`` tuples of plain scalars, so
    two configs compare equal iff every simulated cost and geometry
    parameter is equal — exactly the cache-correctness condition.
    """
    items = []
    for f in dataclasses.fields(MachineConfig):
        value = getattr(config, f.name)
        if f.name == "costs":
            value = tuple((cf.name, getattr(value, cf.name))
                          for cf in dataclasses.fields(CostModel))
        items.append((f.name, value))
    return tuple(items)


def config_from_key(key: tuple) -> MachineConfig:
    """Rebuild the :class:`MachineConfig` a :func:`config_key` encodes."""
    kwargs = dict(key)
    kwargs["costs"] = CostModel(**dict(kwargs["costs"]))
    return MachineConfig(**kwargs)


@dataclass(frozen=True)
class RunSpec:
    """One experiment cell, fully described by value.

    ``kind`` selects the worker: ``"app"`` runs the application under a
    protocol (:func:`~repro.runtime.program.run_app`), ``"seq"`` runs the
    uninstrumented sequential baseline, and ``"table1"`` runs the basic
    operation micro-measurements (no application). ``params`` holds only
    *overrides* on the application's ``default_params()`` — defaults live
    in source, which the cache key digests.
    """

    kind: str = "app"
    app: str = ""
    protocol: str = "2L"
    config: tuple = ()
    params: tuple = ()
    lock_free: bool = True
    home_opt: bool = False

    @classmethod
    def app_run(cls, app: str, protocol: str, config: MachineConfig, *,
                params: dict | None = None, lock_free: bool = True,
                home_opt: bool = False) -> "RunSpec":
        return cls(kind="app", app=app, protocol=protocol,
                   config=config_key(config),
                   params=tuple(sorted((params or {}).items())),
                   lock_free=lock_free, home_opt=home_opt)

    @classmethod
    def seq_run(cls, app: str, config: MachineConfig, *,
                params: dict | None = None) -> "RunSpec":
        return cls(kind="seq", app=app, protocol="",
                   config=config_key(config),
                   params=tuple(sorted((params or {}).items())))

    @classmethod
    def table1_run(cls) -> "RunSpec":
        return cls(kind="table1", app="", protocol="")


@dataclass
class CellResult:
    """What one cell produces: everything any table/figure reads.

    Kept deliberately small and de-normalized (plain dicts of floats)
    so it pickles cheaply across the process pool and into the cache.
    """

    exec_time_us: float = 0.0
    #: Table 3 row (also carries the counters the ablations read).
    table3: dict | None = None
    #: Aggregate Figure-6 time buckets and their sum.
    buckets: dict | None = None
    total_time: float | None = None
    #: Sequential cells: shared-segment footprint (Table 2).
    shared_kbytes: float | None = None
    #: ``table1`` cells: the full Table1Results object.
    payload: object | None = None
    #: Big-cluster scaling series (the ``scale`` experiment): end-of-run
    #: directory occupancy, barrier episode cost, and MC traffic.
    scale: dict | None = None


def execute_cell(spec: RunSpec) -> CellResult:
    """Pure worker: run one cell. Safe to call in any process."""
    if spec.kind == "table1":
        from .table1 import _measure_table1
        return CellResult(payload=_measure_table1())
    config = config_from_key(spec.config)
    app = make_app(spec.app)
    params = app.default_params()
    params.update(dict(spec.params))
    if spec.kind == "seq":
        _, seq_us = run_sequential(app, params, config)
        seg = SharedSegment(config)
        app.declare(seg, params)
        return CellResult(exec_time_us=seq_us,
                          shared_kbytes=seg.words_used * 8 / 1024)
    if spec.kind != "app":
        raise ValueError(f"unknown RunSpec kind {spec.kind!r}")
    run = run_app(app, params, config, spec.protocol,
                  lock_free=spec.lock_free, home_opt=spec.home_opt)
    stats = run.stats
    rt = run.runtime
    per_owner, histogram = rt.protocol.directory.occupancy()
    barrier = rt.barrier
    scale = {
        "procs": config.total_procs,
        "mc_traffic_bytes": sum(stats.mc_traffic_bytes.values()),
        "dir_histogram": histogram,
        "dir_sharers": sum(per_owner),
        "dir_pages": len(rt.protocol.directory.entries),
        "barrier_episodes": barrier.episodes,
        "barrier_depart_us": barrier.depart_latency_us,
        "barrier_combine_hops":
            stats.aggregate.counters["barrier_combine_hops"],
    }
    return CellResult(exec_time_us=stats.exec_time_us,
                      table3=stats.table3_row(),
                      buckets=dict(stats.aggregate.buckets),
                      total_time=stats.aggregate.total_time,
                      scale=scale)


# --- content-addressed cache --------------------------------------------------

#: Process-wide memo of the source-tree digest (hashing ~100 files once
#: per process is cheap; once per cell lookup would not be).
_source_digest: str | None = None


def source_digest() -> str:
    """SHA-256 over every ``.py`` file under ``src/repro``, in sorted
    relative-path order. Any source change — a cost constant, a protocol
    fix, an application kernel tweak — changes the digest and therefore
    every cache key."""
    global _source_digest
    if _source_digest is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                h.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _source_digest = h.hexdigest()
    return _source_digest


def cache_key(spec: RunSpec) -> str:
    """Content address of a cell: schema + version + sources + spec."""
    raw = repr((CACHE_SCHEMA, __version__, source_digest(), spec))
    return hashlib.sha256(raw.encode()).hexdigest()


class ResultCache:
    """Pickled :class:`CellResult` objects keyed by :func:`cache_key`.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` (two-level fan-out keeps
    directories small). ``mode`` is ``"on"`` (read and write, the
    default), or ``"refresh"`` (never read, always write — the
    ``--refresh`` escape hatch; ``--no-cache`` simply passes no cache at
    all). Writes are atomic (temp file + rename), so concurrent sweeps
    sharing a cache directory can only ever observe complete entries.
    """

    def __init__(self, root: str | None = None, mode: str = "on") -> None:
        if mode not in ("on", "refresh"):
            raise ValueError(f"unknown cache mode {mode!r}")
        self.root = root or os.environ.get("CASHMERE_CACHE_DIR") \
            or DEFAULT_CACHE_DIR
        self.mode = mode

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, spec: RunSpec) -> CellResult | None:
        if self.mode == "refresh":
            return None
        try:
            with open(self.path(cache_key(spec)), "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return None
        result = entry.get("result")
        return result if isinstance(result, CellResult) else None

    def put(self, spec: RunSpec, result: CellResult) -> None:
        path = self.path(cache_key(spec))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"schema": CACHE_SCHEMA, "spec": spec,
                             "result": result}, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# --- the sweep driver ---------------------------------------------------------


def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: explicit ``jobs`` wins, then the
    ``CASHMERE_JOBS`` environment variable, then 1 (serial — tests and
    CI are deterministic by construction, parallelism is opt-in)."""
    if jobs is None:
        env = os.environ.get("CASHMERE_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"CASHMERE_JOBS={env!r} is not an integer") from None
    return max(1, jobs or 1)


@dataclass
class SweepStats:
    """Hit/miss/execution counters, accumulated across experiments."""

    hits: int = 0
    misses: int = 0
    executed: int = 0

    @property
    def cells(self) -> int:
        return self.hits + self.executed

    def summary(self, cache_enabled: bool = True) -> str:
        if not cache_enabled:
            return (f"cache disabled; {self.executed} simulations "
                    f"executed")
        return (f"cache: {self.hits} hits, {self.misses} misses; "
                f"{self.executed} simulations executed")


@dataclass
class Sweep:
    """How to execute cells: parallelism plus an optional result cache.

    The library default (``Sweep()``) is serial with no cache, so direct
    calls to ``run_table3()`` and friends behave exactly as before —
    except that ``CASHMERE_JOBS`` can still fan them out. The CLI
    constructs one Sweep per invocation with the cache enabled, shared
    across every experiment of an ``all`` run so common cells (e.g. the
    sequential baselines used by both Table 2 and Figure 7) execute
    once.
    """

    jobs: int | None = None
    cache: ResultCache | None = None
    stats: SweepStats = field(default_factory=SweepStats)

    def run(self, specs: list[RunSpec]) -> list[CellResult]:
        return run_cells(specs, self)


def run_cells(specs: list[RunSpec], sweep: Sweep | None = None) \
        -> list[CellResult]:
    """Execute every spec; returns results in spec order.

    Cache hits are filled in first; the misses run serially or on a
    process pool. The merge is positional, so for a fixed spec list the
    output — and everything assembled from it — is identical no matter
    how many workers ran or which cells were cached.
    """
    sweep = sweep if sweep is not None else Sweep()
    results: list[CellResult | None] = [None] * len(specs)
    pending: list[int] = []
    for i, spec in enumerate(specs):
        cached = sweep.cache.get(spec) if sweep.cache else None
        if cached is not None:
            results[i] = cached
            sweep.stats.hits += 1
        else:
            pending.append(i)
            if sweep.cache:
                sweep.stats.misses += 1
    jobs = resolve_jobs(sweep.jobs)
    if pending:
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))) as pool:
                futures = [(i, pool.submit(execute_cell, specs[i]))
                           for i in pending]
                for i, future in futures:
                    results[i] = future.result()
        else:
            for i in pending:
                results[i] = execute_cell(specs[i])
        sweep.stats.executed += len(pending)
        if sweep.cache:
            for i in pending:
                sweep.cache.put(specs[i], results[i])
    return results  # type: ignore[return-value]

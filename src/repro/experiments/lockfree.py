"""Experiment E7 — Section 3.3.5: impact of lock-free protocol structures.

Compares standard Cashmere-2L (lock-free directory words, multi-bin write
notice lists) against the variant whose directory entries and write
notice lists are protected by cluster-wide locks (one 16 us serialized
update instead of a 5 us lock-free write).

Paper findings to reproduce: Barnes (by far the most directory accesses
and write notices) improves ~5% with lock-free structures; Em3d ~5%,
Ilink ~7%; Water and the remaining applications show no significant
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..stats.report import format_table, pct_change
from .configs import FULL_PLATFORM
from .sweep import RunSpec, run_cells


@dataclass
class LockFreeResults:
    exec_time_s: dict[str, dict[str, float]] = field(default_factory=dict)
    dir_updates: dict[str, int] = field(default_factory=dict)
    write_notices: dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        apps = list(self.exec_time_s)
        rows = [
            ("lock-free (s)",
             [self.exec_time_s[a]["lock_free"] for a in apps]),
            ("global locks (s)",
             [self.exec_time_s[a]["locked"] for a in apps]),
            ("improvement (%)",
             [pct_change(self.exec_time_s[a]["lock_free"],
                         self.exec_time_s[a]["locked"]) for a in apps]),
            ("directory updates",
             [self.dir_updates[a] for a in apps]),
            ("write notices",
             [self.write_notices[a] for a in apps]),
        ]
        return format_table(
            "Section 3.3.5 — lock-free vs global-lock protocol structures "
            "(2L, 32 processors)",
            apps, rows, col_width=10, label_width=20)


def run_lockfree_ablation(
        apps: tuple[str, ...] = ("Barnes", "Em3d", "Ilink", "Water",
                                 "SOR"), sweep=None) -> LockFreeResults:
    results = LockFreeResults()
    specs = []
    for app_name in apps:
        specs.append(RunSpec.app_run(app_name, "2L", FULL_PLATFORM,
                                     lock_free=True))
        specs.append(RunSpec.app_run(app_name, "2L", FULL_PLATFORM,
                                     lock_free=False))
    cells = iter(run_cells(specs, sweep))
    for app_name in apps:
        free, locked = next(cells), next(cells)
        results.exec_time_s[app_name] = {
            "lock_free": free.table3["exec_time_s"],
            "locked": locked.table3["exec_time_s"],
        }
        results.dir_updates[app_name] = int(
            free.table3["directory_updates"])
        results.write_notices[app_name] = int(
            free.table3["write_notices"])
    return results


if __name__ == "__main__":  # pragma: no cover
    print(run_lockfree_ablation().format())

"""Command-line entry point: regenerate the paper's tables and figures.

Usage (installed as ``cashmere-repro``)::

    cashmere-repro table1
    cashmere-repro table2
    cashmere-repro table3  [APP ...]
    cashmere-repro figure6 [APP ...]
    cashmere-repro figure7 [APP ...] [--quick]
    cashmere-repro shootdown
    cashmere-repro lockfree
    cashmere-repro all     [--quick]

``--quick`` restricts Figure 7 to three placements (4:1, 8:4, 32:4).
"""

from __future__ import annotations

import argparse
import sys
import time

from .configs import APP_ORDER, PLACEMENT_ORDER, QUICK_PLACEMENTS
from .figure6 import run_figure6
from .figure7 import run_figure7
from .lockfree import run_lockfree_ablation
from .polling import run_polling_ablation
from .sensitivity import run_sensitivity
from .shootdown import run_shootdown_ablation
from .table1 import run_table1
from .table2 import format_table2, run_table2
from .table3 import run_table3


def _apps_arg(values: list[str]) -> tuple[str, ...]:
    if not values:
        return APP_ORDER
    bad = [v for v in values if v not in APP_ORDER]
    if bad:
        raise SystemExit(f"unknown application(s) {bad}; "
                         f"choose from {list(APP_ORDER)}")
    return tuple(values)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cashmere-repro",
        description="Regenerate the Cashmere-2L paper's tables and figures "
                    "on the simulated cluster.")
    parser.add_argument("experiment",
                        choices=["table1", "table2", "table3", "figure6",
                                 "figure7", "shootdown", "lockfree",
                                 "sensitivity", "polling", "all"])
    parser.add_argument("apps", nargs="*",
                        help="restrict to these applications")
    parser.add_argument("--quick", action="store_true",
                        help="reduced placement set for figure7")
    args = parser.parse_args(argv)
    apps = _apps_arg(args.apps)
    placements = QUICK_PLACEMENTS if args.quick else PLACEMENT_ORDER

    start = time.time()
    todo = [args.experiment] if args.experiment != "all" else [
        "table1", "table2", "table3", "figure6", "figure7", "shootdown",
        "lockfree", "sensitivity", "polling"]
    for experiment in todo:
        if experiment == "table1":
            print(run_table1().format())
        elif experiment == "table2":
            print(format_table2(run_table2(apps)))
        elif experiment == "table3":
            print(run_table3(apps=apps).format())
        elif experiment == "figure6":
            print(run_figure6(apps=apps).format())
        elif experiment == "figure7":
            print(run_figure7(apps=apps, placements=placements).format())
        elif experiment == "shootdown":
            print(run_shootdown_ablation().format())
        elif experiment == "lockfree":
            print(run_lockfree_ablation().format())
        elif experiment == "polling":
            print(run_polling_ablation(
                apps=("Em3d", "Barnes", "Gauss") if not args.apps
                else apps).format())
        elif experiment == "sensitivity":
            print(run_sensitivity(apps=("Em3d",) if not args.apps
                                  else apps).format())
        print()
    print(f"[{time.time() - start:.1f}s wall clock]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line entry point: regenerate the paper's tables and figures.

Usage (installed as ``cashmere-repro``)::

    cashmere-repro table1
    cashmere-repro table2
    cashmere-repro table3  [APP ...]
    cashmere-repro figure6 [APP ...]
    cashmere-repro figure7 [APP ...] [--quick]
    cashmere-repro shootdown
    cashmere-repro lockfree
    cashmere-repro scale   [APP ...] [--quick] [--json [BENCH_scale.json]]
    cashmere-repro all     [--quick]
    cashmere-repro trace APP [--out trace.json] [--protocol 2L]
                             [--faults SEED]
    cashmere-repro profile APP [--protocol 2L] [--faults SEED]
    cashmere-repro bench   [--quick] [--json [BENCH_run.json]]
                           [--baseline benchmarks/perf/baseline.json]
                           [--profile]
    cashmere-repro lint    [PATHS ...] [--select RULES] [--format json]
    cashmere-repro lower-gen APP [--apply]
    cashmere-repro modelcheck [PROTO ...] [--budget N] [--mutant NAME]
                              [--out counterexample.json]
    cashmere-repro metrics {bench,run,import,list,report,html} ...

Every table/figure/ablation experiment runs through the sweep engine
(:mod:`repro.experiments.sweep`): ``-j/--jobs N`` (or ``CASHMERE_JOBS``)
fans independent simulation cells out over a process pool, and results
are memoized in a content-addressed on-disk cache (``.cashmere-cache/``
or ``$CASHMERE_CACHE_DIR``; any source change invalidates it).
``--no-cache`` disables the cache entirely; ``--refresh`` re-executes
every cell and rewrites its entries. Parallel and cache-served output is
byte-identical to a serial cold run. Per-experiment wall-clock and a
cache hit/miss summary go to stderr.

``--quick`` restricts Figure 7 to three placements (4:1, 8:4, 32:4) and
shrinks the bench suite's reps and problem sizes.
``--json`` prints machine-readable results instead of monospace tables
(not applicable to ``trace``, whose output is already JSON); for
``all``, the documents are collected into one JSON *array* so the
output is a single valid JSON value. For ``bench``, ``--json PATH``
writes the report to ``PATH`` instead.

``bench`` measures the simulator's *wall-clock* performance (every other
experiment reports simulated time); with ``--baseline`` it exits nonzero
when the access-path microbenchmark has regressed more than 2x, and it
always gates on kernel lowering (the lowered solo SOR band run must be
byte-identical to — and at least 2x faster than — the interpreted one).
``--profile`` adds one cProfile rep of each single-process benchmark and
prints the top functions by cumulative time to stderr.

``lint`` runs the static DSM-usage analyzer and determinism lint
(:mod:`repro.lint`) over PATHS (default: the installed ``repro``
package). Exit code 0 means clean, 1 means findings, 2 means a usage
error; see README "Static analysis" for the rule table.

``lower-gen`` verifies an app's committed RegionKernel descriptors
against their interp bodies (exit 0 when they provably match — the
same check lint rules K001/K002 gate on), or, for an app with no
kernels yet, emits RegionKernel scaffolds with inferred touch lists
for every provably lowerable worker region (``--apply`` inserts them
into the app module for hand-tuning).

``trace`` runs one application with event tracing and exports Chrome
``trace_event`` JSON viewable at https://ui.perfetto.dev; ``profile``
prints the derived contention report (hot pages, lock hold/wait times,
barrier imbalance, Memory Channel timeline). ``--faults SEED`` runs
either under deterministic fault injection
(``FaultConfig.demo(SEED)``; DESIGN.md §12) so the injected stalls,
retries, and recoveries appear on the timeline.

``metrics`` manages the sqlite-backed run store and its trend/regression
dashboard (:mod:`repro.metrics`): ``metrics bench`` runs and ingests the
wall-clock suite, ``metrics run APP`` records a sampled time-series
simulation, ``metrics import`` ingests committed ``BENCH_*.json``
history, ``metrics report`` prints counter trends and exits 1 on a gated
wall-clock regression, and ``metrics html`` writes a self-contained
dashboard. See ``cashmere-repro metrics --help``.

``modelcheck`` explores *every* interleaving of a small fixed workload
(2 nodes x 2 processors x 2 pages) through the real protocol code and
checks coherence invariants at each step (DESIGN.md §12). Default
protocols: 2L and 1LD. Exit 1 on violation, with the minimal
counterexample printed and exported to ``--out`` as a Chrome trace.
``--mutant no-notices`` checks a deliberately broken protocol instead
and exits 0 only if the planted bug is caught.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from .configs import (APP_ORDER, PLACEMENT_ORDER, PROTOCOL_ORDER,
                      QUICK_PLACEMENTS)
from .figure6 import run_figure6
from .figure7 import run_figure7
from .lockfree import run_lockfree_ablation
from .polling import run_polling_ablation
from .sensitivity import run_sensitivity
from .shootdown import run_shootdown_ablation
from .bench import run_bench
from .sweep import ResultCache, Sweep, wall_clock
from .table1 import run_table1
from .table2 import format_table2, run_table2
from .table3 import run_table3
from .traceprof import resolve_app_name, run_profile, run_trace_export


def _apps_arg(values: list[str]) -> tuple[str, ...]:
    if not values:
        return APP_ORDER
    return tuple(resolve_app_name(v) for v in values)


def _jsonable(result):
    """Machine-readable form of an experiment result."""
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    if isinstance(result, list):
        return [_jsonable(r) for r in result]
    return result


def _emit(experiment: str, result, formatted: str, as_json: bool,
          json_docs: list | None = None) -> None:
    if as_json:
        doc = {"experiment": experiment, "data": _jsonable(result)}
        if json_docs is None:
            print(json.dumps(doc, indent=2))
        else:
            # `all --json`: collect and emit one valid JSON array at the
            # end instead of a concatenation of separate documents.
            json_docs.append(doc)
    else:
        print(formatted)


def run_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: static analysis, exit 0/1/2.

    stdout carries nothing but the (deterministic) report — no timing
    lines, so two runs over the same tree are byte-identical.
    """
    from .. import lint

    paths = args.apps
    if not paths:
        # Default target: the installed simulator package itself.
        paths = [os.path.dirname(os.path.dirname(
            os.path.abspath(lint.__file__)))]
    try:
        result = lint.run(paths, select=args.select)
    except lint.UsageError as exc:
        print(f"cashmere-repro lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cashmere-repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.lint_format == "json":
        print(result.format_json())
    else:
        print(result.format_text())
    return result.exit_code


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "metrics":
        # The metrics family has its own subparser tree (with option
        # names that collide with ours, e.g. --out), so dispatch before
        # the main parser sees it.
        from ..metrics.cli import main as metrics_main
        return metrics_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="cashmere-repro",
        description="Regenerate the Cashmere-2L paper's tables and figures "
                    "on the simulated cluster.")
    parser.add_argument("experiment",
                        choices=["table1", "table2", "table3", "figure6",
                                 "figure7", "shootdown", "lockfree",
                                 "sensitivity", "polling", "scale", "all",
                                 "trace", "profile", "bench", "lint",
                                 "lower-gen", "modelcheck"])
    parser.add_argument("apps", nargs="*",
                        help="restrict to these applications (required "
                             "single APP for trace/profile; PATHS to "
                             "analyze for lint; protocol names for "
                             "modelcheck)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced placement set for figure7; smaller "
                             "reps/problem sizes for bench")
    parser.add_argument("--json", nargs="?", const=True, default=False,
                        dest="as_json", metavar="PATH",
                        help="print machine-readable JSON instead of "
                             "tables; for bench, an optional PATH writes "
                             "the report to a BENCH_*.json file")
    parser.add_argument("--out", default="trace.json",
                        help="output path for the trace subcommand")
    parser.add_argument("--protocol", default="2L", choices=PROTOCOL_ORDER,
                        help="protocol for the trace/profile subcommands")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="bench only: committed baseline JSON to "
                             "compare against (exits nonzero if the "
                             "access microbenchmark regressed > 2x)")
    parser.add_argument("--profile", action="store_true",
                        dest="bench_profile",
                        help="bench only: run one extra rep of each "
                             "single-process benchmark under cProfile "
                             "and report the top functions by "
                             "cumulative time (stderr; included in the "
                             "JSON report)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        metavar="N",
                        help="run independent simulation cells on N "
                             "worker processes (default: serial, or "
                             "$CASHMERE_JOBS); output is byte-identical "
                             "to a serial run")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache (neither "
                             "read nor written)")
    parser.add_argument("--refresh", action="store_true",
                        help="re-execute every cell and rewrite its "
                             "cache entries (ignore existing ones)")
    parser.add_argument("--faults", type=int, default=None, metavar="SEED",
                        help="trace/profile only: run under deterministic "
                             "fault injection with FaultConfig.demo(SEED)")
    parser.add_argument("--budget", type=int, default=100_000, metavar="N",
                        help="modelcheck only: distinct-state budget per "
                             "protocol (exploration is exhaustive when "
                             "under budget)")
    parser.add_argument("--mutant", default=None,
                        choices=["no-notices"],
                        help="modelcheck only: check this deliberately "
                             "broken protocol instead and expect the "
                             "checker to catch it")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="lint only: restrict to these rule IDs or "
                             "prefixes, comma-separated (e.g. "
                             "'A001,D' selects A001 and every D-rule)")
    parser.add_argument("--format", default="text",
                        choices=["text", "json"], dest="lint_format",
                        help="lint only: output format")
    parser.add_argument("--apply", action="store_true",
                        help="lower-gen only: insert the generated "
                             "RegionKernel scaffolds into the app "
                             "module for hand-tuning")
    # parse_intermixed_args: `lint --select D PATH` has optionals
    # before the nargs='*' positional, which plain parse_args
    # cannot split.
    args = parser.parse_intermixed_args(argv)

    if args.experiment == "lint":
        return run_lint(args)
    if args.experiment == "lower-gen":
        if len(args.apps) != 1:
            raise SystemExit("lower-gen needs exactly one application, "
                             "e.g. `cashmere-repro lower-gen sor`")
        from ..lower.generate import run_lower_gen
        return run_lower_gen(resolve_app_name(args.apps[0]),
                             apply=args.apply)

    start = wall_clock()
    if args.experiment == "bench":
        report = run_bench(quick=args.quick, baseline_path=args.baseline,
                           progress=lambda name: print(
                               f"  bench: {name}...", file=sys.stderr),
                           profile=args.bench_profile)
        if report.profile is not None:
            print(report.format_profile(), file=sys.stderr)
        if isinstance(args.as_json, str):
            with open(args.as_json, "w") as fh:
                json.dump(report.to_json(), fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.as_json}")
        elif args.as_json:
            print(json.dumps(report.to_json(), indent=2))
        else:
            print(report.format())
        print(f"[{wall_clock() - start:.1f}s wall clock]", file=sys.stderr)
        failure = report.check_regression()
        if failure is not None:
            print(f"BENCH REGRESSION: {failure}", file=sys.stderr)
            return 1
        return 0
    if args.experiment == "modelcheck":
        from .modelcheck import DEFAULT_PROTOCOLS, run_modelcheck
        protocols = tuple(args.apps) if args.apps else DEFAULT_PROTOCOLS
        for name in protocols:
            if name not in PROTOCOL_ORDER:
                raise SystemExit(f"unknown protocol {name!r}; choose from "
                                 f"{list(PROTOCOL_ORDER)}")
        out = args.out if args.out != parser.get_default("out") \
            else "counterexample.json"
        report = run_modelcheck(protocols, budget=args.budget,
                                mutant=args.mutant, out=out)
        if args.as_json:
            print(json.dumps(report.to_json(), indent=2))
        else:
            print(report.format())
        print(f"[{wall_clock() - start:.1f}s wall clock]", file=sys.stderr)
        return 0 if report.ok else 1
    if args.experiment == "scale":
        from .scale import SCALE_APPS, run_scale
        apps = tuple(resolve_app_name(a) for a in args.apps) or SCALE_APPS
        for a in apps:
            if a not in SCALE_APPS:
                raise SystemExit(f"scale supports {list(SCALE_APPS)}; "
                                 f"{a!r} cannot feed 512 processors")
        sweep = Sweep(jobs=args.jobs,
                      cache=None if args.no_cache else ResultCache(
                          mode="refresh" if args.refresh else "on"))
        result = run_scale(apps=apps, quick=args.quick, sweep=sweep)
        if isinstance(args.as_json, str):
            with open(args.as_json, "w") as fh:
                json.dump(result.to_bench_json(), fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.as_json}")
        elif args.as_json:
            print(json.dumps(result.to_bench_json(), indent=2))
        else:
            print(result.format())
        print(f"[{sweep.stats.summary(sweep.cache is not None)}]",
              file=sys.stderr)
        print(f"[{wall_clock() - start:.1f}s wall clock]", file=sys.stderr)
        return 0
    if args.experiment in ("trace", "profile"):
        if len(args.apps) != 1:
            raise SystemExit(
                f"{args.experiment} needs exactly one application, e.g. "
                f"`cashmere-repro {args.experiment} sor`")
        faults = None
        if args.faults is not None:
            from ..config import FaultConfig
            faults = FaultConfig.demo(args.faults)
        if args.experiment == "trace":
            n = run_trace_export(args.apps[0], args.out, args.protocol,
                                 faults=faults)
            print(f"wrote {n} trace events to {args.out} "
                  f"(open at https://ui.perfetto.dev)")
        else:
            profile = run_profile(args.apps[0], args.protocol,
                                  faults=faults)
            _emit("profile", profile.to_json(), profile.format(),
                  args.as_json)
        print(f"[{wall_clock() - start:.1f}s wall clock]", file=sys.stderr)
        return 0

    apps = _apps_arg(args.apps)
    placements = QUICK_PLACEMENTS if args.quick else PLACEMENT_ORDER
    todo = [args.experiment] if args.experiment != "all" else [
        "table1", "table2", "table3", "figure6", "figure7", "shootdown",
        "lockfree", "sensitivity", "polling"]
    # One sweep for the whole invocation: `all` shares the cache and the
    # hit/miss counters across experiments (the Table 2 and Figure 7
    # sequential baselines are literally the same cells, for instance).
    sweep = Sweep(jobs=args.jobs,
                  cache=None if args.no_cache else ResultCache(
                      mode="refresh" if args.refresh else "on"))
    json_docs: list | None = [] if args.as_json and len(todo) > 1 else None
    for experiment in todo:
        exp_start = wall_clock()
        if experiment == "table1":
            result = run_table1(sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        elif experiment == "table2":
            rows = run_table2(apps, sweep=sweep)
            _emit(experiment, rows, format_table2(rows), args.as_json,
                  json_docs)
        elif experiment == "table3":
            result = run_table3(apps=apps, sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        elif experiment == "figure6":
            result = run_figure6(apps=apps, sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        elif experiment == "figure7":
            result = run_figure7(apps=apps, placements=placements,
                                 sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        elif experiment == "shootdown":
            result = run_shootdown_ablation(sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        elif experiment == "lockfree":
            result = run_lockfree_ablation(sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        elif experiment == "polling":
            result = run_polling_ablation(
                apps=("Em3d", "Barnes", "Gauss") if not args.apps else apps,
                sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        elif experiment == "sensitivity":
            result = run_sensitivity(apps=("Em3d",) if not args.apps
                                     else apps, sweep=sweep)
            _emit(experiment, result, result.format(), args.as_json,
                  json_docs)
        if not args.as_json:
            print()
        print(f"[{experiment}: {wall_clock() - exp_start:.1f}s]",
              file=sys.stderr)
    if json_docs is not None:
        print(json.dumps(json_docs, indent=2))
    print(f"[{sweep.stats.summary(sweep.cache is not None)}]",
          file=sys.stderr)
    print(f"[{wall_clock() - start:.1f}s wall clock]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

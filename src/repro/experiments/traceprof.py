"""Observability entry points: trace one run, or profile its contention.

``cashmere-repro trace APP --out trace.json`` runs one application under
one protocol with event tracing enabled and exports the Chrome
``trace_event`` JSON (open it at https://ui.perfetto.dev).

``cashmere-repro profile APP`` runs the same traced execution and prints
the derived contention report (hot pages, lock hold/wait, barrier
imbalance, Memory Channel timeline) instead of the raw trace.
"""

from __future__ import annotations

from dataclasses import replace

from ..apps import make_app
from ..runtime.program import ParallelRuntime, RunResult, run_app
from ..trace import ContentionProfile, write_chrome_trace
from .configs import APP_ORDER, FULL_PLATFORM, bench_params

#: Default platform for traced runs: a reduced 4x2 placement so the
#: exported trace stays readable (and small) in the viewer. Pass
#: ``placement`` explicitly for the full machine.
TRACE_PLATFORM = FULL_PLATFORM.with_placement(8, 2)


def resolve_app_name(name: str) -> str:
    """Canonical application name, case-insensitively (``sor`` -> ``SOR``)."""
    by_lower = {a.lower(): a for a in APP_ORDER}
    try:
        return by_lower[name.lower()]
    except KeyError:
        raise SystemExit(f"unknown application {name!r}; "
                         f"choose from {list(APP_ORDER)}") from None


def run_traced(app_name: str, protocol: str = "2L",
               config=None, faults=None) -> RunResult:
    """One traced execution of ``app_name`` at experiment scale.

    ``faults`` is an optional :class:`~repro.config.FaultConfig`
    (``--faults SEED`` on the CLI passes ``FaultConfig.demo(seed)``):
    the run executes under deterministic fault injection, and the
    exported trace shows the injected stalls, retries, and recoveries.
    """
    app = make_app(resolve_app_name(app_name))
    cfg = replace(config or TRACE_PLATFORM, tracing=True)
    if faults is not None:
        cfg = replace(cfg, faults=faults)
    return run_app(app, bench_params(app), cfg, protocol)


def run_trace_export(app_name: str, out: str, protocol: str = "2L",
                     config=None, faults=None) -> int:
    """Trace a run and write the Chrome trace JSON; returns event count."""
    result = run_traced(app_name, protocol, config, faults)
    return write_chrome_trace(result.trace, out)


def run_profile(app_name: str, protocol: str = "2L",
                config=None, faults=None) -> ContentionProfile:
    """Trace a run and derive its contention profile."""
    result = run_traced(app_name, protocol, config, faults)
    return ContentionProfile(result.trace)


def run_metered(app_name: str, protocol: str = "2L", config=None,
                interval_us: float | None = None) -> RunResult:
    """One metered execution at trace scale (``cashmere-repro metrics run``).

    Same reduced platform as traced runs; the result carries a
    :class:`~repro.metrics.MetricsCollector` ready for
    :meth:`~repro.metrics.store.RunStore.ingest_result`.
    """
    app = make_app(resolve_app_name(app_name))
    cfg = replace(config or TRACE_PLATFORM, metrics=True)
    rt = ParallelRuntime(app, bench_params(app), cfg, protocol)
    assert rt.metrics is not None
    if interval_us is not None:
        if interval_us <= 0:
            raise SystemExit(f"metrics interval must be positive, "
                             f"got {interval_us}")
        # Nothing has run yet, so retuning the freshly attached collector
        # is equivalent to constructing it with this interval.
        rt.metrics.interval_us = float(interval_us)
        rt.metrics._next = float(interval_us)
    return rt.run()

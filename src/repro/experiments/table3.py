"""Experiment E3 — Table 3: detailed protocol statistics at 32 processors.

Runs every application under every protocol on the full 8-node x
4-processor platform and reports the paper's statistics rows: execution
time, lock/flag acquires, barriers, read/write faults, page transfers,
directory updates, write notices, exclusive-mode transitions, data
transferred, twin creations, and (two-level only) incoming diffs,
flush-updates, and shootdowns. All counts except execution time aggregate
over all 32 processors, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..stats.report import format_table, kilo
from .configs import APP_ORDER, FULL_PLATFORM, PROTOCOL_ORDER
from .sweep import RunSpec, run_cells

#: (row label, table3_row key, in thousands?)
ROW_SPEC = (
    ("Exec. time (s)", "exec_time_s", False),
    ("Lock/Flag Acquires (K)", "lock_flag_acquires", True),
    ("Barriers", "barriers", False),
    ("Read Faults (K)", "read_faults", True),
    ("Write Faults (K)", "write_faults", True),
    ("Page Transfers (K)", "page_transfers", True),
    ("Directory Updates (K)", "directory_updates", True),
    ("Write Notices (K)", "write_notices", True),
    ("Excl. Mode Transitions (K)", "excl_transitions", True),
    ("Data (Mbytes)", "data_mbytes", False),
    ("Twin Creations (K)", "twin_creations", True),
    ("Incoming Diffs", "incoming_diffs", False),
    ("Flush-Updates", "flush_updates", False),
    ("Shootdowns", "shootdowns", False),
)


@dataclass
class Table3Results:
    #: stats[app][protocol] -> table3_row dict.
    stats: dict[str, dict[str, dict]] = field(default_factory=dict)

    def cell(self, app: str, protocol: str, key: str):
        return self.stats[app][protocol].get(key)

    def format(self) -> str:
        sections = []
        for protocol in PROTOCOL_ORDER:
            apps = [a for a in self.stats if protocol in self.stats[a]]
            if not apps:
                continue
            rows = []
            for label, key, in_k in ROW_SPEC:
                values = []
                for app in apps:
                    v = self.cell(app, protocol, key)
                    if v is not None and in_k:
                        v = kilo(int(v))
                    values.append(v)
                rows.append((label, values))
            sections.append(format_table(
                f"Table 3 — {protocol} protocol at "
                f"{FULL_PLATFORM.total_procs} processors",
                apps, rows, col_width=10, label_width=28))
        return "\n\n".join(sections)


def run_table3(apps: tuple[str, ...] = APP_ORDER,
               protocols: tuple[str, ...] = PROTOCOL_ORDER,
               config=None, sweep=None) -> Table3Results:
    config = config or FULL_PLATFORM
    specs = [RunSpec.app_run(app_name, protocol, config)
             for app_name in apps for protocol in protocols]
    cells = iter(run_cells(specs, sweep))
    results = Table3Results()
    for app_name in apps:
        results.stats[app_name] = {}
        for protocol in protocols:
            results.stats[app_name][protocol] = next(cells).table3
    return results


if __name__ == "__main__":  # pragma: no cover
    import sys
    apps = tuple(sys.argv[1:]) or APP_ORDER
    print(run_table3(apps=apps).format())

"""Shared experiment configuration.

The experiments run the paper's evaluation at *scaled* geometry: 512-byte
pages and proportionally scaled application data sets, with the same
8-node x 4-processor cluster topology and the same placements. Page-size
dependent costs scale linearly from the paper's 8 Kbyte measurements
(see :class:`repro.config.MachineConfig`), and per-application compute
costs are calibrated so computation-to-communication ratios — the
quantity the evaluation's shape depends on — are representative.
"""

from __future__ import annotations

from ..config import MachineConfig, PLACEMENTS

#: Page size used throughout the scaled evaluation.
EXPERIMENT_PAGE_BYTES = 512

#: The full 32-processor platform (Table 3 / Figure 6 configuration).
FULL_PLATFORM = MachineConfig(nodes=8, procs_per_node=4,
                              page_bytes=EXPERIMENT_PAGE_BYTES)

#: Placement order used in Figure 7's bars.
PLACEMENT_ORDER = ("4:1", "4:4", "8:1", "8:2", "8:4",
                   "16:2", "16:4", "24:3", "32:4")

#: Reduced placement set for quick benchmark runs.
QUICK_PLACEMENTS = ("4:1", "8:4", "32:4")

#: The four protocols in the paper's presentation order.
PROTOCOL_ORDER = ("2L", "2LS", "1LD", "1L")

#: Table 2 application order.
APP_ORDER = ("SOR", "LU", "Water", "TSP", "Gauss", "Ilink", "Em3d",
             "Barnes")


def experiment_config(placement: str = "32:4") -> MachineConfig:
    """Machine configuration for a named placement at experiment scale."""
    total, per_node = PLACEMENTS[placement]
    return FULL_PLATFORM.with_placement(total, per_node)


def bench_params(app) -> dict:
    """Default experiment-scale parameters for an application instance."""
    return app.default_params()

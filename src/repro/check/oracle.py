"""The release-consistency coherence oracle.

Maintains a *golden* image of shared memory — the sequential execution a
data-race-free program is equivalent to, built by applying every traced
store in simulation-event order (which respects synchronization
causality, so for DRF programs it applies each word's writes in
happens-before order). The protocol's actual behaviour is cross-checked
against this image at three points:

* **every read** — a read whose word's happens-before-latest write is
  visible to the reader must return exactly that write's value (release
  consistency's contract for DRF programs). Racy words are skipped:
  their golden value is not well defined.

* **every barrier episode** (when the last processor arrives, i.e. after
  all arrival-side flushes) and at **end of run** — the authoritative
  copy of every page (the exclusive holder's frame if one exists,
  otherwise the home's master copy) must equal the golden image word for
  word, every surviving twin must equal its owner's frame (all local
  modifications are flushed at a barrier, and remote ones enter frame
  and twin together), and the replicated directory must satisfy its
  structural invariants.

Any divergence raises :class:`~repro.errors.CoherenceViolation` naming
the first divergent word with page/offset/event provenance. Unlike a
wrong benchmark answer, that points at the exact access where the
protocol went wrong.
"""

from __future__ import annotations

import numpy as np

from ..errors import CoherenceViolation, ProtocolError
from .detector import RaceDetector
from .events import MemoryEvent


class CoherenceOracle:
    """Golden-image cross-checking for one simulated execution."""

    def __init__(self, protocol, detector: RaceDetector) -> None:
        self.protocol = protocol
        self.detector = detector
        cfg = protocol.config
        self.wpp = cfg.words_per_page
        self.num_pages = cfg.num_pages
        #: The golden image: stores applied in event (= happens-before)
        #: order. Pages start zeroed, like the protocol's frames.
        self.golden = np.zeros(cfg.num_pages * self.wpp, dtype=np.float64)
        #: Global content checks performed (one per barrier episode plus
        #: the end-of-run check).
        self.global_checks = 0

    # --- per-access checks -------------------------------------------------

    def record_write(self, ev: MemoryEvent, value: float) -> None:
        self.golden[ev.word] = value

    def record_write_range(self, page: int, lo: int,
                           values: np.ndarray) -> None:
        base = page * self.wpp + lo
        self.golden[base:base + len(values)] = values

    def check_read(self, ev: MemoryEvent, value: float) -> None:
        """A read must observe the happens-before-latest write's value."""
        det = self.detector
        if ev.word in det.poisoned:
            return
        ws = det.words.get(ev.word)
        w = ws.write if ws is not None else None
        if w is not None and w.proc != ev.proc and not \
                det.vc[ev.proc].dominates_epoch(w.clock, w.proc):
            return  # racing write: the race report covers it
        expected = self.golden[ev.word]
        if value != expected:
            raise CoherenceViolation(
                f"stale read: {ev.describe()} returned {value!r}, but the "
                f"happens-before latest write"
                f"{' (' + w.describe() + ')' if w is not None else ''} "
                f"left {expected!r}",
                check="read-value", page=ev.page, offset=ev.offset,
                word=ev.word, expected=float(expected), actual=float(value),
                event=ev)

    # --- global checks -----------------------------------------------------

    def _authoritative(self, page: int) -> np.ndarray:
        proto = self.protocol
        holder = proto.directory.entry(page).exclusive_holder()
        if holder is not None:
            return proto.frames.frame(holder[0], page)
        return proto.master(page)

    def check_global(self, label: str) -> None:
        """Full cross-check at a sync quiescence point (barrier / end)."""
        self.global_checks += 1
        self._check_structure(label)
        self._check_content(label)
        self._check_twins(label)

    def _check_structure(self, label: str) -> None:
        try:
            self.protocol.check_invariants()
        except ProtocolError as exc:
            raise CoherenceViolation(
                f"structural invariant violated at {label}: {exc}",
                check="structure") from exc

    def _check_content(self, label: str) -> None:
        wpp = self.wpp
        poisoned = self.detector.poisoned
        for page in range(self.num_pages):
            actual = self._authoritative(page)
            want = self.golden[page * wpp:(page + 1) * wpp]
            diverging = np.nonzero(actual != want)[0]
            for off in diverging:
                word = page * wpp + int(off)
                if word in poisoned:
                    continue
                ws = self.detector.words.get(word)
                last = ws.write if ws is not None else None
                raise CoherenceViolation(
                    f"authoritative copy of page {page} diverges from the "
                    f"golden image at {label}: word {int(off)} (global "
                    f"{word}) is {actual[off]!r}, want {want[off]!r}"
                    + (f"; last write: {last.describe()}"
                       if last is not None else "; never written"),
                    check="page-content", page=page, offset=int(off),
                    word=word, expected=float(want[off]),
                    actual=float(actual[off]), event=last)

    def _check_twins(self, label: str) -> None:
        """At barrier quiescence every local modification has been
        flushed (writing frame and twin alike) and every remote one
        entered frame and twin together — so a surviving twin must equal
        its owner's frame exactly."""
        proto = self.protocol
        for owner in range(proto.num_owners):
            for page in range(self.num_pages):
                twin = proto._twin_of(owner, page)
                if twin is None or not proto.frames.has_frame(owner, page):
                    continue
                frame = proto.frames.frame(owner, page)
                diverging = np.nonzero(twin != frame)[0]
                if len(diverging):
                    off = int(diverging[0])
                    raise CoherenceViolation(
                        f"owner {owner}'s twin of page {page} diverges "
                        f"from its frame at {label}: word {off} is "
                        f"{twin[off]!r} in the twin, {frame[off]!r} in "
                        f"the frame (unflushed or mis-merged write)",
                        check="twin", page=page, offset=off,
                        word=page * self.wpp + off,
                        expected=float(frame[off]), actual=float(twin[off]))

"""Runtime correctness checking: race detection + coherence oracle.

Opt-in instrumentation that turns any simulated execution into a
correctness probe (see DESIGN.md, "Correctness checking"):

* :class:`RaceDetector` — vector-clock happens-before detection of
  application data races, with full event provenance;
* :class:`CoherenceOracle` — cross-checks what the protocol serves
  against a golden sequential image, at every read and at every
  barrier, raising :class:`~repro.errors.CoherenceViolation` on the
  first divergent word;
* :class:`CheckContext` / :func:`attach_checker` — the tracer object
  wiring both into the protocol fast path and the sync primitives;
* :class:`ModelChecker` — exhaustive small-config interleaving
  exploration of the real protocol code, checking the same invariants
  over *every* schedule instead of one (DESIGN.md §12).

Enable for whole application runs with ``MachineConfig(checking=True)``
or the ``repro.runtime.checking()`` context manager; run the model
checker with ``cashmere-repro modelcheck``.
"""

from .context import CheckContext, attach_checker
from .detector import MAX_RACE_REPORTS, RaceDetector
from .events import MemoryEvent, RaceReport
from .explore import (MUTANTS, Counterexample, ExplorationResult,
                      ModelChecker, MutantNoNotices, default_scripts,
                      small_config)
from .oracle import CoherenceOracle
from .vclock import VectorClock

__all__ = [
    "CheckContext", "attach_checker",
    "RaceDetector", "CoherenceOracle",
    "MemoryEvent", "RaceReport", "VectorClock",
    "MAX_RACE_REPORTS",
    "ModelChecker", "ExplorationResult", "Counterexample",
    "MutantNoNotices", "MUTANTS", "default_scripts", "small_config",
]

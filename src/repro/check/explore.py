"""Exhaustive small-config protocol model checking (DESIGN.md §12).

The simulator is deterministic, so a single application run exercises a
single interleaving of protocol actions. This module explores *all* of
them for small configurations: each simulated processor runs a short
straight-line script of shared-memory and lock operations, and a
breadth-first search enumerates every schedule (every order in which the
per-processor scripts can advance), executing the **real protocol code**
— the same :class:`~repro.protocol.base.BaseProtocol` subclasses the
applications run on — at every step.

This is sound because protocol operations execute atomically in the
simulation: a load, store, acquire, or release runs to completion
(including its explicit requests, which are computed synchronously by
:class:`~repro.protocol.messages.RequestEngine`) before the next
operation starts. The schedule of these atomic steps is therefore the
only source of nondeterminism, and enumerating it covers every behavior
the simulator can produce for the given scripts.

Checked at every step, via the same machinery application runs use:

* **structural invariants** — :meth:`BaseProtocol.check_invariants`
  (single exclusive writer per page, directory words agree with page
  tables, masters present);
* **no stale reads** — every ``load`` flows through an attached
  :class:`~repro.check.CheckContext`, whose coherence oracle compares
  the value read against the golden image (release consistency's
  contract for data-race-free programs);
* **quiescent content** — when every script has finished, the oracle's
  global check compares every page's authoritative copy against the
  golden image, word for word.

States are deduplicated: two schedules that reach the same protocol
state (same per-processor progress, same directory / page tables /
frames / notice boards / golden image / clocks) share their future, so
only one is expanded. Breadth-first order makes the first violating
schedule a *minimal* counterexample — no shorter schedule violates.

A counterexample is raised as
:class:`~repro.errors.InvariantViolation`, carrying the schedule (which
processor moved at each step) and the decoded operation trace; it
replays exactly via :meth:`ModelChecker.replay`, and
:meth:`ModelChecker.export_counterexample` renders it through the
Chrome trace exporter for timeline inspection.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..cluster.machine import Cluster, Processor
from ..config import MachineConfig
from ..errors import (CashmereError, CoherenceViolation, InvariantViolation,
                      ProtocolError)
from ..protocol import make_protocol
from ..protocol.cashmere2l import Cashmere2L
from .context import CheckContext

#: An operation is a plain tuple, first element the opcode:
#:   ("acquire", lock_id)
#:   ("release", lock_id)
#:   ("load", page, offset)
#:   ("store", page, offset, value)
Op = tuple

#: Epsilon added to a release's visibility so an acquirer's clock is
#: strictly past it (mirrors the loop-back wait of ``MCLock``).
_EPS = 1e-6


def default_scripts() -> list[list[Op]]:
    """The standard 2-node x 2-proc x 2-page exploration workload.

    Script *i* runs on processor *i* (processors 0,1 on node 0 and 2,3
    on node 1). With one page per superpage, page 0 homes on owner 0 and
    page 1 on owner 1, so the set exercises, across schedules: home-node
    writes, remote fetches, write notices and acquire-side invalidation
    (processor 2 re-reads page 0 after processor 0's update), exclusive-
    mode entry (processor 1 is page 1's sole writer) and the exclusive
    break (processor 3, on page 1's home, reads it back). Every access
    is lock-ordered, so the scripts are data-race-free and the coherence
    oracle's stale-read check applies to every load.
    """
    return [
        # proc 0 (node 0): writes page 0 under lock 0.
        [("acquire", 0), ("store", 0, 0, 1.0), ("release", 0)],
        # proc 1 (node 0): sole writer of (remote-homed) page 1.
        [("acquire", 1), ("store", 1, 0, 3.0), ("release", 1)],
        # proc 2 (node 1): reads page 0 before and after proc 0's write —
        # the second read is the one a lost invalidation makes stale.
        [("acquire", 0), ("load", 0, 0), ("release", 0),
         ("acquire", 0), ("load", 0, 0), ("release", 0)],
        # proc 3 (node 1, page 1's home): reads page 1 back, forcing the
        # exclusive break when proc 1 went exclusive first.
        [("acquire", 1), ("load", 1, 0), ("release", 1)],
    ]


def small_config(*, nodes: int = 2, procs_per_node: int = 2,
                 page_bytes: int = 64, num_pages: int = 2) -> MachineConfig:
    """A model-checking machine: tiny pages, one page per superpage."""
    return MachineConfig(nodes=nodes, procs_per_node=procs_per_node,
                         page_bytes=page_bytes,
                         shared_bytes=page_bytes * num_pages,
                         superpage_pages=1)


class MutantNoNotices(Cashmere2L):
    """A deliberately broken 2L: releases never send write notices.

    Other nodes' cached copies are never invalidated, so a re-read after
    a remote update returns stale data — the canonical protocol bug the
    model checker must catch (and catch with a minimal schedule).
    """

    name = "2L-mutant"

    def _send_write_notices(self, proc, st, page) -> None:
        pass  # the bug: sharers never hear about the update


#: Named mutant factories for the CLI and tests.
MUTANTS: dict[str, Callable[[Cluster], object]] = {
    "no-notices": lambda cluster: MutantNoNotices(cluster),
}


@dataclass
class Counterexample:
    """A violating schedule, decoded for humans and for replay."""

    schedule: tuple[int, ...]
    #: (step index, processor id, op tuple) for every step.
    steps: tuple[tuple[int, int, Op], ...]
    error: CashmereError

    def describe(self) -> str:
        lines = [f"violation after {len(self.schedule)} steps: {self.error}"]
        for i, proc, op in self.steps:
            lines.append(f"  step {i}: proc {proc}: {op}")
        return "\n".join(lines)


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    #: Distinct states expanded (BFS nodes).
    states: int = 0
    #: Prefix replays executed (work measure).
    replays: int = 0
    #: Schedules that ran every script to completion.
    complete_schedules: int = 0
    #: Length of the longest schedule expanded.
    max_depth_seen: int = 0
    #: True when the frontier drained without hitting a budget:
    #: every reachable schedule (modulo state dedup) was covered.
    exhaustive: bool = False
    counterexample: Counterexample | None = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def summary(self) -> dict:
        return {
            "states": self.states,
            "replays": self.replays,
            "complete_schedules": self.complete_schedules,
            "max_depth_seen": self.max_depth_seen,
            "exhaustive": self.exhaustive,
            "ok": self.ok,
            "counterexample": (None if self.counterexample is None
                               else self.counterexample.describe()),
        }


class _Lock:
    """The explorer's lock: the logical core of ``MCLock``.

    Mutual exclusion plus the release-visibility rule: an acquirer's
    clock advances past the releaser's release (release consistency's
    happens-before edge), so write notices posted by the release are
    visible to the acquire-side collection, exactly as the loop-back
    wait guarantees in the full simulation.
    """

    __slots__ = ("holder", "free_visible_at")

    def __init__(self) -> None:
        self.holder: int | None = None
        self.free_visible_at = 0.0


class _World:
    """One fresh protocol instance plus script progress."""

    def __init__(self, config: MachineConfig, scripts: list[list[Op]],
                 protocol: str | Callable[[Cluster], object]) -> None:
        self.cluster = Cluster(config)
        if callable(protocol):
            self.protocol = protocol(self.cluster)
        else:
            self.protocol = make_protocol(protocol, self.cluster)
        self.checker = CheckContext(self.cluster, self.protocol)
        self.protocol.tracer = self.checker
        self.scripts = scripts
        self.progress = [0] * len(scripts)
        self.locks: dict[int, _Lock] = {}
        self.mc_latency = config.costs.mc_latency

    def _lock(self, lock_id: int) -> _Lock:
        lock = self.locks.get(lock_id)
        if lock is None:
            lock = self.locks[lock_id] = _Lock()
        return lock

    def proc(self, idx: int) -> Processor:
        return self.cluster.processors[idx]

    def done(self, idx: int) -> bool:
        return self.progress[idx] >= len(self.scripts[idx])

    def all_done(self) -> bool:
        return all(self.done(i) for i in range(len(self.scripts)))

    def enabled(self) -> list[int]:
        """Script indices whose next op can run now."""
        runnable = []
        for i in range(len(self.scripts)):
            if self.done(i):
                continue
            op = self.scripts[i][self.progress[i]]
            if op[0] == "acquire" and self._lock(op[1]).holder is not None:
                continue
            runnable.append(i)
        return runnable

    def step(self, idx: int) -> None:
        """Run script ``idx``'s next op through the real protocol."""
        op = self.scripts[idx][self.progress[idx]]
        proc = self.proc(idx)
        proto = self.protocol
        kind = op[0]
        if kind == "acquire":
            lock = self._lock(op[1])
            if lock.holder is not None:
                raise ProtocolError(
                    f"schedule error: proc {idx} acquires held lock {op[1]}")
            if proc.clock < lock.free_visible_at:
                proc.charge(lock.free_visible_at - proc.clock, "comm_wait")
            lock.holder = idx
            proc.stats.bump("lock_acquires")
            proto.acquire_sync(proc)
            self.checker.on_acquire(proc, ("lock", op[1]))
        elif kind == "release":
            lock = self._lock(op[1])
            if lock.holder != idx:
                raise ProtocolError(
                    f"schedule error: proc {idx} releases lock {op[1]} "
                    f"held by {lock.holder}")
            proto.release_sync(proc)
            self.checker.on_release(proc, ("lock", op[1]))
            lock.holder = None
            lock.free_visible_at = proc.clock + self.mc_latency + _EPS
        elif kind == "load":
            proto.load(proc, op[1], op[2])
        elif kind == "store":
            proto.store(proc, op[1], op[2], op[3])
        else:
            raise ProtocolError(f"unknown model-check op {op!r}")
        self.progress[idx] += 1
        proto.check_invariants()
        if self.all_done():
            self.checker.oracle.check_global("end of schedule")

    # ------------------------------------------------------------- hashing

    def state_key(self) -> str:
        """Digest of everything the protocol's future can depend on.

        Simulated clocks are included: two schedules merge only when the
        merged state is *identical*, timing included, so dedup can never
        hide a behavior. Independent steps of different processors
        commute bit-exactly (each processor's clock depends only on its
        own history and its lock interactions), which is where the
        pruning pays off.
        """
        proto = self.protocol
        cfg = self.cluster.config
        parts: list[object] = [tuple(self.progress)]
        parts.append(tuple(round(p.clock, 6)
                           for p in self.cluster.processors))
        parts.append(tuple(sorted(
            (lid, lock.holder, round(lock.free_visible_at, 6))
            for lid, lock in self.locks.items())))
        for page in range(cfg.num_pages):
            e = proto.directory.entry(page)
            # Audited F101 suppression: state_key hashes the transient
            # deadline instead of acting on it — a digest must see the
            # raw field (see tests/test_lint.py::test_repo_tree_is_clean).
            parts.append((e.home_owner, e.home_is_default,
                          round(e.pending_until, 6),  # cashmere: ignore[F101]
                          e.state_tuple()))
            parts.append(proto.master(page).tobytes())
        for owner in range(proto.num_owners):
            parts.append(tuple(tuple(row)
                               for row in proto.tables[owner].rows))
            frames = proto.frames.frames_of(owner)
            parts.append(tuple(sorted(
                (page, arr.tobytes()) for page, arr in frames.items())))
            board = proto.boards[owner]
            parts.append(tuple(tuple(
                (wn.page, wn.from_owner, round(wn.visible_at, 6), wn.lost)
                for wn in bin_) for bin_ in board.bins))
        for st in proto._ps:
            parts.append((tuple(sorted(st.dirty)),
                          tuple(sorted(st.nle.pages)),
                          tuple(st.notices._queue),
                          st.acquire_ts,
                          tuple(sorted(st.excl_pages)),
                          st.arrival_epoch))
        node_state = getattr(proto, "node_state", None)
        if node_state is not None:  # two-level protocols
            for ns in node_state:
                parts.append((ns.logical, ns.last_release_ts))
                parts.append(tuple(sorted(
                    (page, m.flush_ts, m.update_ts, m.wn_ts,
                     round(m.flush_end_real, 6),
                     None if m.twin is None else m.twin.tobytes())
                    for page, m in ns.meta.items())))
        else:  # one-level protocols keep twins per owner
            for meta in proto.meta:
                parts.append(tuple(sorted(
                    (page, twin.tobytes())
                    for page, twin in meta.twins.items())))
        det = self.checker.detector
        parts.append(self.checker.oracle.golden.tobytes())
        parts.append(tuple(tuple(vc.c) for vc in det.vc))
        parts.append(tuple(sorted(
            (key, tuple(vc.c)) for key, vc in det.sync_clocks.items())))
        parts.append(tuple(sorted(
            (word,
             None if ws.write is None else (ws.write.proc, ws.write.clock),
             tuple(sorted((p, ev.clock) for p, ev in ws.reads.items())))
            for word, ws in det.words.items())))
        return hashlib.sha256(repr(parts).encode()).hexdigest()


@dataclass
class ModelChecker:
    """Breadth-first exhaustive exploration of one script set."""

    protocol: str | Callable[[Cluster], object] = "2L"
    scripts: list[list[Op]] = field(default_factory=default_scripts)
    config: MachineConfig | None = None
    #: Budgets: exploration stops (``exhaustive=False``) when either is
    #: hit. ``max_depth`` defaults to the total op count — full depth.
    max_states: int = 100_000
    max_depth: int | None = None

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = small_config()
        if self.config.faults is not None:
            raise ProtocolError(
                "model checking explores schedules, not injected faults; "
                "run with faults=None")
        if len(self.scripts) > self.config.total_procs:
            raise ProtocolError(
                f"{len(self.scripts)} scripts need more than the config's "
                f"{self.config.total_procs} processors")
        self._total_ops = sum(len(s) for s in self.scripts)
        if self.max_depth is None:
            self.max_depth = self._total_ops

    # ------------------------------------------------------------- replay

    def _fresh(self) -> _World:
        return _World(self.config, self.scripts, self.protocol)

    def _replay(self, schedule: tuple[int, ...]) -> _World:
        """Execute a known-good schedule from a fresh world."""
        world = self._fresh()
        for idx in schedule:
            world.step(idx)
        return world

    def replay(self, schedule: tuple[int, ...]) -> _World:
        """Public replay: re-run a counterexample (or any schedule).

        Raises the same violation at the same step — the schedule *is*
        the reproduction recipe.
        """
        return self._replay(schedule)

    def decode(self, schedule: tuple[int, ...]) \
            -> tuple[tuple[int, int, Op], ...]:
        """Expand a schedule into (step, processor, op) triples."""
        progress = [0] * len(self.scripts)
        steps = []
        for i, idx in enumerate(schedule):
            steps.append((i, idx, self.scripts[idx][progress[idx]]))
            progress[idx] += 1
        return tuple(steps)

    # ------------------------------------------------------------- explore

    def run(self) -> ExplorationResult:
        """Explore; returns the result, with any minimal counterexample."""
        result = ExplorationResult()
        root = self._fresh()
        result.replays += 1
        seen = {root.state_key()}
        frontier: deque[tuple[int, ...]] = deque([()])
        result.states = 1
        while frontier:
            schedule = frontier.popleft()
            if len(schedule) >= self.max_depth:
                continue
            parent = self._replay(schedule)
            result.replays += 1
            enabled = parent.enabled()
            if not enabled:
                if not parent.all_done():
                    stuck = [i for i in range(len(self.scripts))
                             if not parent.done(i)]
                    err = ProtocolError(
                        f"deadlock: scripts {stuck} blocked with no "
                        f"runnable step")
                    result.counterexample = Counterexample(
                        schedule, self.decode(schedule), err)
                    return result
                result.complete_schedules += 1
                continue
            for idx in enabled:
                child_schedule = schedule + (idx,)
                # The first child can advance the parent world in place;
                # the rest replay the (validated) prefix.
                if idx == enabled[0]:
                    child = parent
                else:
                    child = self._replay(schedule)
                    result.replays += 1
                try:
                    child.step(idx)
                except (CoherenceViolation, ProtocolError) as exc:
                    result.counterexample = Counterexample(
                        child_schedule, self.decode(child_schedule), exc)
                    return result
                if child.all_done():
                    result.complete_schedules += 1
                    result.max_depth_seen = max(result.max_depth_seen,
                                                len(child_schedule))
                    continue
                key = child.state_key()
                if key in seen:
                    continue
                seen.add(key)
                if len(seen) > self.max_states:
                    return result  # budget hit: not exhaustive
                result.states += 1
                result.max_depth_seen = max(result.max_depth_seen,
                                            len(child_schedule))
                frontier.append(child_schedule)
        result.exhaustive = True
        return result

    def check(self) -> ExplorationResult:
        """Explore and raise on violation (library convenience)."""
        result = self.run()
        cx = result.counterexample
        if cx is not None:
            raise InvariantViolation(
                cx.describe(), schedule=cx.schedule, trace=cx.steps,
                cause=cx.error)
        return result

    # --------------------------------------------------------------- export

    def export_counterexample(self, counterexample: Counterexample,
                              path) -> int:
        """Replay a counterexample under the event tracer and write the
        Chrome trace (PR 2 exporter); returns the event count."""
        from ..trace import Tracer, write_chrome_trace
        world = self._fresh()
        tracer = Tracer()
        world.cluster.trace = tracer
        world.cluster.mc.trace = tracer
        world.protocol.trace = tracer
        for board in world.protocol.boards:
            board.trace = tracer
        for proc in world.cluster.processors:
            proc.trace = tracer
        for i, idx in enumerate(counterexample.schedule):
            op = self.scripts[idx][world.progress[idx]]
            tracer.instant("modelcheck_step", world.proc(idx),
                           world.proc(idx).clock, obj=i, op=repr(op))
            try:
                world.step(idx)
            except (CoherenceViolation, ProtocolError) as exc:
                tracer.instant("modelcheck_violation", world.proc(idx),
                               world.proc(idx).clock, obj=i,
                               error=str(exc))
                break
        tracer.finalize(kind="modelcheck-counterexample",
                        # otherData keeps scalars only: encode as text.
                        schedule=" ".join(map(str, counterexample.schedule)),
                        error=str(counterexample.error))
        return write_chrome_trace(tracer, path)

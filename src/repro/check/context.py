"""Wiring: one object that protocols and sync primitives call into.

A :class:`CheckContext` bundles a :class:`~repro.check.RaceDetector`
and a :class:`~repro.check.CoherenceOracle` and implements the tracer
interface the instrumented code expects (``on_load``/``on_store``/
``on_acquire``/``on_release``/``on_barrier_arrive``/…). Attach one with
:func:`attach_checker`; every subsequent shared-memory access and sync
event of the execution is traced.

The runtime (:class:`~repro.runtime.ParallelRuntime`) attaches a
context automatically when checking is enabled — via the
``MachineConfig.checking`` flag or the ``repro.runtime.checking()``
context manager — and calls :meth:`finalize` after the run.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataRaceError
from .detector import RaceDetector
from .oracle import CoherenceOracle


class CheckContext:
    """The tracer: routes instrumentation hooks to detector and oracle."""

    def __init__(self, cluster, protocol, *,
                 fail_fast: bool = False) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.detector = RaceDetector(cluster, fail_fast=fail_fast)
        self.oracle = CoherenceOracle(protocol, self.detector)
        self.finalized = False

    # --- convenience -------------------------------------------------------

    @property
    def races(self):
        return self.detector.races

    @property
    def race_count(self) -> int:
        return self.detector.race_count

    # --- memory hooks (called from the protocol fast path) -----------------

    def on_load(self, proc, page: int, offset: int, value: float) -> None:
        ev = self.detector.on_read(proc, page, offset)
        self.oracle.check_read(ev, value)

    def on_store(self, proc, page: int, offset: int, value: float) -> None:
        ev = self.detector.on_write(proc, page, offset)
        self.oracle.record_write(ev, value)

    def on_load_range(self, proc, page: int, lo: int,
                      values: np.ndarray) -> None:
        det, oracle = self.detector, self.oracle
        for i, value in enumerate(values):
            ev = det.on_read(proc, page, lo + i)
            oracle.check_read(ev, value)

    def on_store_range(self, proc, page: int, lo: int,
                       values: np.ndarray) -> None:
        det = self.detector
        for i in range(len(values)):
            det.on_write(proc, page, lo + i)
        self.oracle.record_write_range(page, lo, values)

    # --- synchronization hooks (called from repro.sync) --------------------

    def on_acquire(self, proc, key: tuple) -> None:
        self.detector.on_acquire(proc, key)

    def on_release(self, proc, key: tuple) -> None:
        self.detector.on_release(proc, key)

    def on_barrier_arrive(self, proc, episode: int) -> None:
        if self.detector.on_barrier_arrive(proc, episode):
            # Last arrival: all arrival-side flushes have run, the
            # protocol is quiescent — cross-check against the golden image.
            self.oracle.check_global(f"barrier {episode}")

    def on_barrier_depart(self, proc, episode: int) -> None:
        self.detector.on_barrier_depart(proc, episode)

    # --- end of run --------------------------------------------------------

    def finalize(self, *, raise_on_race: bool = True) -> None:
        """End-of-run oracle check; raise if the execution raced."""
        if self.finalized:
            return
        self.finalized = True
        self.oracle.check_global("end of run")
        if raise_on_race and self.detector.race_count:
            first = self.detector.races[0]
            raise DataRaceError(
                f"{self.detector.race_count} data race(s) detected; "
                f"first: {first.describe()}")


def attach_checker(cluster, protocol, *,
                   fail_fast: bool = False) -> CheckContext:
    """Create a :class:`CheckContext` and install it as the protocol's
    tracer. Must run before any shared access or sync event; accesses
    already performed are invisible to the checker."""
    ctx = CheckContext(cluster, protocol, fail_fast=fail_fast)
    protocol.tracer = ctx
    return ctx

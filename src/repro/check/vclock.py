"""Vector clocks for the happens-before race detector.

One integer component per simulated processor. A processor's component
of its own clock doubles as its *epoch* counter (FastTrack-style): it is
incremented at every release-type synchronization event, so all accesses
inside one sync-free region share one epoch and a single ``(clock,
proc)`` pair represents them when checking happens-before against
another processor's vector clock.
"""

from __future__ import annotations


class VectorClock:
    """A fixed-width vector of logical clocks, one per processor."""

    __slots__ = ("c",)

    def __init__(self, nprocs: int) -> None:
        self.c = [0] * nprocs

    def copy(self) -> "VectorClock":
        vc = VectorClock.__new__(VectorClock)
        vc.c = list(self.c)
        return vc

    def __getitem__(self, proc: int) -> int:
        return self.c[proc]

    def __len__(self) -> int:
        return len(self.c)

    def tick(self, proc: int) -> int:
        """Advance ``proc``'s own component (start a new epoch)."""
        self.c[proc] += 1
        return self.c[proc]

    def join(self, other: "VectorClock") -> bool:
        """Elementwise maximum, in place; True when anything advanced."""
        changed = False
        mine, theirs = self.c, other.c
        for i in range(len(mine)):
            if theirs[i] > mine[i]:
                mine[i] = theirs[i]
                changed = True
        return changed

    def dominates_epoch(self, clock: int, proc: int) -> bool:
        """Does an event at epoch ``(clock, proc)`` happen-before this
        clock's owner? (The FastTrack ``epoch <= VC`` test.)"""
        return clock <= self.c[proc]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self.c}"

"""Event records and race reports: the provenance the checker surfaces.

Every traced shared-memory access becomes a :class:`MemoryEvent`
carrying enough context to reconstruct *what happened where and when*:
the processor (and its node), the page and word offset, the simulated
time, and the access epoch used for the happens-before test. A
:class:`RaceReport` pairs the two conflicting events.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryEvent:
    """One traced shared-memory access."""

    kind: str          # "read" or "write"
    proc: int          # global processor id
    node: int          # node id of the processor
    page: int
    offset: int        # word offset within the page
    word: int          # global word index (page * words_per_page + offset)
    sim_time: float    # the accessing processor's clock, microseconds
    clock: int         # the accessor's epoch counter at the access

    @property
    def epoch(self) -> tuple[int, int]:
        """The FastTrack epoch ``(clock, proc)`` of this access."""
        return (self.clock, self.proc)

    def describe(self) -> str:
        return (f"{self.kind} of page {self.page} word {self.offset} "
                f"(global word {self.word}) by p{self.proc} "
                f"(node {self.node}) at t={self.sim_time:.2f}us "
                f"[epoch {self.clock}@p{self.proc}]")


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting, happens-before-concurrent accesses to one word."""

    word: int
    page: int
    offset: int
    first: MemoryEvent    # the earlier-traced access
    second: MemoryEvent   # the access whose check flagged the race

    @property
    def kind(self) -> str:
        """``"write-write"``, ``"read-write"`` or ``"write-read"``."""
        return f"{self.first.kind}-{self.second.kind}"

    def describe(self) -> str:
        return (f"data race on page {self.page} word {self.offset} "
                f"(global word {self.word}): {self.first.describe()} "
                f"is concurrent with {self.second.describe()}")

"""The vector-clock happens-before data-race detector.

Cashmere's correctness argument (Section 2 of the paper) only holds for
data-race-free programs, so the protocols are free to serve stale data
to racy ones. This detector makes the DRF precondition checkable: it
observes every shared-memory access and every synchronization event of
a simulated execution and flags conflicting accesses that are not
ordered by happens-before, with full provenance (processor, page, word
offset, simulated time, and the racing access pair).

The algorithm is FastTrack-flavoured: each processor carries a vector
clock; each lock, flag word, and barrier episode carries a clock that
release-type events join into and acquire-type events join from; each
*touched* shared word lazily tracks its last write epoch and the last
read epoch per processor. Same-epoch accesses collapse, so the per-word
state stays small.

Synchronization model (matching :mod:`repro.sync`):

* ``MCLock`` release -> subsequent acquire of the same lock;
* ``FlagSet.set`` (a release) -> a completed ``wait`` on the same flag
  word (``peek`` is unsynchronized on purpose and creates no edge);
* barrier arrival (a release) -> every departure of the same episode.
"""

from __future__ import annotations

from ..errors import DataRaceError
from .events import MemoryEvent, RaceReport
from .vclock import VectorClock

#: Stop accumulating full reports past this many races (the counter
#: keeps counting); racy programs can otherwise produce one report per
#: access pair and drown the interesting first few.
MAX_RACE_REPORTS = 64


class _WordState:
    """Per-word access history: last write epoch + last read per proc."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        self.write: MemoryEvent | None = None
        self.reads: dict[int, MemoryEvent] = {}


class RaceDetector:
    """Happens-before race detection over one simulated execution."""

    def __init__(self, cluster, *, fail_fast: bool = False) -> None:
        self.cluster = cluster
        self.fail_fast = fail_fast
        n = cluster.num_procs
        self.nprocs = n
        self.wpp = cluster.config.words_per_page
        #: One vector clock per processor. Each processor's own component
        #: starts at 1: with all-zero clocks, an access in a processor's
        #: first epoch would carry clock 0 and ``0 <= vc[other] == 0``
        #: would make it look ordered before everyone else's.
        self.vc = [VectorClock(n) for _ in range(n)]
        for i in range(n):
            self.vc[i].c[i] = 1
        #: Clocks of lock/flag sync objects, keyed by object identity
        #: tuples such as ``("lock", 3)`` or ``("flag", "rows", 7)``.
        self.sync_clocks: dict[tuple, VectorClock] = {}
        #: Accumulating clock + arrival/departure counts per barrier
        #: episode (pruned once everyone has departed).
        self._barrier_clocks: dict[int, VectorClock] = {}
        self._barrier_arrived: dict[int, int] = {}
        self._barrier_departed: dict[int, int] = {}
        #: Lazily created per-word access state.
        self.words: dict[int, _WordState] = {}
        #: Every race found, in detection order (capped; see counter).
        self.races: list[RaceReport] = []
        #: Total races detected (not capped).
        self.race_count = 0
        #: Words involved in at least one race: the value oracle skips
        #: them (a racy word has no well-defined golden value).
        self.poisoned: set[int] = set()

    # --- memory accesses ---------------------------------------------------

    def _event(self, proc, kind: str, page: int, offset: int) -> MemoryEvent:
        pid = proc.global_id
        return MemoryEvent(kind=kind, proc=pid, node=proc.node.id,
                           page=page, offset=offset,
                           word=page * self.wpp + offset,
                           sim_time=proc.clock, clock=self.vc[pid][pid])

    def _report(self, proc, first: MemoryEvent,
                second: MemoryEvent) -> None:
        self.race_count += 1
        proc.stats.bump("check_races")
        self.poisoned.add(second.word)
        if len(self.races) < MAX_RACE_REPORTS:
            self.races.append(RaceReport(
                word=second.word, page=second.page, offset=second.offset,
                first=first, second=second))
        if self.fail_fast:
            raise DataRaceError(self.races[-1].describe())

    def on_read(self, proc, page: int, offset: int) -> MemoryEvent:
        """Trace one word read; flag a write-read race if concurrent."""
        proc.stats.bump("check_events")
        ev = self._event(proc, "read", page, offset)
        ws = self.words.get(ev.word)
        if ws is None:
            ws = self.words[ev.word] = _WordState()
        my_vc = self.vc[ev.proc]
        w = ws.write
        if w is not None and w.proc != ev.proc \
                and not my_vc.dominates_epoch(w.clock, w.proc):
            self._report(proc, w, ev)
        ws.reads[ev.proc] = ev
        return ev

    def on_write(self, proc, page: int, offset: int) -> MemoryEvent:
        """Trace one word write; flag any concurrent prior read/write."""
        proc.stats.bump("check_events")
        ev = self._event(proc, "write", page, offset)
        ws = self.words.get(ev.word)
        if ws is None:
            ws = self.words[ev.word] = _WordState()
        my_vc = self.vc[ev.proc]
        w = ws.write
        if w is not None and w.proc != ev.proc \
                and not my_vc.dominates_epoch(w.clock, w.proc):
            self._report(proc, w, ev)
        for r in ws.reads.values():
            if r.proc != ev.proc \
                    and not my_vc.dominates_epoch(r.clock, r.proc):
                self._report(proc, r, ev)
        # This write happens-after (or races with) everything recorded;
        # it becomes the sole history for the word.
        ws.write = ev
        ws.reads.clear()
        return ev

    # --- synchronization events -------------------------------------------

    def on_release(self, proc, key: tuple) -> None:
        """A release-type event on a lock/flag: publish our clock."""
        pid = proc.global_id
        clock = self.sync_clocks.get(key)
        if clock is None:
            clock = self.sync_clocks[key] = VectorClock(self.nprocs)
        clock.join(self.vc[pid])
        self.vc[pid].tick(pid)
        proc.stats.bump("check_vc_merges")

    def on_acquire(self, proc, key: tuple) -> None:
        """An acquire-type event: adopt the sync object's clock."""
        clock = self.sync_clocks.get(key)
        if clock is not None:
            self.vc[proc.global_id].join(clock)
            proc.stats.bump("check_vc_merges")

    def on_barrier_arrive(self, proc, episode: int) -> bool:
        """Merge the arriver into the episode clock; True on last arrival."""
        pid = proc.global_id
        clock = self._barrier_clocks.get(episode)
        if clock is None:
            clock = self._barrier_clocks[episode] = VectorClock(self.nprocs)
            self._barrier_arrived[episode] = 0
            self._barrier_departed[episode] = 0
        clock.join(self.vc[pid])
        self.vc[pid].tick(pid)
        proc.stats.bump("check_vc_merges")
        self._barrier_arrived[episode] += 1
        return self._barrier_arrived[episode] == self.nprocs

    def on_barrier_depart(self, proc, episode: int) -> None:
        """Adopt the merged episode clock on departure."""
        clock = self._barrier_clocks.get(episode)
        if clock is not None:
            self.vc[proc.global_id].join(clock)
            proc.stats.bump("check_vc_merges")
        # Prune the episode once everyone has left.
        self._barrier_departed[episode] += 1
        if self._barrier_departed[episode] == self.nprocs:
            del self._barrier_clocks[episode]
            del self._barrier_arrived[episode]
            del self._barrier_departed[episode]

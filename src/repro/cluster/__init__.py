"""Simulated cluster hardware: nodes, processors, buses."""

from .machine import Cluster, Node, Processor

__all__ = ["Cluster", "Node", "Processor"]

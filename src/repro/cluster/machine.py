"""The simulated cluster: nodes, processors, and the node memory bus.

A :class:`Cluster` instantiates the topology described by a
:class:`~repro.config.MachineConfig`: ``nodes`` SMP nodes of
``procs_per_node`` processors, each node with a shared memory bus
(a serialized resource — the AlphaServer 2100's single bus — whose
contention produces the negative clustering effects of Section 3.3.3),
all connected by one :class:`~repro.memchannel.MemoryChannel`.

:class:`Processor` is the execution context simulated processes run on:
it owns the local clock, the Figure-6 time buckets, the Table-3 event
counters, and the polling hook through which explicit requests are
serviced (Section 2.3, Figure 5).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..config import MachineConfig
from ..errors import NodeCrashedError
from ..memchannel import FaultInjector, MemoryChannel
from ..sim.engine import Condition, SerialResource, Simulator
from ..stats.counters import ProcStats
from ..sim.process import ExecutionContext


class Node:
    """One SMP node: processors, a shared bus, and a request queue.

    The request queue models the per-node multi-bin request buffers of
    Figure 2; delivery is by polling (processors drain the queue at yield
    points) or by interrupt, per the machine configuration.
    """

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.cluster = cluster
        self.id = node_id
        self.processors: list[Processor] = []
        self.bus = SerialResource(name=f"bus[{node_id}]")
        #: FIFO of (target_proc_id_or_None, callable(handler_proc) -> None).
        self.request_queue: list[tuple[int | None, Callable]] = []
        self.request_cond = Condition(cluster.sim, name=f"requests[{node_id}]")
        #: Request-service timeline: handlers run one at a time per node
        #: (this serialization is the one-level protocols' LU bottleneck).
        self.service = SerialResource(name=f"service[{node_id}]")

    def post_request(self, at: float, handler: Callable,
                     target_proc: int | None = None) -> None:
        """Enqueue an explicit request arriving at time ``at``.

        Waiting processors are woken so they can poll it; running
        processors will find it at their next yield point.
        """
        self.request_queue.append((target_proc, handler))
        self.request_cond.fire(at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} procs={len(self.processors)}>"


class Processor(ExecutionContext):
    """One simulated CPU.

    ``clock`` is its local time in microseconds. ``charge`` advances the
    clock into a named Figure-6 bucket. ``run_compute`` additionally books
    capacity-miss traffic on the node bus (contended) and pays the polling
    check inserted at loop back-edges.
    """

    def __init__(self, node: Node, local_id: int, global_id: int) -> None:
        self.node = node
        self.cluster = node.cluster
        self.local_id = local_id
        self.global_id = global_id
        self.clock = 0.0
        self.stats = ProcStats()
        # Hoisted immutable config state (hot in run_compute/charge).
        config = node.cluster.config
        self._costs = config.costs
        self._polling = config.polling
        #: Optional event tracer (:class:`repro.trace.Tracer`); when set,
        #: every bucket charge is recorded as a duration span.
        self.trace = None
        #: Installed by the protocol runtime: called with (proc, handler)
        #: to run one polled request. None before a protocol attaches.
        self.request_runner: Callable[["Processor", Callable], None] | None = None
        #: Crash-stop time (fault injection): once the local clock passes
        #: this, the processor stops servicing requests — peers observe
        #: the crash as unanswered requests and exhaust their retry
        #: budget. ``inf`` (the default) means "never crashes".
        self._crash_at = float("inf")

    # --- ExecutionContext ---------------------------------------------------

    def charge(self, us: float, bucket: str) -> None:
        if us <= 0:
            return
        if self.trace is not None:
            self.trace.span(bucket, self, self.clock, us)
        self.clock += us
        # Inlined ProcStats.charge: this is the hottest call in the whole
        # simulation (every simulated microsecond passes through here).
        self.stats.buckets[bucket] += us

    def run_compute(self, cpu_us: float, mem_bytes: float) -> None:
        costs = self._costs
        if self.trace is not None:
            self.charge(cpu_us, "user")
            if mem_bytes > 0:
                service = mem_bytes / costs.node_bus_bandwidth
                begin, end = self.node.bus.acquire(self.clock, service)
                # Queueing delay and the transfer itself both stall the
                # CPU; the paper counts cache-miss time as User time.
                self.charge(end - self.clock, "user")
            if self._polling:
                self.charge(costs.poll_check, "polling")
            return
        # Untraced fast path: identical arithmetic to the charges above,
        # with the per-call bucket bookkeeping inlined — and the bus
        # booking inlined too when it lands past the end of the timeline
        # (SerialResource.acquire's own fast path), the overwhelmingly
        # common case for a processor whose clock advances monotonically.
        buckets = self.stats.buckets
        clock = self.clock
        if cpu_us > 0:
            buckets["user"] += cpu_us
            clock += cpu_us
        if mem_bytes > 0:
            service = mem_bytes / costs.node_bus_bandwidth
            bus = self.node.bus
            iv = bus._intervals
            if not iv or iv[-1][1] <= clock:
                bus.total_requests += 1
                bus.busy_time += service
                if service > 0:
                    if iv and iv[-1][1] == clock:
                        iv[-1][1] = clock + service
                    else:
                        iv.append([clock, clock + service])
                        if len(iv) > 4096:
                            del iv[:2048]
                    # begin == clock: no queueing delay. The delta is
                    # computed as ``end - clock`` (not ``service``) so the
                    # accumulation is bit-identical to the traced path's
                    # ``charge(end - self.clock)``.
                    delta = clock + service - clock
                    buckets["user"] += delta
                    clock += delta
            else:
                begin, end = bus.acquire(clock, service)
                delta = end - clock
                if delta > 0:
                    buckets["user"] += delta
                    clock += delta
        self.clock = clock
        if self._polling:
            poll = costs.poll_check
            if poll > 0:
                buckets["polling"] += poll
                self.clock = clock + poll

    def service_requests(self) -> None:
        """Drain the node's request queue (the polling handler of Figure 5)."""
        if self.clock >= self._crash_at:
            raise NodeCrashedError(
                f"processor {self.global_id} (node {self.node.id}) crashed "
                f"at {self._crash_at:.1f} us")
        if self.request_runner is None or not self._polling:
            return
        queue = self.node.request_queue
        index = 0
        while index < len(queue):
            target, handler = queue[index]
            if target is None or target == self.global_id:
                queue.pop(index)
                self.request_runner(self, handler)
            else:
                index += 1

    def poll_conditions(self) -> Sequence[Condition]:
        if self.cluster.config.polling:
            return (self.node.request_cond,)
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<P{self.global_id} (node {self.node.id}.{self.local_id})>"


class Cluster:
    """The full machine: nodes × processors plus the Memory Channel."""

    def __init__(self, config: MachineConfig, sim: Simulator | None = None) -> None:
        self.config = config
        self.sim = sim or Simulator()
        #: Optional event tracer shared by the whole machine (set by
        #: :func:`repro.trace.attach_tracer`).
        self.trace = None
        self.mc = MemoryChannel(self.sim, config)
        #: Deterministic fault injector (``config.faults``), or None for
        #: clean runs. Protocols and the request engine pick it up from
        #: here; the zero-rate / ``None`` cases are byte-identical.
        self.fault_injector: FaultInjector | None = None
        if config.faults is not None:
            self.fault_injector = FaultInjector(config)
            self.mc.injector = self.fault_injector
            if config.faults.reorder_rate > 0:
                # Same-instant event ties are permuted by the injector's
                # seeded RNG, modeling nondeterministic delivery order.
                self.sim.chooser = self.fault_injector.choose_tie
        self.nodes: list[Node] = []
        self.processors: list[Processor] = []
        for node_id in range(config.nodes):
            node = Node(self, node_id)
            self.nodes.append(node)
            for local_id in range(config.procs_per_node):
                proc = Processor(node, local_id, len(self.processors))
                node.processors.append(proc)
                self.processors.append(proc)
        if config.faults is not None and config.faults.crash_node >= 0:
            for proc in self.nodes[config.faults.crash_node].processors:
                proc._crash_at = config.faults.crash_at_us

    @property
    def num_procs(self) -> int:
        return len(self.processors)

    def processor(self, global_id: int) -> Processor:
        return self.processors[global_id]

    def node_of_proc(self, global_id: int) -> Node:
        return self.processors[global_id].node

    def max_clock(self) -> float:
        return max(p.clock for p in self.processors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Cluster {self.config.nodes}x{self.config.procs_per_node} "
                f"page={self.config.page_bytes}B>")

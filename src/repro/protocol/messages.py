"""Explicit inter-node requests (Section 2.3, "Explicit requests").

The Memory Channel supports remote writes but not remote reads, so a
processor that needs remote data (a page fetch, or breaking a page out of
exclusive mode) writes a request descriptor into the target node's
request buffer and spins on a reply buffer mapped for receive. Requests
and replies use multi-bin buffers (one bin per remote node) to stay
lock-free.

Delivery is by *polling*: every processor checks its node's buffers at
loop back-edges (Figure 5), so a request waits on average one poll
interval before a processor picks it up, then pays the handler-entry
overhead, then the handler itself. Handlers on one node serialize — this
is the communication bottleneck that hurts the one-level protocols on LU
(Section 3.3.3). With ``polling=False`` the machine uses inter-processor
interrupts at the (kernel-optimized) latencies instead.

The engine computes the full service timeline, runs the handler against
the authoritative simulation state, charges the servicing processor's
time (it was interrupted from application work), and returns the reply's
arrival time to the requester, whose clock advances to it as
communication-and-wait time.
"""

from __future__ import annotations

from typing import Any, Callable

from ..cluster.machine import Cluster, Node, Processor
from ..errors import NodeCrashedError, ProtocolError

#: Wire size of a request descriptor (type, page, requester, sequence).
REQUEST_BYTES = 32

#: A handler receives the servicing processor and the simulated time at
#: which service begins, and returns ``(payload, handler_cost_us,
#: reply_bytes)``. Handlers book resources (bus, MC transfers) at the
#: service time, not at the server's possibly-stale local clock.
Handler = Callable[[Processor, float], tuple[Any, float, int]]


class RequestEngine:
    """Models the request/reply path for one protocol instance."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.mc = cluster.mc
        self.config = cluster.config
        self._rr: dict[int, int] = {}  # per-node round-robin poll winner
        #: Fault injector, when the cluster runs with fault injection
        #: (``None`` keeps the request path exactly as it was).
        self.injector = getattr(cluster, "fault_injector", None)

    def _pick_server(self, node: Node, target_proc: int | None) -> Processor:
        """The processor that notices the request first.

        A specific target (exclusive-mode holder) services its own
        requests; otherwise the node's processors take turns — whichever
        polls first in the real system, round-robin in the model.
        """
        if target_proc is not None:
            return self.cluster.processor(target_proc)
        idx = self._rr.get(node.id, 0)
        self._rr[node.id] = (idx + 1) % len(node.processors)
        return node.processors[idx]

    def explicit_request(self, requester: Processor, target_node: Node,
                         handler: Handler, *, target_proc: int | None = None,
                         category: str = "page") -> tuple[Any, float]:
        """Issue a request at the requester's clock; returns (payload, done).

        ``done`` is the simulated time at which the reply data is usable
        at the requester. The caller charges ``done - clock`` as
        communication/wait time.
        """
        costs = self.config.costs
        if self.injector is not None:
            # NAK'd / unanswered attempts back off and reissue before
            # the request proper runs (the timeout/retry path).
            self._retry_preamble(requester, target_node)
        now = requester.clock
        # Request descriptor is a remote write into the request buffer.
        arrival = now + costs.mc_latency
        self.mc.account("request", REQUEST_BYTES)

        if self.config.polling:
            ready = arrival + costs.poll_dispatch
        else:
            same = target_node is requester.node
            ready = arrival + self.config.interrupt_cost(same_node=same)

        begin = target_node.service.peek(ready, 1e-6)
        server = self._pick_server(target_node, target_proc)
        payload, handler_cost, reply_bytes = handler(server, begin)
        service = costs.handler_entry + handler_cost
        if self.injector is not None:
            factor = self.injector.node_slowdown(target_node.id)
            if factor != 1.0:
                service *= factor
        begin, end = target_node.service.acquire(ready, service)

        # The servicing processor loses this time to protocol work.
        server.charge(service, "protocol")
        server.stats.bump("requests_served")
        trace = self.cluster.trace
        if trace is not None:
            trace.span("request_service", server, begin, end - begin,
                       obj=category, requester=requester.global_id,
                       bytes=reply_bytes)

        if reply_bytes > 0:
            _, visible = self.mc.transfer(end, reply_bytes, category=category)
        else:
            visible = end + costs.mc_latency
        return payload, max(visible, now)

    def _retry_preamble(self, requester: Processor,
                        target_node: Node) -> None:
        """Injected-fault retry loop run before the request proper.

        Each failed attempt — a NAK from a transiently busy server, or
        no answer at all from a crash-stopped node — costs the
        requester a request round trip plus back-off, after which the
        descriptor is rewritten and the request reissued. The retry
        budget (``FaultConfig.max_retries``) bounds the loop: a node
        that never answers is reported as crashed rather than spinning
        forever. Deterministic: NAKs come from the injector's seeded
        stream, crash checks are pure functions of simulated time.
        """
        inj = self.injector
        faults = inj.faults
        costs = self.config.costs
        attempt_cost = 2 * costs.mc_latency + faults.nak_backoff_us
        retries = 0
        while True:
            arrival = requester.clock + costs.mc_latency
            if inj.node_crashed(target_node.id, arrival):
                retries += 1
                requester.stats.bump("request_retries")
                if retries >= faults.max_retries:
                    raise NodeCrashedError(
                        f"node {target_node.id} unresponsive after "
                        f"{retries} attempts (crash-stop at "
                        f"{faults.crash_at_us} us)")
                self.mc.account("request", REQUEST_BYTES)
                requester.charge(attempt_cost, "comm_wait")
                continue
            if inj.nak_request():
                retries += 1
                requester.stats.bump("request_naks")
                requester.stats.bump("request_retries")
                if retries >= faults.max_retries:
                    raise ProtocolError(
                        f"request to node {target_node.id} NAK'd "
                        f"{retries} times (retry budget exhausted)")
                self.mc.account("request", REQUEST_BYTES)
                requester.charge(attempt_cost, "comm_wait")
                continue
            return

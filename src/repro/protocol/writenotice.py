"""Write-notice lists (Section 2.3, Figure 4).

Each owner has a globally accessible write-notice board with one *bin*
(circular queue) per remote owner, so every bin has a single writer and
no global lock is needed. On an acquire, a processor traverses all bins
and distributes the notices to per-processor second-level lists; each of
those is a bitmap + queue protected by a local ll/sc lock, so redundant
notices for the same page collapse.

Notices carry the Memory Channel visibility time of the write that posted
them: an acquiring processor only consumes the prefix of each bin that
has become visible by its local clock, exactly like the hardware's
in-order delivery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


#: Shared empty results for drains/collects with nothing queued (the
#: common case). Callers only iterate the result, never mutate it.
_EMPTY: list[int] = []
_EMPTY_NOTICES: list["WriteNotice"] = []


@dataclass(frozen=True)
class WriteNotice:
    """Notification that ``page`` was modified by ``from_owner``.

    ``lost`` marks an injected payload loss (DESIGN.md §12): the bin's
    tail pointer still advanced — that word write is part of the ordered
    stream, which is how the consumer can even observe the gap — but the
    page number never arrived. Protocol code must not use ``page`` of a
    lost notice for anything but bookkeeping; consumers react with a
    conservative resynchronization instead.
    """

    page: int
    from_owner: int
    visible_at: float
    lost: bool = False


class NoticeBoard:
    """One owner's global write-notice list: a bin per remote owner."""

    #: Optional event tracer (:class:`repro.trace.Tracer`); set on every
    #: board by :func:`repro.trace.attach_tracer`.
    trace = None
    #: Optional fault injector (:class:`repro.memchannel.faults.
    #: FaultInjector`); set on every board by the protocol when the
    #: cluster runs with fault injection. Notices posted through an
    #: injector may be delivered late or arrive as a sequence gap
    #: (``lost=True``).
    injector = None

    def __init__(self, owner: int, num_owners: int) -> None:
        self.owner = owner
        self.bins: list[deque[WriteNotice]] = [deque()
                                               for _ in range(num_owners)]
        self.posted = 0
        self._consumed = 0
        #: Notices that arrived as gaps (injected losses), for tests.
        self.lost = 0

    def post(self, from_owner: int, page: int, visible_at: float) -> None:
        """Append a notice to ``from_owner``'s bin (a remote MC write)."""
        lost = False
        if self.injector is not None:
            dropped, extra = self.injector.notice_fate()
            if dropped:
                lost = True
                self.lost += 1
            elif extra > 0.0:
                visible_at += extra
        self.bins[from_owner].append(
            WriteNotice(page, from_owner, visible_at, lost))
        self.posted += 1
        if self.trace is not None:
            if lost:
                self.trace.instant("write_notice", None, visible_at,
                                   obj=page, from_owner=from_owner,
                                   to_owner=self.owner, lost=True)
            else:
                self.trace.instant("write_notice", None, visible_at,
                                   obj=page, from_owner=from_owner,
                                   to_owner=self.owner)

    def collect(self, upto: float) -> list[WriteNotice]:
        """Consume every notice visible by time ``upto`` (bin order).

        A bin holds one remote *node*'s notices in post (event) order,
        but distinct processors of that node release at unordered
        simulated clocks, so ``visible_at`` is not monotone within a
        bin — Memory Channel ordering is per-source-processor, not
        per-node. A visible notice parked behind a not-yet-visible one
        must still be delivered: skipping it lets an acquirer that just
        took the poster's lock miss the invalidation and read a stale
        page (a lost update the race checker later flags).
        """
        if self._consumed == self.posted:
            return _EMPTY_NOTICES
        found: list[WriteNotice] = []
        for bin_ in self.bins:
            # Fast path: the (common) monotone prefix.
            while bin_ and bin_[0].visible_at <= upto:
                found.append(bin_.popleft())
            if len(bin_) > 1:
                ripe = [wn for wn in bin_ if wn.visible_at <= upto]
                if ripe:
                    unripe = [wn for wn in bin_ if wn.visible_at > upto]
                    bin_.clear()
                    bin_.extend(unripe)
                    found.extend(ripe)
        self._consumed += len(found)
        return found

    def pending(self) -> int:
        return sum(len(b) for b in self.bins)


class PerProcNotices:
    """A processor's second-level write-notice list: bitmap + queue.

    ``add`` returns True when the notice was new (bit previously clear);
    redundant notices are dropped without touching the queue, which is the
    multi-bin structure's point. ``drain`` flushes the queue and clears
    the bitmap, as the protocol does while holding the local lock.
    """

    def __init__(self) -> None:
        self._bitmap: set[int] = set()
        self._queue: deque[int] = deque()
        self.redundant_drops = 0

    def add(self, page: int) -> bool:
        if page in self._bitmap:
            self.redundant_drops += 1
            return False
        self._bitmap.add(page)
        self._queue.append(page)
        return True

    def drain(self) -> list[int]:
        if not self._queue:
            return _EMPTY
        pages = list(self._queue)
        self._queue.clear()
        self._bitmap.clear()
        return pages

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class NLEList:
    """A processor's no-longer-exclusive list (written by local peers).

    When a page leaves exclusive mode while other local processors hold
    write mappings, the responder places the page here; the owner flushes
    it at its next release as if it were dirty.
    """

    pages: set[int] = field(default_factory=set)

    def add(self, page: int) -> None:
        self.pages.add(page)

    def take_all(self) -> list[int]:
        if not self.pages:
            return _EMPTY
        pages = sorted(self.pages)
        self.pages.clear()
        return pages

    def __len__(self) -> int:
        return len(self.pages)

"""Common infrastructure for the Cashmere protocol family.

The four protocols (2L, 2LS, 1LD, 1L) share most of their machinery: an
owner space (SMP nodes for the two-level protocols, individual processors
for the one-level ones), per-owner frames and page tables, a replicated
global directory, per-owner write-notice boards, an explicit
request/reply engine, and first-touch home relocation. This module holds
that shared core plus the load/store fast path; the protocol-specific
fault, acquire, and release logic lives in the subclasses.
"""

from __future__ import annotations

import numpy as np

from ..cluster.machine import Cluster, Node, Processor
from ..config import MachineConfig
from ..errors import ProtocolError
from ..sim.engine import SerialResource
from ..vm.page import FrameStore, GenCounter, Perm
from ..vm.pagetable import PageTable
from .directory import DirectoryLockModel, GlobalDirectory
from .messages import RequestEngine
from .writenotice import NLEList, NoticeBoard, PerProcNotices

#: Wire overhead of a page-fetch reply beyond the page data itself.
PAGE_HEADER_BYTES = 32


class ProcProtoState:
    """Per-processor protocol state, laid out for the access fast path."""

    __slots__ = ("proc", "owner", "lidx", "rows", "frames", "gen", "wgen",
                 "dirty", "nle", "notices", "acquire_ts", "excl_pages",
                 "arrival_epoch")

    def __init__(self, proc: Processor, owner: int, lidx: int,
                 rows: list[list[int]], frames: dict[int, np.ndarray],
                 gen: GenCounter, wgen: GenCounter) -> None:
        self.proc = proc
        self.owner = owner
        self.lidx = lidx
        #: The owner's page-table rows (shared list-of-lists).
        self.rows = rows
        #: The owner's frame dict (page -> numpy array), shared.
        self.frames = frames
        #: The owner's generation counters (shared with the page table and
        #: frame store); the runtime's inline page-access cache validates
        #: read mappings against ``gen`` and write mappings against
        #: ``wgen``. Protocol code that mutates ``frames`` directly —
        #: bypassing :class:`~repro.vm.page.FrameStore` — must bump both.
        self.gen = gen
        self.wgen = wgen
        #: Pages this processor wrote since its last release (dirty list).
        self.dirty: set[int] = set()
        #: No-longer-exclusive list, written by local peers.
        self.nle = NLEList()
        #: Second-level write-notice list (bitmap + queue).
        self.notices = PerProcNotices()
        #: Logical time of this processor's most recent acquire.
        self.acquire_ts: int = -1
        #: Pages this processor currently holds in exclusive mode.
        self.excl_pages: set[int] = set()
        #: Barrier episodes this processor has arrived at (the "last
        #: arriving local writer" check consults peers' arrival state).
        self.arrival_epoch: int = 0


class BaseProtocol:
    """Shared protocol skeleton; see subclasses for semantics."""

    #: Protocol short name ("2L", "2LS", "1LD", "1L").
    name: str = "?"
    #: True when owners are SMP nodes (two-level protocols).
    two_level: bool = True

    def __init__(self, cluster: Cluster, *, lock_free: bool = True,
                 home_opt: bool = False) -> None:
        self.cluster = cluster
        self.config: MachineConfig = cluster.config
        self.costs = cluster.config.costs
        self.mc = cluster.mc
        self.lock_free = lock_free
        self.home_opt = home_opt

        #: Optional correctness tracer (:class:`repro.check.CheckContext`):
        #: when set, every load/store and sync event is reported to it.
        self.tracer = None
        #: Optional event tracer (:class:`repro.trace.Tracer`): when set,
        #: fault service and protocol actions are recorded as trace spans.
        self.trace = None
        #: Optional metrics collector (:class:`repro.metrics.
        #: MetricsCollector`): when set, the collector periodically polls
        #: directory occupancy and the :meth:`metrics_gauges` hook. The
        #: protocol never pushes into it — sampling is pull-based, so
        #: the fast paths carry no metrics branches.
        self.metrics = None
        #: Optional fault injector (:class:`repro.memchannel.faults.
        #: FaultInjector`), installed by the cluster when
        #: ``MachineConfig.faults`` is set; ``None`` keeps every protocol
        #: path exactly as it was.
        self.injector = getattr(cluster, "fault_injector", None)
        #: Whether injected faults can perturb write-notice delivery
        #: (late, lost, or jittered past an acquire); gates the
        #: wait-out/resync recovery in :meth:`_collect_notices` so
        #: zero-rate configs stay byte-identical to ``faults=None``.
        self._notice_faults = self.injector is not None and (
            self.injector.faults.notice_delay_rate > 0.0
            or self.injector.faults.notice_drop_rate > 0.0
            or self.injector.faults.reorder_rate > 0.0)
        #: Whether multi-step directory transactions mark their entry
        #: Pending (transient state, Snippet 3 style). Only when faults
        #: can actually fire: the staleness window Pending models is
        #: only observable under injection, and fault-free runs must
        #: stay byte-identical.
        self._transients = self.injector is not None \
            and self.injector.faults.active

        self.num_owners = self._owner_count()
        lock_model = None if lock_free else DirectoryLockModel(self.config)
        self.directory = GlobalDirectory(self.config, self.num_owners,
                                         lock_model=lock_model)
        #: Per-owner generation counters: shared between each owner's page
        #: table and frame-store slot, bumped on permission tightening
        #: and frame map/unmap (``gens`` when a mapping dies outright,
        #: ``wgens`` also on WRITE -> READ downgrades). The runtime's
        #: inline page-access cache (software TLB) validates cached
        #: (page -> frame) entries against them, so a cached mapping can
        #: never outlive a revocation.
        self.gens = [GenCounter() for _ in range(self.num_owners)]
        self.wgens = [GenCounter() for _ in range(self.num_owners)]
        self.frames = FrameStore(self.num_owners, self.config.num_pages,
                                 self.config.words_per_page, gens=self.gens,
                                 wgens=self.wgens)
        self.tables = [PageTable(self.config.num_pages,
                                 self._procs_per_owner(), gen=self.gens[o],
                                 wgen=self.wgens[o])
                       for o in range(self.num_owners)]
        self.boards = [NoticeBoard(o, self.num_owners)
                       for o in range(self.num_owners)]
        if self.injector is not None:
            for board in self.boards:
                board.injector = self.injector
        self.requests = RequestEngine(cluster)
        self._init_masters()

        #: First-touch relocation enabled after application initialization.
        self.first_touch_enabled = False
        self._relocated_superpages: set[int] = set()
        #: Home-placement policy (MachineConfig.home_policy, DESIGN §15):
        #: migrate-on-repeated-diff keeps a per-page [owner, streak] of
        #: consecutive remote-home diff flushes; once a page's diffs come
        #: from the same owner ``_MIGRATE_STREAK`` times in a row, that
        #: owner's next fault migrates the home to it (through the same
        #: lock + Pending + relocation path first-touch uses).
        self._migrate_policy = self.config.home_policy == "migrate"
        self._migrate_streak: dict[int, list] = {}
        #: 1 once a page's home can never change again (its superpage was
        #: relocated, or its home was set by hand); lets the fault path
        #: skip the relocation check with a single index.
        self._home_settled = bytearray(self.config.num_pages)
        self._home_lock = SerialResource(name="home-selection-lock")

        self._ps: list[ProcProtoState] = []
        for proc in cluster.processors:
            owner = self.owner_of(proc)
            lidx = self._local_index(proc)
            self._ps.append(ProcProtoState(
                proc, owner, lidx, self.tables[owner].rows,
                self.frames.frames_of(owner), self.gens[owner],
                self.wgens[owner]))

    # --- owner-space geometry (subclass hooks) ------------------------------

    def _owner_count(self) -> int:
        return self.config.nodes if self.two_level else self.config.total_procs

    def _procs_per_owner(self) -> int:
        return self.config.procs_per_node if self.two_level else 1

    def owner_of(self, proc: Processor) -> int:
        return proc.node.id if self.two_level else proc.global_id

    def _local_index(self, proc: Processor) -> int:
        return proc.local_id if self.two_level else 0

    def node_of_owner(self, owner: int) -> Node:
        if self.two_level:
            return self.cluster.nodes[owner]
        return self.cluster.processors[owner].node

    def proc_state(self, proc: Processor) -> ProcProtoState:
        return self._ps[proc.global_id]

    # --- the memory access fast path ----------------------------------------

    def _traced_read_fault(self, proc: Processor, st: ProcProtoState,
                           page: int) -> None:
        t0 = proc.clock
        self.read_fault(proc, st, page)
        self.trace.span("read_fault", proc, t0, proc.clock - t0, obj=page)

    def _traced_write_fault(self, proc: Processor, st: ProcProtoState,
                            page: int) -> None:
        t0 = proc.clock
        self.write_fault(proc, st, page)
        self.trace.span("write_fault", proc, t0, proc.clock - t0, obj=page)

    def load(self, proc: Processor, page: int, offset: int) -> float:
        st = self._ps[proc.global_id]
        if st.rows[page][st.lidx] < Perm.READ:
            if self.trace is None:
                self.read_fault(proc, st, page)
            else:
                self._traced_read_fault(proc, st, page)
        value = st.frames[page][offset]
        if self.tracer is not None:
            self.tracer.on_load(proc, page, offset, value)
        return value

    def store(self, proc: Processor, page: int, offset: int,
              value: float) -> None:
        st = self._ps[proc.global_id]
        if st.rows[page][st.lidx] < Perm.WRITE:
            if self.trace is None:
                self.write_fault(proc, st, page)
            else:
                self._traced_write_fault(proc, st, page)
        st.frames[page][offset] = value
        if self.tracer is not None:
            self.tracer.on_store(proc, page, offset, value)

    def load_range(self, proc: Processor, page: int, lo: int,
                   hi: int) -> np.ndarray:
        """Read words [lo, hi) of one page (bulk access, one fault check).

        .. warning:: **Returns a live view**, not a copy: the result is a
           numpy slice of the owner's frame, and its contents change when
           the protocol later updates that frame (incoming diffs,
           flush-updates) or another local processor writes it. Callers
           must consume the view immediately and must never mutate it or
           hand it to application code.
           :meth:`repro.runtime.env.WorkerEnv.get_block` is the copying
           boundary: everything above the runtime receives a private copy.
        """
        st = self._ps[proc.global_id]
        if st.rows[page][st.lidx] < Perm.READ:
            if self.trace is None:
                self.read_fault(proc, st, page)
            else:
                self._traced_read_fault(proc, st, page)
        values = st.frames[page][lo:hi]
        if self.tracer is not None:
            self.tracer.on_load_range(proc, page, lo, values)
        return values

    def store_range(self, proc: Processor, page: int, lo: int,
                    values: np.ndarray) -> None:
        st = self._ps[proc.global_id]
        if st.rows[page][st.lidx] < Perm.WRITE:
            if self.trace is None:
                self.write_fault(proc, st, page)
            else:
                self._traced_write_fault(proc, st, page)
        st.frames[page][lo:lo + len(values)] = values
        if self.tracer is not None:
            self.tracer.on_store_range(proc, page, lo, values)

    # --- protocol entry points (subclass responsibilities) -------------------

    def read_fault(self, proc: Processor, st: ProcProtoState,
                   page: int) -> None:
        raise NotImplementedError

    def write_fault(self, proc: Processor, st: ProcProtoState,
                    page: int) -> None:
        raise NotImplementedError

    def acquire_sync(self, proc: Processor) -> None:
        """Consistency actions on completing a lock acquire / flag wait /
        barrier departure."""
        raise NotImplementedError

    def release_sync(self, proc: Processor) -> None:
        """Consistency actions prior to a lock release / flag set."""
        raise NotImplementedError

    def barrier_release(self, proc: Processor) -> None:
        """Consistency actions at barrier arrival (defaults to a release)."""
        self.release_sync(proc)

    # --- shared helpers -------------------------------------------------------

    def end_initialization(self) -> None:
        """Arm home relocation (runs once, at the end of the
        application's initialization phase). Under ``round_robin`` the
        initial striped assignment is final, so relocation stays
        disarmed and every page keeps ``home_is_default``."""
        if self.config.home_policy != "round_robin":
            self.first_touch_enabled = True

    def _init_masters(self) -> None:
        """Create the master copies. Two-level protocols share the home
        node's frame; one-level protocols override (the master is a
        separate MC receive region even on the home processor)."""
        for page in range(self.config.num_pages):
            self.frames.map_frame(self.directory.home(page), page)

    def master(self, page: int) -> np.ndarray:
        """The current master copy (the home owner's frame)."""
        return self.frames.frame(self.directory.home(page), page)

    def _charge_dir_update(self, proc: Processor, fanout: int = 0) -> None:
        proc.charge(self.directory.update_cost(proc), "protocol")
        proc.stats.bump("directory_updates")
        self.mc.account("directory",
                        4 * (fanout or self.num_owners))

    def _set_node_perm_word(self, proc: Processor, page: int,
                            perm: Perm) -> None:
        """Update this owner's global directory word when its loosest
        permission changes (broadcast write, charged)."""
        st = self._ps[proc.global_id]
        entry = self.directory.entry(page)
        if entry.perm_of(st.owner) != perm:
            entry.set_perm(st.owner, perm)
            self._charge_dir_update(proc)

    def _await_not_pending(self, proc: Processor, entry) -> None:
        """Timeout path for transient (Pending) directory state.

        Under fault injection a multi-step directory transaction (an
        exclusive break, a relocation) marks its entry pending until the
        final write is globally visible. A requester that reads the
        pending state must not act on the half-updated entry; it waits
        out the window — bounded by ``pending_until``, so this is a
        timeout, not an unbounded spin — and then proceeds against the
        settled entry. Never fires on fault-free runs (``pending_until``
        stays 0). This is the one sanctioned reader of raw
        ``pending_until`` (lint rule F101).
        """
        if entry.pending_until > proc.clock:
            proc.charge(entry.pending_until - proc.clock, "comm_wait")
            proc.stats.bump("pending_waits")

    def _collect_notices(self, proc: Processor, board) -> tuple[list, bool]:
        """Collect this owner's visible write notices at an acquire.

        The fault-free path is exactly ``board.collect(clock)``. Under
        notice-affecting fault injection the releaser's per-bin notice
        counts ride on the (lock-ordered) release word, so the acquirer
        can tell that notices are still in flight and wait them out
        (late deliveries), and can see a sequence gap where a payload
        was lost. Returns ``(notices, gap_seen)``; the caller performs
        the conservative resynchronization when ``gap_seen``.
        """
        notices = board.collect(proc.clock)
        if not self._notice_faults:
            return notices, False
        lost = any(wn.lost for wn in notices)
        stalled = False
        while board.pending():
            deadline = max(b[0].visible_at for b in board.bins if b)
            if deadline > proc.clock:
                stalled = True
                proc.charge(deadline - proc.clock, "comm_wait")
            extra = board.collect(proc.clock)
            if not extra:
                break
            lost = lost or any(wn.lost for wn in extra)
            notices = list(notices) + extra
        if stalled:
            proc.stats.bump("notice_stalls")
        return notices, lost

    def _notices_pending(self, owner: int, page: int) -> bool:
        """Any write notice for ``page`` queued at this owner (even one
        still in flight)?

        Exclusive mode must not be entered with a notice pending: the
        holder's copy would be stale, and the eventual full-page break
        flush would clobber the newer master words the notice announced.
        A *lost* notice (injected gap) counts for every page — the page
        number never arrived, so the owner must assume the worst.
        """
        for bin_ in self.boards[owner].bins:
            for wn in bin_:
                if wn.lost or wn.page == page:
                    return True
        node = self.node_of_owner(owner)
        for peer in node.processors:
            pst = self._ps[peer.global_id]
            if pst.owner == owner and page in pst.notices._bitmap:
                return True
        return False

    def _superpage_of(self, page: int) -> int:
        return page // self.config.superpage_pages

    def _superpage_pages_of(self, sp: int) -> range:
        per = self.config.superpage_pages
        return range(sp * per, min((sp + 1) * per, self.config.num_pages))

    def maybe_relocate_home(self, proc: Processor, page: int) -> None:
        """First-touch home relocation (Section 2.3, "Home node selection").

        Runs at most once per superpage, after initialization: the first
        post-initialization toucher becomes the home. Requires the global
        home-selection lock — the only global lock in the protocol.
        """
        if self._home_settled[page]:
            if self._migrate_streak:
                self._maybe_migrate_home(proc, page)
            return
        if not self.first_touch_enabled:
            return
        sp = self._superpage_of(page)
        if sp in self._relocated_superpages:
            for p in self._superpage_pages_of(sp):
                self._home_settled[p] = 1
            return
        entry = self.directory.entry(page)
        if not entry.home_is_default:
            self._home_settled[page] = 1
            return
        self._relocated_superpages.add(sp)
        for p in self._superpage_pages_of(sp):
            self._home_settled[p] = 1
        st = self._ps[proc.global_id]

        # Global lock acquire/release (11 us plus any serialization).
        begin, end = self._home_lock.acquire(proc.clock, 11.0)
        proc.charge(end - proc.clock, "protocol")
        proc.stats.bump("home_relocations")

        new_home = st.owner
        for p in self._superpage_pages_of(sp):
            e = self.directory.entry(p)
            e.home_is_default = False
            old_home = e.home_owner
            if old_home == new_home:
                continue
            self._relocate_page(proc, p, old_home, new_home)

    def _note_remote_flush(self, page: int, owner: int) -> None:
        """Record one diff flush of ``page`` from ``owner`` to a remote
        home (migrate policy only — callers gate on ``_migrate_policy``).
        Consecutive flushes from the same owner grow the streak; a flush
        from anyone else resets it."""
        streak = self._migrate_streak.get(page)
        if streak is not None and streak[0] == owner:
            streak[1] += 1
        else:
            self._migrate_streak[page] = [owner, 1]

    #: Consecutive same-owner remote diffs before a page's home migrates.
    _MIGRATE_STREAK = 3

    def _maybe_migrate_home(self, proc: Processor, page: int) -> None:
        """Migrate-on-repeated-diff (home_policy="migrate"): runs on the
        fault path, like first-touch, so the relocation happens at a
        moment the page is being touched anyway and reuses the same
        home-selection lock, Pending window, and master transfer."""
        streak = self._migrate_streak.get(page)
        if streak is None:
            return
        st = self._ps[proc.global_id]
        if streak[0] != st.owner or streak[1] < self._MIGRATE_STREAK:
            return
        entry = self.directory.entry(page)
        if entry.is_pending(proc.clock):
            return
        del self._migrate_streak[page]
        old_home = entry.home_owner
        if old_home == st.owner:
            return
        begin, end = self._home_lock.acquire(proc.clock, 11.0)
        proc.charge(end - proc.clock, "protocol")
        proc.stats.bump("home_relocations")
        self._relocate_page(proc, page, old_home, st.owner)
        if self.trace is not None:
            self.trace.instant("home_migration", proc, proc.clock,
                               obj=page, old_home=old_home,
                               new_home=st.owner)

    def _relocate_page(self, proc: Processor, page: int, old_home: int,
                       new_home: int) -> None:
        e = self.directory.entry(page)
        # Break any exclusive holding so the master content is current.
        holder = e.exclusive_holder()
        if holder is not None and holder[0] == new_home:
            # The new home already has the newest copy; keep its frame.
            e.home_owner = new_home
            self._charge_dir_update(proc)
            self._after_relocation(page, old_home, new_home)
            return
        if holder is not None:
            self._break_exclusive(proc, page, holder)
        # Move the master copy: an explicit transfer from the old home.
        self._install_master(proc, page, new_home)
        _, visible = self.mc.transfer(proc.clock, self.config.page_bytes,
                                      category="relocation")
        proc.charge(visible - proc.clock, "comm_wait")
        e.home_owner = new_home
        # The home id lives in every directory word; one broadcast update.
        self._charge_dir_update(proc)
        if self._transients:
            # The relocation rewrites every word of the entry; Pending
            # until the broadcast settles (transient state, DESIGN §12).
            e.set_pending(self.mc.visibility(proc.clock))
        if self.trace is not None:
            self.trace.instant("relocation", proc, proc.clock, obj=page,
                               old_home=old_home, new_home=new_home)
        self._after_relocation(page, old_home, new_home)

    def _install_master(self, proc: Processor, page: int,
                        new_home: int) -> None:
        """Install the master copy at the relocated home owner."""
        old_master = self.master(page)
        twin = self._twin_of(new_home, page)
        if twin is not None:
            # The new home holds unflushed local writes; merge the old
            # master's remote changes instead of clobbering them.
            from ..vm.diffs import incoming_diff
            frame = self.frames.frame(new_home, page)
            incoming_diff(old_master, frame, twin,
                          context=f"relocation of page {page}")
            self._drop_twin(new_home, page)
        else:
            self.frames.map_frame(new_home, page, old_master)

    def _after_relocation(self, page: int, old_home: int,
                          new_home: int) -> None:
        """Subclass hook (home-node optimization remapping)."""

    def _twin_of(self, owner: int, page: int) -> np.ndarray | None:
        """Subclass hook: the owner's twin for ``page``, if any."""
        return None

    def _drop_twin(self, owner: int, page: int) -> None:
        """Subclass hook: discard the owner's twin for ``page``."""

    def _break_exclusive(self, proc: Processor, page: int,
                         holder: tuple[int, int]) -> np.ndarray:
        raise NotImplementedError

    # --- metrics ---------------------------------------------------------------

    def metrics_gauges(self, emit) -> None:
        """Report protocol-specific gauges to the metrics collector.

        ``emit(name, value)`` records one sample point; subclasses
        override to expose their private state (twin counts, notice
        backlogs). Called only when a collector is attached, so the
        default no-op costs nothing on ordinary runs.
        """

    # --- debugging / tests -----------------------------------------------------

    def check_invariants(self) -> None:
        """Structural invariants; used by tests and property checks."""
        for page in range(self.config.num_pages):
            entry = self.directory.entry(page)
            entry.exclusive_holder()  # raises on multiple holders
            self.master(page)  # raises if the master copy is missing
            for owner in range(self.num_owners):
                perm = entry.perm_of(owner)
                loosest = self.tables[owner].loosest(page)
                if perm > Perm.INVALID and not (
                        self.frames.has_frame(owner, page)):
                    raise ProtocolError(
                        f"owner {owner} claims perm {perm} on page "
                        f"{page} without a frame")
                if loosest > perm:
                    raise ProtocolError(
                        f"owner {owner} page {page}: table loosest {loosest} "
                        f"exceeds directory word {perm}")

"""The Cashmere protocol family: 2L, 2LS, 1LD, 1L and their meta-data."""

from ..config import Protocol
from .base import BaseProtocol
from .cashmere2l import Cashmere2L, Cashmere2LS
from .directory import (NO_HOLDER, DirectoryLockModel, DirEntry, DirWord,
                        GlobalDirectory, PageMeta)
from .messages import RequestEngine
from .onelevel import Cashmere1L, Cashmere1LD, OneLevelProtocol
from .writenotice import NLEList, NoticeBoard, PerProcNotices, WriteNotice

#: Map from protocol enum / short name to implementation class.
PROTOCOL_CLASSES = {
    Protocol.CSM_2L: Cashmere2L,
    Protocol.CSM_2LS: Cashmere2LS,
    Protocol.CSM_1LD: Cashmere1LD,
    Protocol.CSM_1L: Cashmere1L,
}


def make_protocol(name, cluster, *, lock_free=True, home_opt=False):
    """Instantiate a protocol by enum or short string name ("2L", ...).

    ``lock_free=False`` selects the Section 3.3.5 global-lock ablation
    (two-level protocols only). ``home_opt=True`` enables the home-node
    optimization (one-level protocols only).
    """
    if isinstance(name, str):
        name = Protocol(name)
    cls = PROTOCOL_CLASSES[name]
    if name.two_level:
        if home_opt:
            raise ValueError("home-node optimization applies only to the "
                             "one-level protocols")
        return cls(cluster, lock_free=lock_free)
    return cls(cluster, lock_free=lock_free, home_opt=home_opt)


__all__ = [
    "BaseProtocol", "Cashmere2L", "Cashmere2LS", "Cashmere1LD", "Cashmere1L",
    "OneLevelProtocol", "GlobalDirectory", "DirectoryLockModel", "DirEntry",
    "DirWord", "PageMeta", "NoticeBoard", "PerProcNotices", "WriteNotice",
    "NLEList", "RequestEngine", "PROTOCOL_CLASSES", "make_protocol",
    "NO_HOLDER",
]

"""The Cashmere-2L two-level coherence protocol (Section 2), plus the
Cashmere-2LS shootdown variant (Section 2.6).

Owners are SMP nodes: all processors of a node share one frame per page,
so hardware coherence coalesces protocol transactions. Inter-node
coherence is "moderately lazy" release consistency with multiple
concurrent writers, home nodes, page-size blocks, a lock-free replicated
directory, and — the paper's novel mechanism — *two-way diffing*, which
uses twins both to flush local modifications out (outgoing diffs /
flush-updates) and to merge remote modifications in (incoming diffs)
without TLB shootdown or intra-node synchronization.

Temporal ordering inside a node uses a logical clock incremented at
protocol events (page faults, page flushes, acquires, releases); pages
carry flush/update/write-notice timestamps that let the protocol skip
redundant fetches and flushes (Section 2.2, "Hardware-Software Coherence
Interaction").
"""

from __future__ import annotations

import numpy as np

from ..cluster.machine import Processor
from ..errors import ProtocolError
from ..vm.diffs import flush_update, incoming_diff, make_twin
from ..vm.page import Perm
from .base import PAGE_HEADER_BYTES, BaseProtocol, ProcProtoState
from .directory import NO_HOLDER, PageMeta


class NodeState2L:
    """Per-node protocol state: logical clock, release time, page meta."""

    __slots__ = ("logical", "last_release_ts", "meta")

    def __init__(self) -> None:
        self.logical = 0
        self.last_release_ts = -1
        self.meta: dict[int, PageMeta] = {}

    def tick(self) -> int:
        self.logical += 1
        return self.logical

    def meta_for(self, page: int) -> PageMeta:
        meta = self.meta.get(page)
        if meta is None:
            meta = PageMeta()
            self.meta[page] = meta
        return meta


class Cashmere2L(BaseProtocol):
    """The two-level protocol with two-way diffing."""

    name = "2L"
    two_level = True
    #: 2LS overrides: use TLB shootdown instead of incoming diffs.
    shootdown = False

    def __init__(self, cluster, *, lock_free: bool = True) -> None:
        super().__init__(cluster, lock_free=lock_free)
        self.node_state = [NodeState2L() for _ in range(self.num_owners)]

    def metrics_gauges(self, emit) -> None:
        """Two-level gauges: live twin count and write-notice backlog."""
        twins = 0
        for ns in self.node_state:
            for meta in ns.meta.values():
                if meta.twin is not None:
                    twins += 1
        emit("twins", twins)
        emit("notice_backlog", sum(b.pending() for b in self.boards))

    # ------------------------------------------------------------------ hooks

    def _twin_of(self, owner: int, page: int) -> np.ndarray | None:
        meta = self.node_state[owner].meta.get(page)
        return None if meta is None else meta.twin

    def _drop_twin(self, owner: int, page: int) -> None:
        meta = self.node_state[owner].meta.get(page)
        if meta is not None:
            meta.twin = None

    def _after_relocation(self, page: int, old_home: int,
                          new_home: int) -> None:
        # The old home node becomes an ordinary sharer. Its frame is the
        # old master — current *right now*, but it will rot silently if
        # the node is not in the sharing set (nobody sends it write
        # notices). Keep it only if some processor still maps the page
        # (then the node is a sharer, and a fresh update_ts makes the
        # timestamp rule work); otherwise drop it so the next fault
        # fetches from the new home.
        if old_home == new_home:
            return
        ns = self.node_state[old_home]
        table = self.tables[old_home]
        if table.mapped(page):
            meta = ns.meta_for(page)
            meta.update_ts = ns.tick()
            # Writers also need a twin now that flushes must diff against
            # the (relocated) master.
            if table.writers(page) and meta.twin is None \
                    and self.frames.has_frame(old_home, page):
                meta.twin = make_twin(self.frames.frame(old_home, page))
        else:
            self.frames.unmap_frame(old_home, page)
            ns.meta.pop(page, None)

    # ------------------------------------------------------------- page faults

    def read_fault(self, proc: Processor, st: ProcProtoState,
                   page: int) -> None:
        costs = self.costs
        ns = self.node_state[st.owner]
        ns.tick()
        proc.charge(costs.page_fault, "protocol")
        proc.stats.bump("read_faults")
        self.maybe_relocate_home(proc, page)

        self._fetch_if_stale(proc, st, page, ns)

        table = self.tables[st.owner]
        # Granting READ can only change the node's loosest permission when
        # it was INVALID before (READ < WRITE), so skip the re-scan.
        old_loosest = table.loosest(page)
        table.set_perm(page, st.lidx, Perm.READ)
        if old_loosest < Perm.READ:
            self._set_node_perm_word(proc, page, Perm.READ)
        proc.charge(costs.mprotect, "protocol")

    def write_fault(self, proc: Processor, st: ProcProtoState,
                    page: int) -> None:
        costs = self.costs
        ns = self.node_state[st.owner]
        ns.tick()
        proc.charge(costs.page_fault, "protocol")
        proc.stats.bump("write_faults")
        self.maybe_relocate_home(proc, page)

        entry = self.directory.entry(page)
        self._await_not_pending(proc, entry)
        # Already exclusive on this node: map with no protocol overhead.
        if entry.excl_of(st.owner) != NO_HOLDER:
            self._map_write(proc, st, page)
            return

        self._fetch_if_stale(proc, st, page, ns)

        meta = ns.meta_for(page)
        has_other_sharer = entry.has_other_sharer(st.owner)
        holder = entry.exclusive_holder()
        can_go_exclusive = (not has_other_sharer and holder is None
                            and meta.twin is None
                            and not self.tables[st.owner].writers(page)
                            and not self._notices_pending(st.owner, page)
                            and not entry.is_pending(proc.clock))
        if can_go_exclusive:
            entry.set_excl(st.owner, proc.global_id)
            entry.set_perm(st.owner, Perm.WRITE)
            self._charge_dir_update(proc)
            proc.stats.bump("excl_transitions")
            st.excl_pages.add(page)
            st.dirty.discard(page)
            self._map_write(proc, st, page, charge_dir=False)
            return

        # Normal multi-writer path: dirty list plus a twin off the home node.
        st.dirty.add(page)
        home = self.directory.home(page)
        if home != st.owner and meta.twin is None:
            meta.twin = make_twin(st.frames[page])
            proc.charge(self.config.twin_cost(), "protocol")
            proc.stats.bump("twin_creations")
        self._map_write(proc, st, page)

    def _map_write(self, proc: Processor, st: ProcProtoState, page: int,
                   charge_dir: bool = True) -> None:
        table = self.tables[st.owner]
        # WRITE is the loosest permission, so after the grant the node's
        # loosest is WRITE by construction; only the old value needs a scan.
        old_loosest = table.loosest(page)
        table.set_perm(page, st.lidx, Perm.WRITE)
        if charge_dir and old_loosest != Perm.WRITE:
            self._set_node_perm_word(proc, page, Perm.WRITE)
        proc.charge(self.costs.mprotect, "protocol")

    # ------------------------------------------------------------------ fetch

    def _fetch_if_stale(self, proc: Processor, st: ProcProtoState,
                        page: int, ns: NodeState2L) -> None:
        """Fetch a fresh copy from the home node when the local copy is
        missing or stale by the timestamp rule of Section 2.4.1."""
        entry = self.directory.entry(page)
        self._await_not_pending(proc, entry)
        home = entry.home_owner

        # An exclusive holding elsewhere always forces a break, even for
        # home-node processors (exclusive pages send no write notices, so
        # the timestamp rule cannot see their modifications).
        holder = entry.exclusive_holder()
        if holder is not None and holder[0] == st.owner:
            holder = None

        if home == st.owner:
            # Home processors work directly on the master copy; the break
            # (if any) flushed the holder's page into it.
            if holder is not None:
                self._break_exclusive(proc, page, holder)
            return
        meta = ns.meta_for(page)
        have_frame = page in st.frames
        threshold = min(meta.wn_ts, st.acquire_ts)
        if holder is None and have_frame and meta.update_ts >= threshold:
            return

        if self.shootdown and meta.twin is not None:
            # 2LS: a fetch with concurrent local writers requires shooting
            # down their mappings and flushing before the page is updated.
            self._shootdown_and_flush(proc, st, page, meta)

        # Requester-side fixed fetch costs (request composition, read
        # buffer, and the two-level second-level directory maintenance).
        t_fetch = proc.clock
        proc.charge(self.costs.fetch_overhead
                    + self.costs.two_level_fetch_extra, "protocol")
        if holder is not None:
            # The holder's reply carries the latest copy directly.
            payload = self._break_exclusive(proc, page, holder)
        else:
            payload, done = self.requests.explicit_request(
                proc, self.node_of_owner(home),
                self._make_fetch_handler(page), category="page")
            if done > proc.clock:
                proc.charge(done - proc.clock, "comm_wait")
        proc.stats.bump("page_transfers")

        if meta.twin is not None:
            # Two-way diffing: merge only the *remote* modifications, into
            # both the working page and the twin — no shootdown needed.
            diff = incoming_diff(payload, st.frames[page], meta.twin,
                                 context=f"page {page} fetch")
            proc.charge(self.config.diff_in_cost(diff.nbytes), "protocol")
            proc.stats.bump("incoming_diffs")
            if self.trace is not None:
                self.trace.instant("diff_in", proc, proc.clock, obj=page,
                                   bytes=int(diff.nbytes))
        else:
            self.frames.map_frame(st.owner, page, payload)
            proc.charge(self.config.page_copy_cost(), "protocol")
        if self.trace is not None:
            self.trace.span("page_fetch", proc, t_fetch,
                            proc.clock - t_fetch, obj=page,
                            bytes=self.config.page_bytes, home=home)
        ns.tick()
        meta.update_ts = ns.logical

    def _make_fetch_handler(self, page: int):
        """Request handler run by a polling processor on the home node."""
        page_bytes = self.config.page_bytes

        def handler(server: Processor, at: float):
            master = self.master(page)
            cost = self.config.page_copy_cost()  # fill the page read buffer
            return master.copy(), cost, page_bytes + PAGE_HEADER_BYTES

        return handler

    # -------------------------------------------------------------- exclusive

    def _break_exclusive(self, proc: Processor, page: int,
                         holder: tuple[int, int]) -> np.ndarray:
        """Ask the exclusive holder to flush and re-enter normal mode.

        The faulting processor sends an explicit request to the holder
        *processor*; the holder flushes the entire page to the home node,
        creates a twin and no-longer-exclusive entries if other local
        processors hold write mappings, downgrades its own permissions,
        and replies with the latest copy (Section 2.4.1).
        """
        holder_owner, holder_proc_id = holder
        page_bytes = self.config.page_bytes

        def handler(server: Processor, at: float):
            entry = self.directory.entry(page)
            holder_pid = entry.excl_of(holder_owner)
            if holder_pid == NO_HOLDER:
                # Raced with another break request; nothing left to do.
                return self.master(page).copy(), 2.0, page_bytes
            hns = self.node_state[holder_owner]
            hst = self._ps[holder_pid]
            frame = self.frames.frame(holder_owner, page)
            cost = 0.0

            # Flush the entire page to the home node's master copy.
            home = self.directory.home(page)
            if home != holder_owner:
                self.master(page)[:] = frame
                _, visible = self.mc.transfer(at, page_bytes,
                                              category="excl_flush")
                cost += self.config.page_copy_cost()
                hns.meta_for(page).flush_end_real = visible
            entry.clear_excl(holder_owner)
            cost += self.directory.update_cost(server)
            server.stats.bump("directory_updates")
            server.stats.bump("excl_transitions")
            hst.excl_pages.discard(page)

            # Other local writers keep their mappings: twin + NLE entries.
            # (On the home node no twin is needed — writes go straight to
            # the master — but the NLE entries still are: those writers
            # must send write notices and downgrade at their next release.)
            table = self.tables[holder_owner]
            writers = table.writers(page)
            others = [w for w in writers if w != hst.lidx]
            if others:
                if home != holder_owner:
                    meta = hns.meta_for(page)
                    if meta.twin is None:
                        meta.twin = make_twin(frame)
                        cost += self.config.twin_cost()
                        server.stats.bump("twin_creations")
                for lw in others:
                    peer = self.node_of_owner(holder_owner).processors[lw]
                    self._ps[peer.global_id].nle.add(page)
                    cost += self.costs.llsc_lock
            # The holder downgrades its own permissions to catch new writes.
            if table.perm(page, hst.lidx) == Perm.WRITE:
                table.set_perm(page, hst.lidx, Perm.READ)
                cost += self.costs.mprotect
                if others:
                    # Future writes by the holder go through the dirty list.
                    pass
            return frame.copy(), cost, page_bytes + PAGE_HEADER_BYTES

        t0 = proc.clock
        payload, done = self.requests.explicit_request(
            proc, self.node_of_owner(holder_owner), handler,
            target_proc=holder_proc_id, category="page")
        if self._transients:
            # The break rewrites the directory in several ordered word
            # writes; mark the entry Pending until the last of them is
            # globally visible so concurrent requesters take the
            # timeout path instead of acting on a half-updated entry.
            self.directory.entry(page).set_pending(
                done + self.costs.mc_latency)
        if done > proc.clock:
            proc.charge(done - proc.clock, "comm_wait")
        if self.trace is not None:
            self.trace.span("excl_break", proc, t0, proc.clock - t0,
                            obj=page, holder=holder_proc_id)
        return payload

    # ------------------------------------------------------------ acquire side

    def acquire_sync(self, proc: Processor) -> None:
        """Distribute global write notices, then invalidate stale pages
        (Section 2.4.2)."""
        st = self._ps[proc.global_id]
        ns = self.node_state[st.owner]
        ns.tick()
        costs = self.costs
        table = self.tables[st.owner]

        board = self.boards[st.owner]
        if self.directory.lock_model is not None and board.pending():
            proc.charge(self.directory.lock_model.update_cost(proc.clock),
                        "protocol")
        notices, gap = self._collect_notices(proc, board)
        for wn in notices:
            if wn.lost:
                continue  # a gap, not a page number; handled below
            meta = ns.meta_for(wn.page)
            meta.wn_ts = ns.logical
            targets = table.mapped(wn.page)
            for lp in targets:
                peer = self.node_of_owner(st.owner).processors[lp]
                if self._ps[peer.global_id].notices.add(wn.page):
                    proc.charge(costs.llsc_lock, "protocol")
        if gap:
            self._recover_lost_notices(proc, st, ns)

        st.acquire_ts = ns.logical

        for page in st.notices.drain():
            meta = ns.meta_for(page)
            if meta.update_ts < meta.wn_ts:
                self._invalidate_mapping(proc, st, page)
        proc.charge(costs.llsc_lock, "protocol")  # drain under local lock

    def _recover_lost_notices(self, proc: Processor, st: ProcProtoState,
                              ns: NodeState2L) -> None:
        """Conservative resynchronization after a write-notice gap.

        A lost notice carries no page number, so every page this node
        shares may be the stale one. Treat them *all* as noticed: mark
        the write-notice timestamp and queue per-processor notices for
        every mapped, non-home, non-exclusive page, so the normal
        timestamp rule refetches each on its next access. Sound (it
        can only invalidate more than strictly necessary), and dirty
        pages keep their twins, so local modifications survive the
        refetch via the usual incoming diff.
        """
        proc.stats.bump("notice_resyncs")
        # One pass over the local replicated directory copy.
        proc.charge(self.directory.update_cost(proc), "protocol")
        table = self.tables[st.owner]
        node = self.node_of_owner(st.owner)
        costs = self.costs
        for page in range(self.config.num_pages):
            entry = self.directory.entry(page)
            if entry.home_owner == st.owner:
                continue  # home works on the master copy, never stale
            if entry.excl_of(st.owner) != NO_HOLDER:
                continue  # our exclusive copy is the freshest there is
            targets = table.mapped(page)
            if not targets:
                continue
            meta = ns.meta_for(page)
            meta.wn_ts = ns.logical
            for lp in targets:
                peer = node.processors[lp]
                if self._ps[peer.global_id].notices.add(page):
                    proc.charge(costs.llsc_lock, "protocol")

    def _invalidate_mapping(self, proc: Processor, st: ProcProtoState,
                            page: int) -> None:
        table = self.tables[st.owner]
        if table.perm(page, st.lidx) == Perm.INVALID:
            return
        old_loosest = table.loosest(page)
        table.set_perm(page, st.lidx, Perm.INVALID)
        proc.charge(self.costs.mprotect, "protocol")
        new_loosest = table.loosest(page)
        if new_loosest != old_loosest:
            self._set_node_perm_word(proc, page, new_loosest)

    # ------------------------------------------------------------ release side

    def release_sync(self, proc: Processor) -> None:
        """Flush dirty, non-exclusive pages and send write notices
        (Section 2.4.3)."""
        st = self._ps[proc.global_id]
        ns = self.node_state[st.owner]
        ns.tick()
        ns.last_release_ts = ns.logical
        if not st.dirty and not st.nle.pages:
            return
        pages = sorted(st.dirty | set(st.nle.take_all()))
        st.dirty.clear()
        for page in pages:
            self._consider_flush(proc, st, ns, page)

    def barrier_release(self, proc: Processor) -> None:
        """Barrier-arrival flush: only the last arriving local writer of a
        page flushes it (Section 2.3, "Synchronization")."""
        st = self._ps[proc.global_id]
        ns = self.node_state[st.owner]
        ns.tick()
        ns.last_release_ts = ns.logical
        st.arrival_epoch += 1
        if not st.dirty and not st.nle.pages:
            return
        table = self.tables[st.owner]
        node = self.node_of_owner(st.owner)
        pages = sorted(st.dirty | set(st.nle.take_all()))
        st.dirty.clear()
        for page in pages:
            # "Last arriving local writer": defer only to write-mapped
            # peers that have NOT yet arrived at this barrier episode (a
            # stale write mapping from an already-arrived peer — e.g. one
            # left over from exclusive mode — must not swallow the flush).
            pending = False
            for w, p in enumerate(table.rows[page]):
                if (p >= Perm.WRITE and w != st.lidx
                        and self._ps[node.processors[w].global_id]
                        .arrival_epoch < st.arrival_epoch):
                    pending = True
                    break
            if pending:
                # A later-arriving writer's flush (diff against the shared
                # twin) covers our changes too.
                self._downgrade_self(proc, st, page)
                continue
            self._consider_flush(proc, st, ns, page)

    def _consider_flush(self, proc: Processor, st: ProcProtoState,
                        ns: NodeState2L, page: int) -> None:
        entry = self.directory.entry(page)
        if entry.excl_of(st.owner) != NO_HOLDER:
            return  # exclusive pages generate no flushes or notices
        meta = ns.meta_for(page)
        if meta.flush_ts > ns.last_release_ts:
            # A concurrent release already flushed this page; wait for the
            # flush to reach the home node, then skip.
            if meta.flush_end_real > proc.clock:
                proc.charge(meta.flush_end_real - proc.clock, "comm_wait")
            self._downgrade_self(proc, st, page)
            return
        self._flush_page(proc, st, ns, page, meta)
        self._downgrade_self(proc, st, page)

    def _flush_page(self, proc: Processor, st: ProcProtoState,
                    ns: NodeState2L, page: int, meta: PageMeta) -> None:
        if self.trace is None:
            self._flush_page_inner(proc, st, ns, page, meta)
            return
        t0 = proc.clock
        self._flush_page_inner(proc, st, ns, page, meta)
        self.trace.span("page_flush", proc, t0, proc.clock - t0, obj=page)

    def _flush_page_inner(self, proc: Processor, st: ProcProtoState,
                          ns: NodeState2L, page: int, meta: PageMeta) -> None:
        home = self.directory.home(page)
        table = self.tables[st.owner]
        meta.flush_ts = ns.tick()

        if home != st.owner:
            if meta.twin is None:
                if self.shootdown:
                    # 2LS: an earlier shootdown already flushed these
                    # changes and discarded the twin; only the notices
                    # remain.
                    self._send_write_notices(proc, st, page)
                    return
                if table.writers(page):
                    raise ProtocolError(
                        f"flush of page {page} on owner {st.owner} "
                        f"without twin")
                # 2L: a peer's last-writer flush already carried these
                # modifications home (diff + write notices) and dropped
                # the node twin while this dirty record sat behind an
                # acquire-side invalidation. The per-node
                # ``last_release_ts`` guard in _consider_flush cannot see
                # that flush once this release's own tick has advanced the
                # clock, so catch it here: with no twin and no local write
                # mappings the node holds nothing unflushed.
                return
            frame = st.frames[page]
            others = [w for w in table.writers(page) if w != st.lidx]
            if self.shootdown and others:
                # _shootdown_and_flush sends the write notices itself.
                self._shootdown_and_flush(proc, st, page, meta)
                return
            if others:
                # Flush-update: write modifications to home *and* twin so
                # concurrent local writers' later flushes skip them.
                diff = flush_update(frame, meta.twin, self.master(page))
                proc.charge(self.config.diff_out_cost(diff.nbytes, True),
                            "protocol")
                proc.stats.bump("flush_updates")
                self._account_diff(proc, meta, diff, page)
            else:
                diff = flush_update(frame, meta.twin, self.master(page))
                proc.charge(self.config.diff_out_cost(diff.nbytes, True),
                            "protocol")
                self._account_diff(proc, meta, diff, page)
                meta.twin = None  # last writer: the twin is garbage now
            if self._migrate_policy:
                self._note_remote_flush(page, st.owner)

        # Write notices to every sharing node except us and the home.
        self._send_write_notices(proc, st, page)

    def _account_diff(self, proc: Processor, meta: PageMeta, diff,
                      page: int) -> None:
        if diff.nbytes:
            if self.trace is not None:
                self.trace.instant("diff_out", proc, proc.clock, obj=page,
                                   bytes=int(diff.nbytes))
            send_done, visible = self.mc.transfer(proc.clock, diff.nbytes,
                                                  category="diff")
            if send_done > proc.clock:
                proc.charge(send_done - proc.clock, "comm_wait")
            meta.flush_end_real = visible
        else:
            meta.flush_end_real = proc.clock

    def _send_write_notices(self, proc: Processor, st: ProcProtoState,
                            page: int) -> None:
        entry = self.directory.entry(page)
        home = entry.home_owner
        if self.directory.lock_model is not None:
            # Section 3.3.5 ablation: single write-notice list per node,
            # guarded by a cluster-wide lock.
            proc.charge(self.directory.lock_model.update_cost(proc.clock),
                        "protocol")
        visible = self.mc.visibility(proc.clock)
        for owner in entry.sharers():
            if owner == st.owner or owner == home:
                continue
            self.boards[owner].post(st.owner, page, visible)
            proc.charge(self.costs.mc_word_write, "protocol")
            proc.stats.bump("write_notices")
            self.mc.account("write_notice", 4)

    def _downgrade_self(self, proc: Processor, st: ProcProtoState,
                        page: int) -> None:
        table = self.tables[st.owner]
        if table.perm(page, st.lidx) == Perm.WRITE:
            table.set_perm(page, st.lidx, Perm.READ)
            proc.charge(self.costs.mprotect, "protocol")

    # ------------------------------------------------------------- shootdown

    def _shootdown_and_flush(self, proc: Processor, st: ProcProtoState,
                             page: int, meta: PageMeta) -> None:
        """2LS only: shoot down concurrent local writers, flush, drop twin.

        The second-level directory limits the shootdown to processors that
        actually hold write mappings (unlike SoftFLASH's conservative
        all-processor shootdown), and the polling-based message layer makes
        each shootdown cheap (Section 3.3.4).
        """
        costs = self.costs
        table = self.tables[st.owner]
        targets = [w for w in table.writers(page) if w != st.lidx]
        per_target = (costs.shootdown_polled if self.config.polling
                      else costs.shootdown_interrupt)
        for lw in targets:
            peer = self.node_of_owner(st.owner).processors[lw]
            table.set_perm(page, lw, Perm.READ)
            peer.charge(per_target, "protocol")
        proc.charge(per_target * max(1, len(targets)), "protocol")
        proc.stats.bump("shootdowns")
        if self.trace is not None:
            self.trace.instant("shootdown", proc, proc.clock, obj=page,
                               targets=len(targets))
        if meta.twin is not None:
            diff = flush_update(st.frames[page], meta.twin, self.master(page))
            proc.charge(self.config.diff_out_cost(diff.nbytes, True),
                        "protocol")
            self._account_diff(proc, meta, diff, page)
            meta.twin = None
        self._send_write_notices(proc, st, page)


class Cashmere2LS(Cashmere2L):
    """Cashmere-2LS: identical to 2L, but uses TLB shootdown in place of
    two-way diffing when multiple local writers are active (Section 2.6)."""

    name = "2LS"
    shootdown = True

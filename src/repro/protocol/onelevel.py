"""The one-level protocols: Cashmere-1LD (diffing) and Cashmere-1L
(write doubling), plus the home-node optimization (Section 2.6).

Both protocols treat each *processor* as a separate coherence node: every
processor keeps its own copy of each shared page, so intra-node hardware
coherence is never exploited. The master copy of a page is a Memory
Channel receive region distinct from any processor's working copy — even
on the home processor, which is why Table 1 lists a *local* page-transfer
cost and why write doubling has a cache penalty on the home node.

* **1LD** merges changes into the master with twins and outgoing diffs at
  release time (like the two-level protocols, minus the sharing).
* **1L** "doubles" every write to shared data in-line: each store also
  writes through to the master copy over the Memory Channel. No twins or
  diffs, but per-store overhead and poor write coalescing.

Differences from the two-level protocols, per Section 2.6: read faults
*always* fetch from the home; write-notice lists are per processor and
protected by cluster-wide locks; a page enters exclusive mode at a
*release* that finds no other sharers; an acquire invalidates every
noticed page and removes the processor from its sharing set (no
timestamps — the coalescing they enable needs node-level sharing).

The *home-node optimization* (``home_opt=True``) lets processors located
on the home processor's SMP node map the master copy directly, skipping
fetches, twins, and invalidations for those pages — an intermediate
design between one and two levels, used in Figure 7's unshaded bar
extensions.
"""

from __future__ import annotations

import numpy as np

from ..cluster.machine import Processor
from ..errors import ProtocolError
from ..vm.diffs import incoming_diff, make_twin, outgoing_diff, apply_diff
from ..vm.page import Perm
from .base import PAGE_HEADER_BYTES, BaseProtocol, ProcProtoState
from .directory import NO_HOLDER


class _OwnerMeta:
    """Per-owner (= per-processor) page bookkeeping for the 1-level protocols."""

    __slots__ = ("twins",)

    def __init__(self) -> None:
        self.twins: dict[int, np.ndarray] = {}


class OneLevelProtocol(BaseProtocol):
    """Common one-level machinery (subclasses pick the merge mechanism)."""

    two_level = False
    #: True for 1L: merge via in-line write doubling instead of diffs.
    write_through = False

    def __init__(self, cluster, *, lock_free: bool = True,
                 home_opt: bool = False) -> None:
        super().__init__(cluster, lock_free=lock_free, home_opt=home_opt)
        self.meta = [_OwnerMeta() for _ in range(self.num_owners)]

    def metrics_gauges(self, emit) -> None:
        """One-level gauges: live twin count and write-notice backlog.

        Always zero twins under 1L (write-through never twins); 1LD
        reports the twins awaiting their outgoing diffs.
        """
        emit("twins", sum(len(m.twins) for m in self.meta))
        emit("notice_backlog", sum(b.pending() for b in self.boards))

    # ------------------------------------------------------------- masters

    def _init_masters(self) -> None:
        # Masters are standalone MC receive regions, not processor frames.
        self.masters: dict[int, np.ndarray] = {
            page: np.zeros(self.config.words_per_page, dtype=np.float64)
            for page in range(self.config.num_pages)}

    def master(self, page: int) -> np.ndarray:
        return self.masters[page]

    def _install_master(self, proc: Processor, page: int,
                        new_home: int) -> None:
        # Relocation re-labels which processor hosts the receive region;
        # the master's contents move wholesale (one page transfer).
        pass  # the shared self.masters array simply changes host

    def _twin_of(self, owner: int, page: int) -> np.ndarray | None:
        return self.meta[owner].twins.get(page)

    def _drop_twin(self, owner: int, page: int) -> None:
        self.meta[owner].twins.pop(page, None)

    # --------------------------------------------------- home-node optimization

    def _on_home_node(self, st: ProcProtoState, page: int) -> bool:
        """Home-node optimization: is this processor on the SMP node that
        hosts the page's master copy?"""
        if not self.home_opt:
            return False
        home_proc = self.cluster.processors[self.directory.home(page)]
        return home_proc.node is st.proc.node

    def _uses_master(self, st: ProcProtoState, page: int) -> bool:
        """True when this processor's frame *is* the master copy (home-node
        optimization in effect for this page)."""
        return st.frames.get(page) is self.masters[page]

    def _after_relocation(self, page: int, old_home: int,
                          new_home: int) -> None:
        if not self.home_opt:
            return
        # Processors that shared the master frame of the *old* home node
        # must stop doing so: their "frame" reverts to a private copy —
        # unless they are on the *new* home's node too (the master moved
        # between processors of one node), in which case the direct
        # mapping stays valid.
        master = self.masters[page]
        old_node = self.cluster.processors[old_home].node
        new_node = self.cluster.processors[new_home].node
        for peer in old_node.processors:
            if peer.node is new_node:
                continue
            pst = self._ps[peer.global_id]
            if pst.frames.get(page) is master:
                del pst.frames[page]
                pst.gen.value += 1  # direct unmap bypasses FrameStore
                pst.wgen.value += 1
                self.tables[pst.owner].set_perm(page, 0, Perm.INVALID)

    # ------------------------------------------------------------- page faults

    def read_fault(self, proc: Processor, st: ProcProtoState,
                   page: int) -> None:
        costs = self.costs
        proc.charge(costs.page_fault, "protocol")
        proc.stats.bump("read_faults")
        self.maybe_relocate_home(proc, page)

        if (self._on_home_node(st, page)
                and page not in self.meta[st.owner].twins
                and (page not in st.frames or self._uses_master(st, page))):
            self._break_if_exclusive_elsewhere(proc, st, page)
            st.frames[page] = self.masters[page]
            st.gen.value += 1  # direct rebind bypasses FrameStore
            st.wgen.value += 1
        else:
            # Read faults always fetch from the home node (Section 2.6).
            self._fetch(proc, st, page)
        self._set_perm(proc, st, page, Perm.READ)
        proc.charge(costs.mprotect, "protocol")

    def write_fault(self, proc: Processor, st: ProcProtoState,
                    page: int) -> None:
        costs = self.costs
        proc.charge(costs.page_fault, "protocol")
        proc.stats.bump("write_faults")
        self.maybe_relocate_home(proc, page)

        map_master = (self._on_home_node(st, page)
                      and page not in self.meta[st.owner].twins
                      and (page not in st.frames
                           or self._uses_master(st, page)))
        if map_master:
            self._break_if_exclusive_elsewhere(proc, st, page)
            st.frames[page] = self.masters[page]
            st.gen.value += 1  # direct rebind bypasses FrameStore
            st.wgen.value += 1
        elif (page not in st.frames
              or self.tables[st.owner].perm(page, 0) == Perm.INVALID):
            # Write faults fetch the page if necessary.
            self._fetch(proc, st, page)
        else:
            # Even with a fresh local copy, a write must not proceed while
            # another processor holds the page exclusively.
            self._break_if_exclusive_elsewhere(proc, st, page)

        st.dirty.add(page)
        if (not self.write_through and not self._uses_master(st, page)
                and page not in self.meta[st.owner].twins):
            self.meta[st.owner].twins[page] = make_twin(st.frames[page])
            proc.charge(self.config.twin_cost(), "protocol")
            proc.stats.bump("twin_creations")
        self._set_perm(proc, st, page, Perm.WRITE)
        proc.charge(costs.mprotect, "protocol")

    def _set_perm(self, proc: Processor, st: ProcProtoState, page: int,
                  perm: Perm) -> None:
        table = self.tables[st.owner]
        old = table.perm(page, 0)
        table.set_perm(page, 0, perm)
        if old != perm:
            # Presence bits / permission in this owner's directory word.
            self._set_node_perm_word(proc, page, perm)

    # ------------------------------------------------------------------ fetch

    def _break_if_exclusive_elsewhere(self, proc: Processor,
                                      st: ProcProtoState, page: int) -> None:
        entry = self.directory.entry(page)
        self._await_not_pending(proc, entry)
        holder = entry.exclusive_holder()
        if holder is not None and holder[0] != st.owner:
            self._break_exclusive(proc, page, holder)

    def _fetch(self, proc: Processor, st: ProcProtoState, page: int) -> None:
        if self.trace is None:
            self._fetch_inner(proc, st, page)
            return
        t0 = proc.clock
        self._fetch_inner(proc, st, page)
        self.trace.span("page_fetch", proc, t0, proc.clock - t0, obj=page,
                        bytes=self.config.page_bytes)

    def _fetch_inner(self, proc: Processor, st: ProcProtoState,
                     page: int) -> None:
        proc.charge(self.costs.fetch_overhead, "protocol")
        entry = self.directory.entry(page)
        self._await_not_pending(proc, entry)
        holder = entry.exclusive_holder()
        if holder is not None and holder[0] != st.owner:
            payload = self._break_exclusive(proc, page, holder)
        else:
            home_owner = entry.home_owner
            home_node = self.node_of_owner(home_owner)
            local = home_node is proc.node
            payload, done = self.requests.explicit_request(
                proc, home_node, self._make_fetch_handler(page, local),
                category="page")
            if done > proc.clock:
                proc.charge(done - proc.clock, "comm_wait")
        proc.stats.bump("page_transfers")

        twin = self.meta[st.owner].twins.get(page)
        if twin is not None:
            # Unreleased local writes under false sharing: merge the master's
            # remote changes through the twin instead of clobbering them.
            diff = incoming_diff(payload, st.frames[page], twin,
                                 context=f"1-level fetch of page {page}")
            proc.charge(self.config.diff_in_cost(diff.nbytes), "protocol")
            if self.trace is not None:
                self.trace.instant("diff_in", proc, proc.clock, obj=page,
                                   bytes=int(diff.nbytes))
        else:
            self.frames.map_frame(st.owner, page, payload)
            proc.charge(self.config.page_copy_cost(), "protocol")

    def _make_fetch_handler(self, page: int, local: bool):
        page_bytes = self.config.page_bytes

        def handler(server: Processor, at: float):
            cost = self.config.page_copy_cost()
            reply = 0 if local else page_bytes + PAGE_HEADER_BYTES
            if local:
                # Same-node transfer: a bus memcpy instead of an MC transfer.
                begin, end = server.node.bus.acquire(
                    at, page_bytes / self.costs.node_bus_bandwidth)
                cost += end - at
            return self.masters[page].copy(), cost, reply

        return handler

    # -------------------------------------------------------------- exclusive

    def _break_exclusive(self, proc: Processor, page: int,
                         holder: tuple[int, int]) -> np.ndarray:
        holder_owner, _holder_proc = holder
        page_bytes = self.config.page_bytes

        def handler(server: Processor, at: float):
            entry = self.directory.entry(page)
            if entry.excl_of(holder_owner) == NO_HOLDER:
                return self.masters[page].copy(), 2.0, page_bytes
            frame = self.frames.frame(holder_owner, page)
            cost = self.config.page_copy_cost()
            # Flush the whole page to the home before the fetch proceeds.
            # Under write-through (1L) the master is already current — and
            # strictly fresher than the holder's frame — so keep it.
            if not self.write_through:
                self.masters[page][:] = frame
            frame = self.masters[page]
            _, _visible = self.mc.transfer(at, page_bytes,
                                           category="excl_flush")
            entry.clear_excl(holder_owner)
            cost += self.directory.update_cost(server)
            server.stats.bump("directory_updates")
            server.stats.bump("excl_transitions")
            hst = self._ps[holder_owner]
            hst.excl_pages.discard(page)
            # Downgrade so future writes are tracked again.
            table = self.tables[holder_owner]
            if table.perm(page, 0) == Perm.WRITE:
                table.set_perm(page, 0, Perm.READ)
                cost += self.costs.mprotect
            return frame.copy(), cost, page_bytes + PAGE_HEADER_BYTES

        t0 = proc.clock
        payload, done = self.requests.explicit_request(
            proc, self.node_of_owner(holder_owner), handler,
            target_proc=holder_owner, category="page")
        if self._transients:
            # Mark the entry Pending until the break's directory
            # rewrite is globally visible (see Cashmere2L counterpart).
            self.directory.entry(page).set_pending(
                done + self.costs.mc_latency)
        if done > proc.clock:
            proc.charge(done - proc.clock, "comm_wait")
        if self.trace is not None:
            self.trace.span("excl_break", proc, t0, proc.clock - t0,
                            obj=page, holder=holder_owner)
        return payload

    # ------------------------------------------------------------ acquire side

    def acquire_sync(self, proc: Processor) -> None:
        st = self._ps[proc.global_id]
        board = self.boards[st.owner]
        notices, gap = self._collect_notices(proc, board)
        if notices:
            # 1-level write-notice lists are guarded by cluster-wide locks.
            proc.charge(self.costs.mc_lock_overhead + self.costs.mc_latency,
                        "protocol")
        for wn in notices:
            if wn.lost:
                continue  # a gap, not a page number; handled below
            st.notices.add(wn.page)
        if gap:
            self._recover_lost_notices(proc, st)
        for page in st.notices.drain():
            if self._uses_master(st, page):
                continue  # home-node optimization: master is always fresh
            table = self.tables[st.owner]
            if table.perm(page, 0) == Perm.INVALID:
                continue
            # Invalidate and leave the page's sharing set.
            table.set_perm(page, 0, Perm.INVALID)
            proc.charge(self.costs.mprotect, "protocol")
            self._set_node_perm_word(proc, page, Perm.INVALID)
            if page not in self.meta[st.owner].twins:
                self.frames.unmap_frame(st.owner, page)

    def _recover_lost_notices(self, proc: Processor,
                              st: ProcProtoState) -> None:
        """Conservative resync after a write-notice sequence gap.

        A lost notice carries no page number, so every page this processor
        could be caching stale is treated as noticed: anything currently
        mapped with read/write permission that is neither the master copy
        (home-node optimization — always fresh) nor held exclusively by us.
        The directory re-read is charged like one directory update.
        """
        proc.stats.bump("notice_resyncs")
        proc.charge(self.directory.update_cost(proc), "protocol")
        table = self.tables[st.owner]
        for page in range(self.config.num_pages):
            if table.perm(page, 0) == Perm.INVALID:
                continue
            if self._uses_master(st, page):
                continue
            entry = self.directory.entry(page)
            if entry.excl_of(st.owner) != NO_HOLDER:
                continue  # we hold it exclusively; nobody else wrote it
            st.notices.add(page)

    # ------------------------------------------------------------ release side

    def release_sync(self, proc: Processor) -> None:
        st = self._ps[proc.global_id]
        for page in sorted(st.dirty):
            self._flush_one(proc, st, page)
        st.dirty.clear()

    def _flush_one(self, proc: Processor, st: ProcProtoState,
                   page: int) -> None:
        if self.trace is None:
            self._flush_one_inner(proc, st, page)
            return
        t0 = proc.clock
        self._flush_one_inner(proc, st, page)
        self.trace.span("page_flush", proc, t0, proc.clock - t0, obj=page)

    def _flush_one_inner(self, proc: Processor, st: ProcProtoState,
                         page: int) -> None:
        entry = self.directory.entry(page)
        home_owner = entry.home_owner
        uses_master = self._uses_master(st, page)
        sharers = [o for o in entry.sharers() if o != st.owner]

        # Merge changes into the master copy.
        if not uses_master:
            if self.write_through:
                pass  # 1L: every write already went through to the master
            else:
                twin = self.meta[st.owner].twins.get(page)
                if twin is None:
                    raise ProtocolError(
                        f"1LD flush of page {page} without twin")
                diff = outgoing_diff(st.frames[page], twin)
                apply_diff(self.masters[page], diff)
                local = self.node_of_owner(home_owner) is proc.node
                proc.charge(
                    self.config.diff_out_cost(diff.nbytes, not local),
                    "protocol")
                if self.trace is not None:
                    self.trace.instant("diff_out", proc, proc.clock,
                                       obj=page, bytes=int(diff.nbytes))
                if not local and diff.nbytes:
                    send_done, _ = self.mc.transfer(proc.clock, diff.nbytes,
                                                    category="diff")
                    if send_done > proc.clock:
                        proc.charge(send_done - proc.clock, "comm_wait")
                self.meta[st.owner].twins.pop(page, None)
                if self._migrate_policy and home_owner != st.owner:
                    self._note_remote_flush(page, st.owner)

        # Write notices to sharers that do not already hold one.
        if sharers:
            proc.charge(self.costs.mc_lock_overhead + self.costs.mc_latency,
                        "protocol")  # cluster-wide write-notice lock
            visible = self.mc.visibility(proc.clock)
            for owner in sharers:
                # Note: the home *processor* gets notices too — its working
                # copy is distinct from the master region (Section 2.6);
                # only a processor actually mapping the master (home-node
                # optimization) skips invalidation, on the receive side.
                self.boards[owner].post(st.owner, page, visible)
                proc.charge(self.costs.mc_word_write, "protocol")
                proc.stats.bump("write_notices")
                self.mc.account("write_notice", 4)
        else:
            # No other sharers: the page enters exclusive mode and leaves
            # coherence until another processor asks for it. A pending
            # write notice disqualifies it: our copy would be stale.
            if (entry.excl_of(st.owner) == NO_HOLDER
                    and not self._notices_pending(st.owner, page)
                    and not entry.is_pending(proc.clock)):
                entry.set_excl(st.owner, proc.global_id)
                self._charge_dir_update(proc)
                proc.stats.bump("excl_transitions")
                st.excl_pages.add(page)
                return  # keep write permission; no downgrade

        # Downgrade so future writes fault (and are tracked) again.
        table = self.tables[st.owner]
        if table.perm(page, 0) == Perm.WRITE:
            table.set_perm(page, 0, Perm.READ)
            proc.charge(self.costs.mprotect, "protocol")


class Cashmere1LD(OneLevelProtocol):
    """One-level protocol with twins and outgoing diffs."""

    name = "1LD"
    write_through = False


class Cashmere1L(OneLevelProtocol):
    """One-level protocol with in-line write doubling (write-through).

    Every store to shared data additionally writes the word through to
    the home copy over the Memory Channel. The doubling cost is charged
    to the Figure-6 "Write Doubling" bucket; on the home node the doubled
    write also pollutes the cache (modeled as extra node-bus traffic).
    """

    name = "1L"
    write_through = True

    #: CPU cost of doubling one simulated word. Defaults to the cost
    #: model's raw I/O-space store cost; the runtime overrides it with the
    #: application's scaled value (one simulated word stands for many real
    #: words at our scaled problem sizes, so the in-line doubling cost
    #: scales with the same factor as the application's compute).
    word_double_us: float | None = None

    def store(self, proc: Processor, page: int, offset: int,
              value: float) -> None:
        st = self._ps[proc.global_id]
        if st.rows[page][st.lidx] < Perm.WRITE:
            if self.trace is None:
                self.write_fault(proc, st, page)
            else:
                self._traced_write_fault(proc, st, page)
        st.frames[page][offset] = value
        self._double_words(proc, st, page, offset, 1,
                           np.float64(value))
        if self.tracer is not None:
            self.tracer.on_store(proc, page, offset, value)

    def store_range(self, proc: Processor, page: int, lo: int,
                    values: np.ndarray) -> None:
        st = self._ps[proc.global_id]
        if st.rows[page][st.lidx] < Perm.WRITE:
            if self.trace is None:
                self.write_fault(proc, st, page)
            else:
                self._traced_write_fault(proc, st, page)
        st.frames[page][lo:lo + len(values)] = values
        self._double_words(proc, st, page, lo, len(values), values)
        if self.tracer is not None:
            self.tracer.on_store_range(proc, page, lo, values)

    def _double_words(self, proc: Processor, st: ProcProtoState, page: int,
                      lo: int, count: int, values) -> None:
        master = self.masters[page]
        if master is st.frames.get(page):
            return  # home-node optimization: the store already hit the master
        if np.ndim(values) == 0:
            master[lo] = values
        else:
            master[lo:lo + count] = values
        costs = self.costs
        per_word = self.word_double_us
        if per_word is None:
            per_word = costs.mc_word_write
        proc.charge(per_word * count, "write_double")
        proc.stats.bump("doubled_words", count)
        home_node = self.node_of_owner(self.directory.home(page))
        if home_node is proc.node:
            # Doubling into local physical memory: cache pollution shows up
            # as extra traffic on the node bus.
            begin, end = proc.node.bus.acquire(
                proc.clock, (8.0 * count) / costs.node_bus_bandwidth)
            proc.charge(end - proc.clock, "write_double")
            self.mc.account("write_double_local", 0)
        else:
            # Remote writes ride the MC; coalescing in the write buffer is
            # imperfect (Section 3.3.1), so charge the full word each time.
            _, _ = self.mc.transfer(proc.clock, 4 * count,
                                    category="write_double")

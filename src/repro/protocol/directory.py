"""The distributed page directory (Section 2.3, Figures 1 and 2).

Each shared page has a replicated directory entry of one 32-bit word per
owner (SMP node in the two-level protocols, processor in the one-level
protocols). The word written by owner *i* describes *i*'s own view:

* the page's loosest permission on any of its processors (2 bits),
* the id of a processor holding the page in exclusive mode (6 bits),
* the id of the home processor / node (6 bits, redundant across words).

Because each word has a single writer, no global lock is needed —
modifications are broadcast over the Memory Channel and "doubled" to the
writer's local copy in software (directory regions do not use loop-back).
The lock-free layout is the paper's key to reduced protocol
synchronization; :class:`DirectoryLockModel` implements the Section 3.3.5
ablation where entries are compressed into a single word protected by a
cluster-wide lock (cost 16 us per update instead of 5 us, plus
serialization).

The simulation keeps one authoritative copy and performs updates
atomically at handler time; the Memory Channel's 5.2 us propagation shows
up in the costs and traffic accounting. This matches the protocol's
tolerance of briefly stale directory views.

Representation (DESIGN.md §15)
------------------------------
On the wire an entry is always ``num_owners`` words; in simulator memory
it need not be. The default :class:`DirEntry` is **sparse**: it stores
only the owners whose permission is READ or better (a dict keyed by
owner) plus the single cached exclusive holder, so entry size,
``sharers()``, the tighten/loosen scans, and
:meth:`GlobalDirectory.occupancy` cost O(sharers) instead of
O(num_owners). On a 64-node cluster where a typical page has one or two
sharers this is the difference between a 512-processor run being
tractable and every directory touch paying a 64-wide scan. Sparseness is
purely a storage optimization: the wire accounting
(:meth:`GlobalDirectory.broadcast_bytes`) still charges one word per
replica, and every observable — permissions, holders, occupancy,
statistics, result bytes — is byte-identical to the dense form.

The dense form survives as :class:`DenseDirEntry` behind the
``CASHMERE_DENSE_DIR`` debug flag (or ``GlobalDirectory(dense=True)``)
for differential testing: ``tests/test_directory.py`` drives both forms
through randomized update sequences and asserts identical answers.

Both forms expose the same accessor protocol — ``perm_of``/``set_perm``,
``excl_of``/``set_excl``/``clear_excl``, ``sharers``,
``has_other_sharer``, ``exclusive_holder``, ``state_tuple`` — and the
protocols only ever go through it; nothing outside this module indexes
directory words directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig, env_flag
from ..errors import ProtocolError
from ..sim.engine import SerialResource
from ..vm.page import Perm

#: Sentinel for "no exclusive holder".
NO_HOLDER = -1


@dataclass(slots=True)
class DirWord:
    """One owner's view of a page (one 32-bit MC word) — dense form."""

    perm: Perm = Perm.INVALID
    excl_holder: int = NO_HOLDER  # global processor id, or NO_HOLDER


class _EntryOps:
    """Operations shared by the sparse and dense entry forms."""

    __slots__ = ()

    def is_pending(self, at: float) -> bool:
        """Whether the entry is mid-transaction at simulated time ``at``."""
        return at < self.pending_until

    def set_pending(self, until: float) -> None:
        """Open (or extend) the transient window to time ``until``."""
        if until > self.pending_until:
            self.pending_until = until

    def excl_of(self, owner: int) -> int:
        """``owner``'s exclusive-holder word field: the global processor
        id if ``owner`` holds the page exclusively, else NO_HOLDER."""
        holder = self.exclusive_holder()
        return holder[1] if holder is not None and holder[0] == owner \
            else NO_HOLDER

    def has_other_sharer(self, owner: int) -> bool:
        """Whether any owner besides ``owner`` maps the page."""
        for o in self.sharers():
            if o != owner:
                return True
        return False


class DirEntry(_EntryOps):
    """A page's directory entry, sparse form (the default).

    Stores only the owners whose loosest permission is READ or better
    (``perms``: owner -> Perm, never holding INVALID) plus the cached
    ``(owner, processor)`` exclusive holder. Invariants:

    * ``perms[o]`` exists iff owner *o*'s directory word would say READ
      or WRITE — so ``sharers()`` is just the (sorted) key set;
    * at most one owner holds the page exclusively, and ``excl`` *is*
      that fact — there is no per-word holder field to drift from it
      (``set_excl`` raises the same corruption error the dense form's
      word scan would);
    * entry size is O(sharers), independent of ``num_owners``.
    """

    __slots__ = ("home_owner", "home_is_default", "perms", "excl",
                 "pending_until")

    def __init__(self, home_owner: int, home_is_default: bool = True) -> None:
        self.home_owner = home_owner
        self.home_is_default = home_is_default
        #: owner -> loosest Perm; only owners with perm > INVALID appear.
        self.perms: dict[int, Perm] = {}
        #: Cached (owner, processor) of the current exclusive holder. The
        #: fault path queries the holder on every fault; keeping it as a
        #: single field makes that O(1) and makes a two-holder state
        #: unrepresentable.
        self.excl: tuple[int, int] | None = None
        #: Transient (Pending) state, FLASH-style (SNIPPETS.md Snippet 3):
        #: under fault injection, a transaction that rewrites this entry
        #: in multiple ordered steps (an exclusive-mode break, a home
        #: relocation) marks the entry pending until its final write is
        #: globally visible; concurrent requesters that read the pending
        #: state take the timeout path (``BaseProtocol._await_not_pending``)
        #: instead of acting on a half-updated entry. Never set on
        #: fault-free runs.
        self.pending_until: float = 0.0

    # --- accessor protocol -------------------------------------------------

    def perm_of(self, owner: int) -> Perm:
        """``owner``'s loosest permission for the page."""
        return self.perms.get(owner, Perm.INVALID)

    def set_perm(self, owner: int, perm: Perm) -> None:
        """Write ``owner``'s directory word's permission field."""
        if perm > Perm.INVALID:
            self.perms[owner] = perm
        else:
            self.perms.pop(owner, None)

    def sharers(self) -> list[int]:
        """Owners whose loosest permission is READ or better, ascending."""
        return sorted(self.perms)

    def has_other_sharer(self, owner: int) -> bool:
        perms = self.perms
        return len(perms) > 1 or (len(perms) == 1 and owner not in perms)

    def exclusive_holder(self) -> tuple[int, int] | None:
        """(owner, processor) currently holding the page exclusively."""
        return self.excl

    def excl_of(self, owner: int) -> int:
        excl = self.excl
        return excl[1] if excl is not None and excl[0] == owner \
            else NO_HOLDER

    def set_excl(self, owner: int, proc: int) -> None:
        """Record ``proc`` (on ``owner``) as the exclusive holder."""
        if self.excl is not None and self.excl[0] != owner:
            raise ProtocolError(
                f"directory corrupt: exclusive holders on owners "
                f"{[self.excl[0], owner]}")
        self.excl = (owner, proc)

    def clear_excl(self, owner: int) -> None:
        """Drop ``owner``'s exclusive holding (no-op if not the holder)."""
        if self.excl is not None and self.excl[0] == owner:
            self.excl = None

    def state_tuple(self) -> tuple:
        """Canonical hashable form for state digests (the model checker's
        ``state_key``). Identical for sparse and dense entries holding
        the same logical state."""
        return (tuple(sorted((o, int(p)) for o, p in self.perms.items())),
                self.excl)

    def occupancy_into(self, per_owner: list[int]) -> int:
        """Add this entry's sharers to ``per_owner`` and return the
        page-state histogram bucket (0 invalid, 1 read, 2 write,
        3 exclusive). O(sharers)."""
        loosest = Perm.INVALID
        for owner, perm in self.perms.items():
            per_owner[owner] += 1
            if perm > loosest:
                loosest = perm
        if self.excl is not None:
            return 3
        if loosest >= Perm.WRITE:
            return 2
        if loosest >= Perm.READ:
            return 1
        return 0


class DenseDirEntry(_EntryOps):
    """The dense (one :class:`DirWord` per owner) entry form.

    Kept behind the ``CASHMERE_DENSE_DIR`` debug flag as the
    differential-testing reference: it is the paper's literal layout,
    pays O(num_owners) per scan, and must agree with :class:`DirEntry`
    on every accessor for every update sequence.
    """

    __slots__ = ("words", "home_owner", "home_is_default", "excl",
                 "excl_known", "pending_until")

    def __init__(self, home_owner: int, home_is_default: bool = True, *,
                 num_owners: int = 0,
                 words: "list[DirWord] | None" = None) -> None:
        self.home_owner = home_owner
        self.home_is_default = home_is_default
        self.words: list[DirWord] = (
            words if words is not None
            else [DirWord() for _ in range(num_owners)])
        # Cached (owner, processor) of the current exclusive holder, kept
        # in lockstep with the per-word ``excl_holder`` fields by
        # set_excl/clear_excl; derived lazily from the words on first use
        # (``excl_known``), so entries built with pre-set words agree.
        self.excl: tuple[int, int] | None = None
        self.excl_known = False
        self.pending_until = 0.0

    # --- accessor protocol -------------------------------------------------

    def perm_of(self, owner: int) -> Perm:
        return self.words[owner].perm

    def set_perm(self, owner: int, perm: Perm) -> None:
        self.words[owner].perm = perm

    def sharers(self) -> list[int]:
        return [i for i, w in enumerate(self.words) if w.perm >= Perm.READ]

    def exclusive_holder(self) -> tuple[int, int] | None:
        if not self.excl_known:
            self._derive_excl()
        return self.excl

    def _derive_excl(self) -> None:
        holders = [(i, w.excl_holder) for i, w in enumerate(self.words)
                   if w.excl_holder != NO_HOLDER]
        if len(holders) > 1:
            raise ProtocolError(
                f"directory corrupt: exclusive holders on owners "
                f"{[h[0] for h in holders]}")
        self.excl = holders[0] if holders else None
        self.excl_known = True

    def set_excl(self, owner: int, proc: int) -> None:
        if not self.excl_known:
            self._derive_excl()
        if self.excl is not None and self.excl[0] != owner:
            raise ProtocolError(
                f"directory corrupt: exclusive holders on owners "
                f"{[self.excl[0], owner]}")
        self.words[owner].excl_holder = proc
        self.excl = (owner, proc)

    def clear_excl(self, owner: int) -> None:
        if not self.excl_known:
            self._derive_excl()
        self.words[owner].excl_holder = NO_HOLDER
        if self.excl is not None and self.excl[0] == owner:
            self.excl = None

    def state_tuple(self) -> tuple:
        return (tuple(sorted(
            (o, int(w.perm)) for o, w in enumerate(self.words)
            if w.perm > Perm.INVALID)),
            self.exclusive_holder())

    def occupancy_into(self, per_owner: list[int]) -> int:
        loosest = Perm.INVALID
        exclusive = False
        for owner, word in enumerate(self.words):
            if word.perm >= Perm.READ:
                per_owner[owner] += 1
            if word.perm > loosest:
                loosest = word.perm
            if word.excl_holder != NO_HOLDER:
                exclusive = True
        if exclusive:
            return 3
        if loosest >= Perm.WRITE:
            return 2
        if loosest >= Perm.READ:
            return 1
        return 0


class GlobalDirectory:
    """The replicated directory for every shared page.

    ``num_owners`` is the replication domain size. All mutation goes
    through :meth:`update`, which charges the measured modification cost
    (optionally under the global-lock ablation model) and accounts the
    broadcast traffic.

    ``dense`` selects the entry representation: ``None`` (default) uses
    the sparse form unless the ``CASHMERE_DENSE_DIR`` debug flag is set;
    ``True``/``False`` force it for differential tests. Both forms are
    byte-identical in every observable.
    """

    def __init__(self, config: MachineConfig, num_owners: int,
                 lock_model: "DirectoryLockModel | None" = None,
                 dense: "bool | None" = None) -> None:
        self.config = config
        self.num_owners = num_owners
        self.lock_model = lock_model
        if dense is None:
            dense = env_flag("CASHMERE_DENSE_DIR")
        self.dense = dense
        pages = config.num_pages
        per_super = config.superpage_pages
        self.entries: list = []
        for page in range(pages):
            # Round-robin initial home assignment, per superpage (Section 2.3).
            home = (page // per_super) % num_owners
            if dense:
                self.entries.append(DenseDirEntry(
                    home, num_owners=num_owners))
            else:
                self.entries.append(DirEntry(home))

    def entry(self, page: int):
        return self.entries[page]

    def home(self, page: int) -> int:
        return self.entries[page].home_owner

    def update_cost(self, proc) -> float:
        """Cost in us of one directory modification for ``proc``.

        Under the lock-free layout this is a constant 5 us. Under the
        global-lock ablation the update serializes on the cluster-wide
        lock and costs 16 us plus any queueing delay.
        """
        if self.lock_model is None:
            return self.config.costs.dir_update
        return self.lock_model.update_cost(proc.clock)

    def broadcast_bytes(self) -> int:
        """Wire bytes for one entry modification (word × replicas).

        Wire semantics, not storage: the broadcast always writes one
        word per replica regardless of the in-memory entry form.
        """
        return 4 * self.num_owners

    def occupancy(self) -> tuple[list[int], list[int]]:
        """Directory occupancy snapshot for the metrics collector.

        Returns ``(per_owner, histogram)``: ``per_owner[i]`` counts the
        pages owner *i* currently maps (its directory word says READ or
        better), and ``histogram`` buckets every page by its loosest
        cluster-wide state — ``[invalid, read, write, exclusive]``.
        Read-only, and O(total sharers) with sparse entries: a page with
        no sharers costs one dict iteration, not a ``num_owners`` scan.
        """
        per_owner = [0] * self.num_owners
        histogram = [0, 0, 0, 0]
        for entry in self.entries:
            histogram[entry.occupancy_into(per_owner)] += 1
        return per_owner, histogram


class DirectoryLockModel:
    """Section 3.3.5 ablation: a single cluster-wide directory lock.

    With global locks the entry compresses to one word, but every update
    must acquire/release an 11 us Memory Channel lock around the 5 us
    modification — and updates from different processors serialize.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.lock = SerialResource(name="global-dir-lock")

    def update_cost(self, at: float) -> float:
        hold = self.config.costs.dir_update_locked
        begin, end = self.lock.acquire(at, hold)
        return end - at


@dataclass(slots=True)
class PageMeta:
    """Second-level (intra-node) directory state for one page (Section 2.3).

    Timestamps are values of the node's logical clock (incremented on page
    faults, page flushes, acquires, and releases):

    * ``flush_ts`` — when the most recent home-node flush began;
    * ``update_ts`` — when the most recent local update (fetch) completed;
    * ``wn_ts`` — when the most recent write notice was received.

    ``flush_end_real`` is the simulated real time at which the last flush's
    data reaches the home node, used by overlapping releases that skip a
    flush but must wait for the active one to complete.
    """

    flush_ts: int = -1
    update_ts: int = -1
    wn_ts: int = -1
    flush_end_real: float = 0.0
    twin: object | None = None  # numpy array when a twin exists

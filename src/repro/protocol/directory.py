"""The distributed page directory (Section 2.3, Figures 1 and 2).

Each shared page has a replicated directory entry of one 32-bit word per
owner (SMP node in the two-level protocols, processor in the one-level
protocols). The word written by owner *i* describes *i*'s own view:

* the page's loosest permission on any of its processors (2 bits),
* the id of a processor holding the page in exclusive mode (6 bits),
* the id of the home processor / node (6 bits, redundant across words).

Because each word has a single writer, no global lock is needed —
modifications are broadcast over the Memory Channel and "doubled" to the
writer's local copy in software (directory regions do not use loop-back).
The lock-free layout is the paper's key to reduced protocol
synchronization; :class:`DirectoryLockModel` implements the Section 3.3.5
ablation where entries are compressed into a single word protected by a
cluster-wide lock (cost 16 us per update instead of 5 us, plus
serialization).

The simulation keeps one authoritative copy and performs updates
atomically at handler time; the Memory Channel's 5.2 us propagation shows
up in the costs and traffic accounting. This matches the protocol's
tolerance of briefly stale directory views.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..errors import ProtocolError
from ..sim.engine import SerialResource
from ..vm.page import Perm

#: Sentinel for "no exclusive holder".
NO_HOLDER = -1


@dataclass(slots=True)
class DirWord:
    """One owner's view of a page (one 32-bit MC word)."""

    perm: Perm = Perm.INVALID
    excl_holder: int = NO_HOLDER  # global processor id, or NO_HOLDER


@dataclass(slots=True)
class DirEntry:
    """A page's full directory entry: one word per owner plus home info."""

    words: list[DirWord]
    home_owner: int
    home_is_default: bool = True
    #: Cached (owner, processor) of the current exclusive holder, kept in
    #: lockstep with the per-word ``excl_holder`` fields by
    #: :meth:`set_excl` / :meth:`clear_excl` — the fault path queries the
    #: holder on every fault, and a word scan there costs more than the
    #: whole rest of the lookup. Derived lazily from the words on first
    #: use (``excl_known``), so entries built with pre-set words agree.
    excl: "tuple[int, int] | None" = None
    excl_known: bool = False
    #: Transient (Pending) state, FLASH-style (SNIPPETS.md Snippet 3):
    #: under fault injection, a transaction that rewrites this entry in
    #: multiple ordered steps (an exclusive-mode break, a home
    #: relocation) marks the entry pending until its final write is
    #: globally visible. Concurrent requesters that *read* the pending
    #: state must take the timeout path (wait out the window, then
    #: retry; see ``BaseProtocol._await_not_pending``) instead of acting
    #: on a half-updated entry. Never set on fault-free runs — the
    #: window that makes it observable only opens under injected
    #: reordering — so clean executions are untouched.
    pending_until: float = 0.0

    def is_pending(self, at: float) -> bool:
        """Whether the entry is mid-transaction at simulated time ``at``."""
        return at < self.pending_until

    def set_pending(self, until: float) -> None:
        """Open (or extend) the transient window to time ``until``."""
        if until > self.pending_until:
            self.pending_until = until

    def sharers(self) -> list[int]:
        """Owners whose loosest permission is READ or better."""
        return [i for i, w in enumerate(self.words) if w.perm >= Perm.READ]

    def exclusive_holder(self) -> tuple[int, int] | None:
        """(owner, processor) currently holding the page exclusively."""
        if not self.excl_known:
            self._derive_excl()
        return self.excl

    def _derive_excl(self) -> None:
        holders = [(i, w.excl_holder) for i, w in enumerate(self.words)
                   if w.excl_holder != NO_HOLDER]
        if len(holders) > 1:
            raise ProtocolError(
                f"directory corrupt: exclusive holders on owners "
                f"{[h[0] for h in holders]}")
        self.excl = holders[0] if holders else None
        self.excl_known = True

    def set_excl(self, owner: int, proc: int) -> None:
        """Record ``proc`` (on ``owner``) as the exclusive holder."""
        if not self.excl_known:
            self._derive_excl()
        if self.excl is not None and self.excl[0] != owner:
            raise ProtocolError(
                f"directory corrupt: exclusive holders on owners "
                f"{[self.excl[0], owner]}")
        self.words[owner].excl_holder = proc
        self.excl = (owner, proc)

    def clear_excl(self, owner: int) -> None:
        """Drop ``owner``'s exclusive holding (no-op if not the holder)."""
        if not self.excl_known:
            self._derive_excl()
        self.words[owner].excl_holder = NO_HOLDER
        if self.excl is not None and self.excl[0] == owner:
            self.excl = None


class GlobalDirectory:
    """The replicated directory for every shared page.

    ``num_owners`` is the replication domain size. All mutation goes
    through :meth:`update`, which charges the measured modification cost
    (optionally under the global-lock ablation model) and accounts the
    broadcast traffic.
    """

    def __init__(self, config: MachineConfig, num_owners: int,
                 lock_model: "DirectoryLockModel | None" = None) -> None:
        self.config = config
        self.num_owners = num_owners
        self.lock_model = lock_model
        pages = config.num_pages
        per_super = config.superpage_pages
        self.entries: list[DirEntry] = []
        for page in range(pages):
            # Round-robin initial home assignment, per superpage (Section 2.3).
            home = (page // per_super) % num_owners
            self.entries.append(DirEntry(
                words=[DirWord() for _ in range(num_owners)],
                home_owner=home))

    def entry(self, page: int) -> DirEntry:
        return self.entries[page]

    def home(self, page: int) -> int:
        return self.entries[page].home_owner

    def update_cost(self, proc) -> float:
        """Cost in us of one directory modification for ``proc``.

        Under the lock-free layout this is a constant 5 us. Under the
        global-lock ablation the update serializes on the cluster-wide
        lock and costs 16 us plus any queueing delay.
        """
        if self.lock_model is None:
            return self.config.costs.dir_update
        return self.lock_model.update_cost(proc.clock)

    def broadcast_bytes(self) -> int:
        """Wire bytes for one entry modification (word × replicas)."""
        return 4 * self.num_owners

    def occupancy(self) -> tuple[list[int], list[int]]:
        """Directory occupancy snapshot for the metrics collector.

        Returns ``(per_owner, histogram)``: ``per_owner[i]`` counts the
        pages owner *i* currently maps (its directory word says READ or
        better), and ``histogram`` buckets every page by its loosest
        cluster-wide state — ``[invalid, read, write, exclusive]``.
        Read-only: one pass over the replicated words, no cached state.
        """
        per_owner = [0] * self.num_owners
        histogram = [0, 0, 0, 0]
        for entry in self.entries:
            loosest = Perm.INVALID
            exclusive = False
            for owner, word in enumerate(entry.words):
                if word.perm >= Perm.READ:
                    per_owner[owner] += 1
                if word.perm > loosest:
                    loosest = word.perm
                if word.excl_holder != NO_HOLDER:
                    exclusive = True
            if exclusive:
                histogram[3] += 1
            elif loosest >= Perm.WRITE:
                histogram[2] += 1
            elif loosest >= Perm.READ:
                histogram[1] += 1
            else:
                histogram[0] += 1
        return per_owner, histogram


class DirectoryLockModel:
    """Section 3.3.5 ablation: a single cluster-wide directory lock.

    With global locks the entry compresses to one word, but every update
    must acquire/release an 11 us Memory Channel lock around the 5 us
    modification — and updates from different processors serialize.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.lock = SerialResource(name="global-dir-lock")

    def update_cost(self, at: float) -> float:
        hold = self.config.costs.dir_update_locked
        begin, end = self.lock.acquire(at, hold)
        return end - at


@dataclass(slots=True)
class PageMeta:
    """Second-level (intra-node) directory state for one page (Section 2.3).

    Timestamps are values of the node's logical clock (incremented on page
    faults, page flushes, acquires, and releases):

    * ``flush_ts`` — when the most recent home-node flush began;
    * ``update_ts`` — when the most recent local update (fetch) completed;
    * ``wn_ts`` — when the most recent write notice was received.

    ``flush_end_real`` is the simulated real time at which the last flush's
    data reaches the home node, used by overlapping releases that skip a
    flush but must wait for the active one to complete.
    """

    flush_ts: int = -1
    update_ts: int = -1
    wn_ts: int = -1
    flush_end_real: float = 0.0
    twin: object | None = None  # numpy array when a twin exists

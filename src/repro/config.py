"""Machine, network, and cost-model configuration.

Every timing constant measured in the paper (Section 3.1, Table 1, and the
Memory Channel characteristics of Section 2.1) lives here, expressed in
microseconds. The simulation charges these costs; nothing else in the
package hard-codes a time.

The defaults describe the paper's platform: an 8-node cluster of 4-processor
DEC AlphaServer 2100 4/233 machines on a first-generation Memory Channel.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace

from .errors import ConfigError


def env_flag(name: str) -> bool:
    """Whether the environment variable ``name`` is set and non-empty.

    The sanctioned accessor for boolean environment switches
    (``CASHMERE_NO_FASTPATH`` and friends): environment reads are a
    hidden input the result-cache key cannot see, so the determinism
    lint (rule D105, DESIGN.md §11) confines them to this module and
    the bench/sweep entry points.
    """
    return bool(os.environ.get(name))

#: Bytes per shared-memory word. The Alpha reads/writes 32 bits atomically,
#: but application data is 64-bit; we simulate 64-bit words and count bytes.
WORD_BYTES = 8

#: The paper's page size (8 Kbytes on the Alpha cluster).
PAPER_PAGE_BYTES = 8192


class Protocol(enum.Enum):
    """The coherence protocols evaluated in the paper."""

    #: Two-level protocol with two-way diffing (the paper's contribution).
    CSM_2L = "2L"
    #: Two-level protocol using TLB shootdown instead of incoming diffs.
    CSM_2LS = "2LS"
    #: One-level protocol (processor = node) with twins and outgoing diffs.
    CSM_1LD = "1LD"
    #: One-level protocol with in-line write doubling (write-through).
    CSM_1L = "1L"

    @property
    def two_level(self) -> bool:
        return self in (Protocol.CSM_2L, Protocol.CSM_2LS)

    @property
    def uses_diffs(self) -> bool:
        return self is not Protocol.CSM_1L


@dataclass(frozen=True)
class CostModel:
    """All simulated primitive costs, in microseconds (Section 3.1).

    ``page_bytes``-dependent costs (twinning, diffs, transfers) are stored
    as measurements for the paper's 8 Kbyte page and scaled linearly to the
    configured page size by :class:`MachineConfig`.
    """

    # --- Memory Channel (Section 2.1) -----------------------------------
    #: Process-to-process remote write latency.
    mc_latency: float = 5.2
    #: Per-link sustained transfer bandwidth, bytes per microsecond
    #: (29 MB/s through the 32-bit AlphaServer 2100 PCI bus).
    mc_link_bandwidth: float = 29.0
    #: Peak aggregate Memory Channel bandwidth, bytes/us (about 60 MB/s).
    mc_aggregate_bandwidth: float = 60.0
    #: Cost of issuing one remote (doubled) write: I/O-space store overhead.
    mc_word_write: float = 0.25

    # --- VM operations ---------------------------------------------------
    #: mprotect on the AlphaServers.
    mprotect: float = 55.0
    #: Page fault on an already-resident page (kernel trap + dispatch).
    page_fault: float = 72.0

    # --- Twins and diffs (costs for one 8 Kbyte page) --------------------
    #: Creating a twin (pristine copy) of an 8 Kbyte page.
    twin_create_8k: float = 199.0
    #: Outgoing diff to a *remote* home: empty-diff and full-page-diff costs.
    diff_out_remote_min: float = 290.0
    diff_out_remote_max: float = 363.0
    #: Outgoing diff applied to a *local* home (one-level protocols only).
    diff_out_local_min: float = 340.0
    diff_out_local_max: float = 561.0
    #: Incoming diff (applies changes to both the twin and the page).
    diff_in_min: float = 533.0
    diff_in_max: float = 541.0

    # --- Directory -------------------------------------------------------
    #: Directory entry modification without locking (lock-free structures).
    dir_update: float = 5.0
    #: Directory entry modification when a global lock must be held
    #: (16 us total: 11 us of lock acquire/release + 5 us of update).
    dir_update_locked: float = 16.0

    # --- Messaging and polling -------------------------------------------
    #: One polling check (load + branch) at a loop back-edge.
    poll_check: float = 0.08
    #: Time from a request's arrival at a node until a polling processor
    #: notices it (average distance to the next poll instruction).
    poll_dispatch: float = 4.0
    #: Kernel/trap overhead to enter a message handler after a poll hit.
    handler_entry: float = 6.0
    #: Requester-side fixed overhead of a page fetch (composing the
    #: request, managing the read buffer, completing the reply). Tuned so
    #: end-to-end page transfers match Table 1 (777/824 us remote).
    fetch_overhead: float = 140.0
    #: Extra fetch cost under the two-level protocols (second-level
    #: directory and timestamp maintenance; Table 1: 824 vs 777 us).
    two_level_fetch_extra: float = 45.0
    #: Intra-node inter-processor interrupt (with the paper's kernel mods).
    interrupt_intra: float = 80.0
    #: Inter-node interrupt (with kernel mods).
    interrupt_inter: float = 445.0
    #: Unmodified Digital Unix interrupt latency (for reference/ablation).
    interrupt_unmodified: float = 980.0

    # --- Shootdown (Section 3.3.4) ---------------------------------------
    #: Shooting down one processor's mapping via polled messages.
    shootdown_polled: float = 72.0
    #: Shooting down one processor via intra-node interrupts.
    shootdown_interrupt: float = 142.0

    # --- Synchronization -------------------------------------------------
    #: Local ll/sc lock acquire+release.
    llsc_lock: float = 0.4
    #: Per-side CPU cost of a Memory Channel lock operation (issue the
    #: array write, set up the loop-back wait). Tuned so an uncontended
    #: acquire+release totals ~11 us (Table 1).
    mc_lock_overhead: float = 2.7
    #: Backoff delay after a failed MC lock attempt.
    mc_lock_backoff: float = 20.0
    #: Extra per-acquire cost of the two-level (ll/sc + MC) lock path
    #: (Table 1: 19 us vs 11 us).
    two_level_lock_extra: float = 7.0
    #: Per-processor cost of the intra-node phase of a two-level barrier.
    barrier_local_phase: float = 25.0
    #: Cost of announcing arrival over the Memory Channel.
    barrier_mc_phase: float = 18.0
    #: Departure-side spin cost per arrival-array slot (waiters rescan the
    #: array as arrivals trickle in; Table 1: 364 us for the 32-slot
    #: one-level barrier at 32 processors).
    barrier_spin: float = 10.6

    # --- Node memory bus --------------------------------------------------
    #: Per-node shared memory bus bandwidth, bytes/us. Capacity-miss traffic
    #: from all processors of a node is serialized through this resource,
    #: producing the negative clustering effects of Section 3.3.3.
    node_bus_bandwidth: float = 180.0

    # --- Misc -------------------------------------------------------------
    #: CPU cost of copying one 8 Kbyte page within a node (memcpy).
    page_copy_8k: float = 90.0


#: Named placement configurations used throughout the evaluation
#: (Figure 7): ``(total processors, processors per node)``.
PLACEMENTS = {
    "4:1": (4, 1),
    "4:4": (4, 4),
    "8:1": (8, 1),
    "8:2": (8, 2),
    "8:4": (8, 4),
    "16:2": (16, 2),
    "16:4": (16, 4),
    "24:3": (24, 3),
    "32:4": (32, 4),
}


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault-injection knobs (DESIGN.md §12).

    All injected faults are drawn from a single ``random.Random(seed)``
    stream owned by :class:`~repro.memchannel.faults.FaultInjector`, and
    a decision point consumes randomness *only when its rate is
    non-zero* — so a zero-rate config is byte-identical to
    ``faults=None``, and any one fault class can be toggled without
    perturbing the schedule of the others. Rates are per-opportunity
    probabilities in ``[0, 1]``.
    """

    #: Seed of the injector's private RNG stream. Together with the
    #: simulator's deterministic event order this makes every fault
    #: schedule exactly reproducible: same seed, same faults.
    seed: int = 0
    #: Probability that a remote word write is deferred past its nominal
    #: visibility time (hub-level reordering between *different*
    #: regions; per-region write order is still enforced by
    #: :class:`~repro.memchannel.regions.VersionedWord`). Also the
    #: probability that simultaneous simulator events fire in a
    #: permuted order (see ``Simulator.chooser``).
    reorder_rate: float = 0.0
    #: Maximum extra visibility delay of a reordered word write, us.
    reorder_window_us: float = 50.0
    #: Probability that a posted write notice is delivered late.
    notice_delay_rate: float = 0.0
    #: Extra delivery delay of a delayed write notice, us.
    notice_delay_us: float = 250.0
    #: Probability that a write notice payload is lost. The bin's tail
    #: pointer still advances (that word write is ordered), so the
    #: consumer observes a sequence *gap* and must resynchronize.
    notice_drop_rate: float = 0.0
    #: Probability that an explicit request is NAK'd by a transiently
    #: busy server (FLASH-style negative acknowledgement); the
    #: requester backs off and retries.
    nak_rate: float = 0.0
    #: Requester back-off after a NAK or an unanswered request, us.
    nak_backoff_us: float = 200.0
    #: Retry budget for NAK'd / unanswered requests before the
    #: requester gives up (raises).
    max_retries: int = 64
    #: Nodes whose request-handler service runs ``slowdown`` times
    #: slower (overloaded / de-scheduled server processors).
    slow_nodes: tuple[int, ...] = ()
    slowdown: float = 1.0
    #: Crash-stop: this node halts at ``crash_at_us`` (-1 = no crash).
    #: Its processors stop executing, and requests directed at it go
    #: unanswered until the requester's retry budget is exhausted.
    crash_node: int = -1
    crash_at_us: float = 0.0

    def __post_init__(self) -> None:
        for name in ("reorder_rate", "notice_delay_rate",
                     "notice_drop_rate", "nak_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        for name in ("reorder_window_us", "notice_delay_us",
                     "nak_backoff_us", "crash_at_us"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be positive")
        if self.slowdown < 1.0:
            raise ConfigError("slowdown must be >= 1")

    @property
    def active(self) -> bool:
        """Whether any fault can actually fire under this config."""
        return (self.reorder_rate > 0.0 or self.notice_delay_rate > 0.0
                or self.notice_drop_rate > 0.0 or self.nak_rate > 0.0
                or (self.slowdown > 1.0 and bool(self.slow_nodes))
                or self.crash_node >= 0)

    @classmethod
    def demo(cls, seed: int) -> "FaultConfig":
        """Moderate every-fault-class-on rates for CLI/CI runs."""
        return cls(seed=seed, reorder_rate=0.05, notice_delay_rate=0.05,
                   notice_drop_rate=0.02, nak_rate=0.02,
                   slow_nodes=(0,), slowdown=1.5)


@dataclass(frozen=True)
class MachineConfig:
    """A simulated cluster: topology, page geometry, and cost model.

    The paper's platform is ``nodes=8, procs_per_node=4`` with 8 Kbyte
    pages. Tests and scaled experiments may shrink ``page_bytes`` (along
    with application data sets) to keep simulations fast; page-size
    dependent costs scale linearly from the 8 Kbyte measurements.
    """

    nodes: int = 8
    procs_per_node: int = 4
    page_bytes: int = PAPER_PAGE_BYTES
    #: Total shared segment size in bytes (must be a multiple of page size).
    shared_bytes: int = 4 * 1024 * 1024
    #: Pages per superpage (Memory Channel mapping-table workaround).
    superpage_pages: int = 8
    #: Use polling (True, the paper's default) or interrupts for explicit
    #: requests and shootdowns.
    polling: bool = True
    #: Use the kernel-modified (fast) interrupt latencies when polling=False.
    fast_interrupts: bool = True
    #: Opt-in runtime correctness checking (:mod:`repro.check`): trace
    #: every shared access and sync event through the happens-before race
    #: detector and release-consistency oracle. Orthogonal to timing —
    #: checking observes the execution, it never changes simulated costs.
    checking: bool = False
    #: Opt-in protocol event tracing (:mod:`repro.trace`): record faults,
    #: transfers, diffs, sync and network events on the simulated timeline
    #: for the Chrome-trace exporter and contention profiler. Like
    #: ``checking``, strictly observational — a traced run produces
    #: byte-identical statistics to an untraced one.
    tracing: bool = False
    #: Enable the runtime's inline page-access cache (software TLB) in
    #: :class:`~repro.runtime.env.WorkerEnv`: warm accesses to the
    #: last-touched read/write page skip protocol dispatch entirely,
    #: validated by per-owner generation counters. Behavior-preserving —
    #: a fast-path run produces byte-identical statistics and results to
    #: a slow-path run. Disable here, or set ``CASHMERE_NO_FASTPATH=1``
    #: in the environment, to force every access through full dispatch
    #: (debugging / the determinism regression tests).
    fastpath: bool = True
    #: Enable the staged kernel-lowering pipeline (:mod:`repro.lower`,
    #: DESIGN.md §14): worker loop regions that are statically proven
    #: sync-free are executed as batched super-steps — per-step page
    #: permissions are still validated (and faults replayed) at the
    #: exact simulated instant the interpreter would have touched them,
    #: but warm steps collapse into one numpy call with inlined time
    #: charges. Behavior-preserving: a lowered run produces
    #: byte-identical statistics and result arrays to an interpreted
    #: one (``tests/test_lowering.py``). Automatically disabled when a
    #: checker/tracer/metrics observer is attached, under fault
    #: injection, for write-through protocols, or when the fast path is
    #: off. Disable here, or set ``CASHMERE_NO_LOWERING=1``, to force
    #: per-step interpretation.
    lowering: bool = True
    #: Opt-in deterministic fault injection (:mod:`repro.memchannel.faults`,
    #: DESIGN.md §12): seeded message reordering, delayed/dropped write
    #: notices, request NAKs, node slowdown, and crash-stop. ``None``
    #: (the default) executes exactly the fault-free code paths; a
    #: zero-rate :class:`FaultConfig` is byte-identical to ``None``.
    faults: FaultConfig | None = None
    #: Opt-in time-series metrics sampling (:mod:`repro.metrics`): a
    #: collector polls directory occupancy, page-state histograms,
    #: Memory Channel bandwidth, request-queue depths, and fast-path
    #: (software TLB) hit rates at fixed simulated-time intervals, and
    #: records deltas of the protocol counters between samples. Like
    #: ``checking``/``tracing``, strictly observational: a metered run
    #: produces byte-identical statistics and results to an unmetered
    #: one (``tests/test_metrics.py`` asserts this under all four
    #: protocols), and the sampled series are themselves deterministic —
    #: the same run recorded twice yields identical series.
    metrics: bool = False
    #: Inter-node barrier topology (DESIGN.md §15). ``"flat"`` (the
    #: paper's design, and the default — preserves every existing
    #: number) funnels all slots through one arrival array whose
    #: departure spin scans O(slots) words. ``"tree"`` combines arrivals
    #: up a binary tree of Memory Channel words — O(log slots) combine
    #: hops to the root, one broadcast departure word, O(1) departure
    #: spin per processor — the knob that keeps 64-node barriers from
    #: serializing. Data values are barrier-topology independent; only
    #: timing (and the combine-hop accounting) differs.
    barrier: str = "flat"
    #: Home-placement policy for shared pages (DESIGN.md §15):
    #: ``"first_touch"`` (the paper's Section 2.3 policy, the default)
    #: relocates a superpage's home to the first owner that touches it
    #: after initialization; ``"round_robin"`` freezes the initial
    #: round-robin striping (no relocation ever); ``"migrate"`` is
    #: first-touch plus migrate-on-repeated-diff — a page whose diffs
    #: keep coming from the same remote owner moves its home there,
    #: reusing the Pending/relocation machinery.
    home_policy: str = "first_touch"
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.barrier not in ("flat", "tree"):
            raise ConfigError(
                f"unknown barrier topology {self.barrier!r}; "
                f"choose 'flat' or 'tree'")
        if self.home_policy not in ("first_touch", "round_robin", "migrate"):
            raise ConfigError(
                f"unknown home policy {self.home_policy!r}; choose "
                f"'first_touch', 'round_robin', or 'migrate'")
        if self.nodes < 1:
            raise ConfigError("need at least one node")
        if self.procs_per_node < 1:
            raise ConfigError("need at least one processor per node")
        if self.page_bytes < WORD_BYTES or self.page_bytes % WORD_BYTES:
            raise ConfigError("page_bytes must be a positive multiple of 8")
        if self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("page_bytes must be a power of two")
        if self.shared_bytes % self.page_bytes:
            raise ConfigError("shared_bytes must be a multiple of page_bytes")
        if self.superpage_pages < 1:
            raise ConfigError("superpage_pages must be positive")
        if self.faults is not None:
            if self.faults.crash_node >= self.nodes:
                raise ConfigError(
                    f"crash_node {self.faults.crash_node} out of range "
                    f"for {self.nodes} nodes")
            for node in self.faults.slow_nodes:
                if not 0 <= node < self.nodes:
                    raise ConfigError(
                        f"slow node {node} out of range for "
                        f"{self.nodes} nodes")

    # --- Derived geometry -------------------------------------------------

    @property
    def total_procs(self) -> int:
        return self.nodes * self.procs_per_node

    @property
    def words_per_page(self) -> int:
        return self.page_bytes // WORD_BYTES

    @property
    def num_pages(self) -> int:
        return self.shared_bytes // self.page_bytes

    @property
    def page_shift(self) -> int:
        return self.page_bytes.bit_length() - 1

    # --- Page-size scaled costs ------------------------------------------

    @property
    def _page_scale(self) -> float:
        return self.page_bytes / PAPER_PAGE_BYTES

    def twin_cost(self) -> float:
        """Cost of creating a twin of one page."""
        return self.costs.twin_create_8k * self._page_scale

    def page_copy_cost(self) -> float:
        """CPU cost of an intra-node page copy."""
        return self.costs.page_copy_8k * self._page_scale

    def diff_out_cost(self, dirty_bytes: int, remote_home: bool) -> float:
        """Cost of creating and applying an outgoing diff.

        Interpolates between the empty-diff and full-page-diff measurements
        according to the number of modified bytes.
        """
        c = self.costs
        lo, hi = ((c.diff_out_remote_min, c.diff_out_remote_max)
                  if remote_home else
                  (c.diff_out_local_min, c.diff_out_local_max))
        frac = min(1.0, dirty_bytes / self.page_bytes)
        return (lo + (hi - lo) * frac) * self._page_scale

    def diff_in_cost(self, changed_bytes: int) -> float:
        """Cost of an incoming diff (updates both twin and working page)."""
        c = self.costs
        frac = min(1.0, changed_bytes / self.page_bytes)
        return (c.diff_in_min + (c.diff_in_max - c.diff_in_min) * frac) \
            * self._page_scale

    def interrupt_cost(self, same_node: bool) -> float:
        """Latency of delivering an inter-processor interrupt."""
        c = self.costs
        if not self.fast_interrupts:
            return c.interrupt_unmodified
        return c.interrupt_intra if same_node else c.interrupt_inter

    # --- Convenience -------------------------------------------------------

    def with_placement(self, total_procs: int, procs_per_node: int) -> "MachineConfig":
        """A copy of this config resized for a Figure-7 placement."""
        if total_procs % procs_per_node:
            raise ConfigError(
                f"{total_procs} processors cannot be split into nodes of "
                f"{procs_per_node}")
        return replace(self, nodes=total_procs // procs_per_node,
                       procs_per_node=procs_per_node)

    def scaled(self, page_bytes: int, shared_bytes: int) -> "MachineConfig":
        """A copy with a smaller page/segment geometry (for fast tests)."""
        return replace(self, page_bytes=page_bytes, shared_bytes=shared_bytes)


def placement_config(name: str, base: MachineConfig | None = None) -> MachineConfig:
    """Build a :class:`MachineConfig` for a named paper placement (e.g. "32:4")."""
    if name not in PLACEMENTS:
        raise ConfigError(f"unknown placement {name!r}; "
                          f"choose from {sorted(PLACEMENTS)}")
    total, per_node = PLACEMENTS[name]
    base = base or MachineConfig()
    return base.with_placement(total, per_node)

"""Simulated processes: generator coroutines driven by the event queue.

A simulated processor executes a Python generator. The generator performs
*real* work (reads and writes real memory through the DSM runtime) and
yields instructions whenever simulated time must pass or the processor
must block:

``Compute(cpu_us, mem_bytes)``
    A block of application computation: charges CPU time plus memory-bus
    service (with contention from other processors on the node), plus one
    polling check. Yield points double as the polling instrumentation's
    loop back-edges: pending explicit requests are serviced here.

``Charge(us, bucket)``
    Non-blocking time charge (protocol work, waits already computed).

``Sleep(us, bucket)``
    Delay without bus usage (e.g. lock backoff).

``Wait(condition, predicate, bucket)``
    Park until ``condition`` fires and ``predicate()`` is truthy; the
    predicate's value is sent back into the generator. While parked the
    processor still services incoming requests (processors in the paper
    poll while spinning).

Protocol handlers themselves are plain functions that run atomically at a
point in simulated time, charging measured costs; only synchronization
blocks via ``Wait``.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Any, Callable, Generator, Iterable, Sequence

from ..errors import DeadlockError, SimulationError
from .engine import Condition, Simulator

#: Buckets for the Figure-6 execution time breakdown.
TIME_BUCKETS = ("user", "protocol", "polling", "comm_wait", "write_double")

SimGen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Compute:
    """A block of application computation (see module docstring)."""

    cpu_us: float
    mem_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_us < 0 or self.mem_bytes < 0:
            raise SimulationError("negative compute cost")


@dataclass(frozen=True)
class Charge:
    """Advance time without blocking or bus usage."""

    us: float
    bucket: str = "protocol"


@dataclass(frozen=True)
class Sleep:
    """Delay (no bus, no poll charge); used for backoff loops."""

    us: float
    bucket: str = "comm_wait"


@dataclass
class Wait:
    """Block until ``predicate()`` is truthy after ``conditions`` fire."""

    conditions: Sequence[Condition]
    predicate: Callable[[], Any]
    bucket: str = "comm_wait"

    def __init__(self, conditions: Condition | Sequence[Condition],
                 predicate: Callable[[], Any],
                 bucket: str = "comm_wait") -> None:
        if isinstance(conditions, Condition):
            conditions = (conditions,)
        self.conditions = tuple(conditions)
        self.predicate = predicate
        self.bucket = bucket


class ExecutionContext:
    """What a :class:`SimProcess` needs from its processor.

    The cluster layer's ``Processor`` subclasses this; the simulation layer
    depends only on this narrow interface.
    """

    clock: float = 0.0
    #: Optional event tracer (:class:`repro.trace.Tracer`); the cluster
    #: layer's ``Processor`` carries the shared instance when tracing is
    #: enabled, plain contexts leave it ``None``.
    trace = None

    def charge(self, us: float, bucket: str) -> None:
        """Advance the local clock, accounting ``us`` to ``bucket``."""
        raise NotImplementedError

    def run_compute(self, cpu_us: float, mem_bytes: float) -> None:
        """Charge a compute block, including memory-bus contention."""
        raise NotImplementedError

    def service_requests(self) -> None:
        """Poll: handle any explicit requests pending for this processor."""

    def poll_conditions(self) -> Sequence[Condition]:
        """Conditions that should wake this processor while it waits."""
        return ()


class SimProcess:
    """Drives one generator on one execution context."""

    def __init__(self, sim: Simulator, ctx: ExecutionContext, gen: SimGen,
                 name: str = "") -> None:
        self.sim = sim
        self.ctx = ctx
        self.gen = gen
        self.name = name or repr(gen)
        self.done = False
        self.failed: BaseException | None = None
        self.result: Any = None
        self._parked_on: tuple[Condition, ...] = ()
        self._wait: Wait | None = None
        #: Sim time at which the current Wait began blocking (for trace
        #: spans and deadlock reports).
        self._wait_since = 0.0
        self._registry: "ProcessGroup | None" = None
        # One stable bound-method object: park/unpark match by identity,
        # and ``self._wake`` would create a fresh object on every access.
        self._wake_cb = self._wake
        # Prebound plain-resume callback: scheduled after every Compute/
        # Charge/Sleep, so avoid allocating a fresh closure each time.
        self._resume_cb = self._resume

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.sim.schedule(self.ctx.clock, self._resume_cb)

    @property
    def parked(self) -> bool:
        return bool(self._parked_on)

    # -- stepping ----------------------------------------------------------

    def _resume(self) -> None:
        self._step(None)

    def _step(self, send_value: Any) -> None:
        """Resume the generator, then dispatch its next instruction."""
        if self.done:
            return
        self.ctx.service_requests()
        try:
            instr = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self.done = True
            self.failed = exc
            if self._registry is not None:
                self._registry.on_failure(self, exc)
            return
        self._dispatch(instr)

    def _dispatch(self, instr: Any) -> None:
        # The resume push is Simulator.schedule inlined: _dispatch runs at
        # the processor's own event, so ctx.clock >= sim.now always holds
        # and the past-check / max() are dead weight on the hottest path.
        # (``type is`` first: Compute dominates, and the exact-type check
        # is cheaper than isinstance; subclasses still hit the
        # isinstance chain below.)
        if type(instr) is Compute or isinstance(instr, Compute):
            self.ctx.run_compute(instr.cpu_us, instr.mem_bytes)
            sim = self.sim
            sim._seq += 1
            heappush(sim._queue, (self.ctx.clock, sim._seq, self._resume_cb))
        elif isinstance(instr, Charge):
            self.ctx.charge(instr.us, instr.bucket)
            sim = self.sim
            sim._seq += 1
            heappush(sim._queue, (self.ctx.clock, sim._seq, self._resume_cb))
        elif isinstance(instr, Sleep):
            self.ctx.charge(instr.us, instr.bucket)
            sim = self.sim
            sim._seq += 1
            heappush(sim._queue, (self.ctx.clock, sim._seq, self._resume_cb))
        elif isinstance(instr, Wait):
            self._begin_wait(instr)
        elif hasattr(instr, "drive"):
            # Batched instruction (a lowered kernel region,
            # :mod:`repro.lower`): the instruction drives the processor
            # itself — charging per-step costs, replaying faults, and
            # scheduling this process's resume when the region completes
            # or must yield to an earlier event.
            instr.drive(self)
        else:
            self.done = True
            err = SimulationError(
                f"process {self.name} yielded unknown instruction {instr!r}")
            self.failed = err
            if self._registry is not None:
                self._registry.on_failure(self, err)

    # -- waiting -----------------------------------------------------------

    def _begin_wait(self, wait: Wait) -> None:
        value = wait.predicate()
        if value:
            self.sim.schedule(self.ctx.clock, lambda: self._step(value))
            return
        if self._wait is not wait:
            self._wait_since = self.ctx.clock
        self._wait = wait
        conds = tuple(wait.conditions) + tuple(self.ctx.poll_conditions())
        self._parked_on = conds
        for cond in conds:
            cond.park(self.ctx.clock, self._wake_cb)

    def _wake(self, at: float) -> None:
        if self.done or self._wait is None:
            return
        wait = self._wait
        if at > self.ctx.clock:
            self.ctx.charge(at - self.ctx.clock, wait.bucket)
            # Snap exactly to the wake time: accumulating the delta can
            # land a hair *below* ``at`` in floating point, which would
            # make a visibility predicate miss the very write that woke us.
            self.ctx.clock = max(self.ctx.clock, at)
        self.ctx.service_requests()
        value = wait.predicate()
        if not value:
            # Spurious wakeup: stay parked. Conditions keep waiters
            # registered until an explicit unpark, so the next fire still
            # reaches us — no unpark/re-park churn per predicate miss.
            # (The stored park clock may now lag ``ctx.clock``; a fire
            # uses it only to *lower-bound* the wake time, and a wake at
            # ``at <= clock`` charges nothing, so timing is unaffected.)
            return
        for cond in self._parked_on:
            cond.unpark(self._wake_cb)
        self._parked_on = ()
        self._wait = None
        trace = self.ctx.trace
        if trace is not None:
            conds = ",".join(c.name or "?" for c in wait.conditions)
            trace.span("wait", self.ctx, self._wait_since,
                       self.ctx.clock - self._wait_since, obj=conds,
                       bucket=wait.bucket)
        self._step(value)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        if self._registry is not None:
            self._registry.on_completion(self)


#: Blocked processes listed individually in a deadlock report before the
#: remainder is summarized.
_DEADLOCK_DETAIL_LIMIT = 16


def _describe_blocked(procs: Sequence["SimProcess"]) -> str:
    """One line per blocked process: what it waits on, since when."""
    lines = []
    for p in procs[:_DEADLOCK_DETAIL_LIMIT]:
        wait = p._wait
        if wait is None:
            lines.append(f"  - {p.name}: not parked "
                         f"(clock {p.ctx.clock:.1f} us)")
            continue
        conds = ", ".join(c.name or "<unnamed>" for c in wait.conditions)
        lines.append(
            f"  - {p.name}: waiting on [{conds}] "
            f"since t={p._wait_since:.1f} us "
            f"(bucket {wait.bucket}, clock {p.ctx.clock:.1f} us)")
    if len(procs) > _DEADLOCK_DETAIL_LIMIT:
        lines.append(f"  ... and {len(procs) - _DEADLOCK_DETAIL_LIMIT} "
                     f"more blocked process(es)")
    return "\n".join(lines)


class ProcessGroup:
    """A set of processes run to completion together.

    Provides deadlock detection (all processes parked, no pending events)
    and immediate propagation of the first process failure.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.processes: list[SimProcess] = []
        self._failure: BaseException | None = None
        sim.idle_check = self._idle_check

    def spawn(self, ctx: ExecutionContext, gen: SimGen, name: str = "") -> SimProcess:
        proc = SimProcess(self.sim, ctx, gen, name)
        proc._registry = self
        self.processes.append(proc)
        proc.start()
        return proc

    def on_completion(self, proc: SimProcess) -> None:
        pass

    def on_failure(self, proc: SimProcess, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc

    def run(self) -> float:
        """Run until every process completes; returns the final time."""
        end = self.sim.run()
        if self._failure is not None:
            raise self._failure
        remaining = [p for p in self.processes if not p.done]
        if remaining:
            raise DeadlockError(
                f"deadlock: {len(remaining)} process(es) never completed:\n"
                + _describe_blocked(remaining))
        return end

    def _idle_check(self) -> None:
        if self._failure is not None:
            return
        parked = [p for p in self.processes if not p.done and p.parked]
        alive = [p for p in self.processes if not p.done]
        if alive and len(parked) == len(alive):
            raise DeadlockError(
                f"simulation deadlock: {len(parked)} process(es) parked "
                f"with no pending events:\n" + _describe_blocked(parked))


def run_all(sim: Simulator,
            programs: Iterable[tuple[ExecutionContext, SimGen, str]]) -> float:
    """Convenience: spawn every (ctx, generator, name) and run to completion."""
    group = ProcessGroup(sim)
    for ctx, gen, name in programs:
        group.spawn(ctx, gen, name)
    return group.run()


__all__ = [
    "Compute", "Charge", "Sleep", "Wait",
    "ExecutionContext", "SimProcess", "ProcessGroup", "run_all",
    "TIME_BUCKETS",
]

"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: a time-ordered event queue, condition
objects for event-driven wakeups, and serialized bandwidth resources used
to model the node memory bus and the Memory Channel's link/aggregate
bandwidth limits. Simulated processors are built on top of it in
:mod:`repro.sim.process`.

All times are floats in microseconds. Determinism is guaranteed by
breaking ties with a monotonically increasing sequence number, so two runs
of the same program produce identical event orders.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Callable, Iterable

from ..errors import DeadlockError, SimulationError


class Simulator:
    """A time-ordered event queue.

    Events are ``(time, seq, callback)`` triples; :meth:`run` pops them in
    order and invokes the callbacks. Callbacks may schedule further events
    (never in the past).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        #: Called when the queue drains while processes still wait; used by
        #: the process layer for deadlock diagnostics.
        self.idle_check: Callable[[], None] | None = None
        #: Scheduler choice-point hook. ``None`` (the default) keeps the
        #: canonical seq-ordered tie break and the unmodified hot loop.
        #: When set, every time *more than one* event is ready at the
        #: minimal timestamp the hook is called with the tie count and
        #: must return the index (in seq order) of the event to fire
        #: first; the rest are re-queued. Only same-instant events are
        #: ever permuted — simulated time still advances monotonically —
        #: so any choice is a legal Memory Channel schedule. Used by the
        #: fault injector (seeded reordering) and available to schedule
        #: explorers.
        self.chooser: Callable[[int], int] | None = None
        #: Time-advance observation hook. ``None`` (the default) keeps
        #: the unmodified hot loop. When set, the hook is called with the
        #: new simulated time whenever the clock moves forward, *before*
        #: the event at that time fires — so an observer sees the state
        #: that held over the whole interval up to (and at) each sampled
        #: instant. Strictly observational: the hook must never schedule
        #: events or mutate simulation state. Used by the metrics
        #: collector (:mod:`repro.metrics`) for periodic sampling.
        self.on_advance: Callable[[float], None] | None = None

    def schedule(self, at: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated time ``at``."""
        if at < self.now - 1e-9:
            raise SimulationError(
                f"event scheduled in the past: {at} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (max(at, self.now), self._seq, fn))

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self.now + delay, fn)

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the simulated time of the last processed event. When the
        queue drains, ``idle_check`` is consulted once; it may either raise
        (deadlock) or schedule new events to continue.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        queue = self._queue  # stable list object; hoisted for the hot loop
        heappop = heapq.heappop
        try:
            if self.chooser is not None:
                return self._run_chosen(until)
            if self.on_advance is not None:
                return self._run_observed(until)
            if until is None:
                # Unbounded run (the overwhelmingly common case): no
                # per-event deadline check.
                while True:
                    if not queue:
                        if self.idle_check is not None:
                            self.idle_check()
                        if not queue:
                            break
                    at, _, fn = heappop(queue)
                    self.now = at
                    fn()
                return self.now
            while True:
                if not queue:
                    if self.idle_check is not None:
                        self.idle_check()
                    if not queue:
                        break
                at, _, fn = queue[0]
                if at > until:
                    break
                heappop(queue)
                self.now = at
                fn()
            return self.now
        finally:
            self._running = False

    def _run_observed(self, until: float | None) -> float:
        """The :meth:`run` loop with the time-advance hook. Kept out of
        line (like :meth:`_run_chosen`) so the default path pays nothing
        for the hook's existence."""
        queue = self._queue
        heappop = heapq.heappop
        advance = self.on_advance
        while True:
            if not queue:
                if self.idle_check is not None:
                    self.idle_check()
                if not queue:
                    break
            at, _, fn = queue[0]
            if until is not None and at > until:
                break
            heappop(queue)
            if at > self.now:
                advance(at)
            self.now = at
            fn()
        return self.now

    def _run_chosen(self, until: float | None) -> float:
        """The :meth:`run` loop with the choice-point hook consulted on
        same-instant ties. Kept out of line so the default path pays
        nothing for the hook's existence. Also consults ``on_advance``
        when both hooks are installed (fault injection plus metrics)."""
        queue = self._queue
        heappop, heappush = heapq.heappop, heapq.heappush
        advance = self.on_advance
        while True:
            if not queue:
                if self.idle_check is not None:
                    self.idle_check()
                if not queue:
                    break
            at = queue[0][0]
            if until is not None and at > until:
                break
            ties = [heappop(queue)]
            while queue and queue[0][0] == at:
                ties.append(heappop(queue))
            if len(ties) > 1:
                idx = self.chooser(len(ties))
                if not 0 <= idx < len(ties):
                    raise SimulationError(
                        f"chooser returned {idx} for {len(ties)} ties")
                chosen = ties.pop(idx)
                for ev in ties:
                    heappush(queue, ev)
            else:
                chosen = ties[0]
            if advance is not None and at > self.now:
                advance(at)
            self.now = at
            chosen[2]()
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class Condition:
    """An event-driven wakeup channel.

    Processes park on a condition; :meth:`fire` wakes every parked waiter
    at ``max(fire_time, waiter's own clock)``. A waiter woken by a fire
    re-evaluates its predicate and may park again, so conditions carry no
    payload and spurious wakeups are harmless (and deterministic).
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        # Waiter -> park-time clock. A dict preserves insertion order (so
        # fire wakes waiters in park order, same as a list would) and
        # makes unpark O(1) — with n processors parked on one condition,
        # a fire triggers n unparks, and list scans made that O(n^2).
        self._waiters: dict[Callable[[float], None], float] = {}

    def park(self, clock: float, wake: Callable[[float], None]) -> None:
        """Register a waiter whose local clock is ``clock``."""
        self._waiters[wake] = clock

    def unpark(self, wake: Callable[[float], None]) -> None:
        """Remove a parked waiter (e.g. when it is woken via another path)."""
        self._waiters.pop(wake, None)

    def fire(self, at: float) -> None:
        """Wake all current waiters at time ``max(at, waiter clock)``.

        Waiters stay registered until they explicitly ``unpark`` (the
        process layer unparks on wake): if a fire popped the list, a
        second fire racing with the wake events would find it empty and
        the re-parking waiters would sleep forever (lost wakeup).
        """
        for wake, clock in list(self._waiters.items()):
            when = max(at, clock)
            self._sim.schedule(max(when, self._sim.now),
                               _bind_wake(wake, when))

    @property
    def num_waiters(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Condition {self.name or hex(id(self))} waiters={len(self._waiters)}>"


def _bind_wake(wake: Callable[[float], None], when: float) -> Callable[[], None]:
    def run() -> None:
        wake(when)
    return run


class SerialResource:
    """A single-server resource (e.g. a node's shared memory bus).

    ``acquire`` books ``duration`` of exclusive service starting no
    earlier than ``start``; the caller's completion time is the returned
    end time. The server keeps a *timeline* of busy intervals and places
    each booking in the earliest gap at or after ``start`` — simulated
    processes book at their own local clocks, which arrive out of global
    time order, and a simple "free-at" FIFO would make a lagging
    processor queue behind a leader's *future* booking, inflating
    contention without physical cause. Adjacent intervals merge, so under
    saturation the timeline stays short.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        #: Non-overlapping busy intervals [begin, end), sorted by begin.
        self._intervals: list[list[float]] = []
        self.busy_time = 0.0
        self.total_requests = 0

    @property
    def free_at(self) -> float:
        """End of the last busy interval (0 when idle)."""
        return self._intervals[-1][1] if self._intervals else 0.0

    def acquire(self, start: float, duration: float) -> tuple[float, float]:
        """Book ``duration`` of service at the earliest gap >= ``start``."""
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        self.total_requests += 1
        self.busy_time += duration
        if duration == 0:
            return start, start
        iv = self._intervals
        # Fast path: booking after (or touching) the end of the timeline —
        # the overwhelmingly common case when clocks advance monotonically.
        if not iv or iv[-1][1] <= start:
            if iv and iv[-1][1] == start:
                iv[-1][1] = start + duration
            else:
                iv.append([start, start + duration])
                if len(iv) > 4096:
                    del iv[:2048]  # prune ancient history
            return start, start + duration
        last = iv[-1]
        if last[0] <= start:
            # Start lands inside the final interval: the earliest gap at
            # or after ``start`` begins exactly at its end — extend it in
            # place. This is the common case under saturation (every
            # processor queues behind the tail) and skips the bisect.
            begin = last[1]
            last[1] = begin + duration
            return begin, begin + duration
        # Find the first interval that could overlap [start, ...).
        lo = bisect.bisect_right(iv, [start]) - 1
        if lo >= 0 and iv[lo][1] <= start:
            lo += 1
        lo = max(lo, 0)
        t = start
        i = lo
        while i < len(iv) and iv[i][0] < t + duration:
            if iv[i][1] > t:
                t = iv[i][1]
            i += 1
        begin, end = t, t + duration
        # Insert, merging with touching neighbours.
        j = bisect.bisect_right(iv, [begin])
        if j > 0 and iv[j - 1][1] >= begin:
            iv[j - 1][1] = max(iv[j - 1][1], end)
            k = j
            while k < len(iv) and iv[k][0] <= iv[j - 1][1]:
                iv[j - 1][1] = max(iv[j - 1][1], iv[k][1])
                k += 1
            del iv[j:k]
        else:
            iv.insert(j, [begin, end])
            k = j + 1
            while k < len(iv) and iv[k][0] <= iv[j][1]:
                iv[j][1] = max(iv[j][1], iv[k][1])
                k += 1
            del iv[j + 1:k]
        if len(iv) > 4096:
            del iv[:2048]  # prune ancient history
        return begin, end

    def peek(self, start: float, duration: float) -> float:
        """The end time ``acquire(start, duration)`` would return, without
        booking."""
        if duration <= 0:
            return start
        iv = self._intervals
        lo = bisect.bisect_right(iv, [start]) - 1
        if lo >= 0 and iv[lo][1] <= start:
            lo += 1
        lo = max(lo, 0)
        t = start
        i = lo
        while i < len(iv) and iv[i][0] < t + duration:
            if iv[i][1] > t:
                t = iv[i][1]
            i += 1
        return t + duration


class MultiChannelResource:
    """A k-server resource (each server a timeline, like SerialResource).

    Models the Memory Channel's aggregate bandwidth: each transfer runs at
    the per-link rate, but only ``channels`` transfers proceed at once
    (aggregate / link bandwidth, about 2 on the paper's hardware). Each
    booking goes to the channel giving the earliest completion.
    """

    def __init__(self, channels: int, name: str = "") -> None:
        if channels < 1:
            raise SimulationError("need at least one channel")
        self.name = name
        self._channels = [SerialResource(f"{name}[{i}]")
                          for i in range(channels)]
        self.total_requests = 0

    @property
    def channels(self) -> int:
        return len(self._channels)

    @property
    def busy_time(self) -> float:
        return sum(c.busy_time for c in self._channels)

    def acquire(self, start: float, duration: float) -> tuple[float, float]:
        """Book ``duration`` on the channel finishing earliest."""
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        self.total_requests += 1
        if duration == 0:
            return start, start
        # Cheap heuristic: probe each channel's earliest end by peeking at
        # its timeline without committing, then book the winner (ties go
        # to the lowest-numbered channel, matching min()'s stability).
        # With two channels this is exact enough and stays O(log n).
        best = None
        best_end = 0.0
        for c in self._channels:
            end = c.peek(start, duration)
            if best is None or end < best_end:
                best, best_end = c, end
        return best.acquire(start, duration)


def describe_waiters(conditions: Iterable[Condition]) -> str:
    """Human-readable summary of parked waiters, for deadlock reports."""
    parts = [f"{c.name or hex(id(c))}:{c.num_waiters}"
             for c in conditions if c.num_waiters]
    return ", ".join(parts) if parts else "(none)"


__all__ = [
    "Simulator",
    "Condition",
    "SerialResource",
    "MultiChannelResource",
    "describe_waiters",
    "DeadlockError",
]

"""Discrete-event simulation kernel (engine, processes, resources)."""

from .engine import (Condition, MultiChannelResource, SerialResource,
                     Simulator)
from .process import (TIME_BUCKETS, Charge, Compute, ExecutionContext,
                      ProcessGroup, SimProcess, Sleep, Wait, run_all)

__all__ = [
    "Simulator", "Condition", "SerialResource", "MultiChannelResource",
    "Compute", "Charge", "Sleep", "Wait",
    "ExecutionContext", "SimProcess", "ProcessGroup", "run_all",
    "TIME_BUCKETS",
]

"""Barnes: hierarchical Barnes-Hut N-body simulation from SPLASH-1
(Section 3.2).

Two shared arrays hold the bodies and the cells (internal quadtree nodes
summarizing bodies in close proximity). As in the paper's version, tree
construction is performed *sequentially* (processor 0 reads every body —
all-to-one — and writes the cell array — one-to-all), while the force
computation and position updates are parallelized with barriers between
phases and no locks at all (Table 3 shows zero lock acquires for
Barnes).

Barnes has a low computation-to-communication ratio and a huge appetite
for read-shared tree data, so coalescing page fetches within a node —
the two-level protocols' signature advantage — buys it the largest win
in the suite (46% over 1LD at 32 processors). The paper ran 128K bodies
(26 Mbytes, 469.4 s sequential).

The simulation is 2-D (quadtree) for compactness; the sharing structure
is identical to the 3-D oct-tree version.
"""

from __future__ import annotations

import numpy as np

from .base import Application, split_range

#: Words per body record: x, y, vx, vy, fx, fy.
_BODY_WORDS = 6
#: Words per cell record: mass, cx, cy, half-size, child0..3 (0 = empty;
#: >0 = cell index + 1; <0 = -(body index + 1)).
_CELL_WORDS = 8

#: CPU cost per body-cell interaction during force evaluation.
_INTERACT_US = 20.0
#: Cache-miss bytes per interaction (tree walks are pointer-chasing).
_INTERACT_MEM = 48.0
#: CPU cost per body insertion during (sequential) tree build.
_INSERT_US = 0.05
_DT = 0.025
_THETA = 0.6
_EPS2 = 0.05


class _Tree:
    """A plain-numpy quadtree used identically by rank 0 (to build into
    shared memory) and by readers (reconstructed from shared memory)."""

    def __init__(self, cells: np.ndarray) -> None:
        self.cells = cells  # (maxcells, _CELL_WORDS)
        self.count = 0

    def new_cell(self, cx: float, cy: float, half: float) -> int:
        idx = self.count
        self.count += 1
        if idx >= len(self.cells):
            raise RuntimeError("cell pool exhausted; raise maxcells")
        self.cells[idx] = 0.0
        self.cells[idx, 1] = cx
        self.cells[idx, 2] = cy
        self.cells[idx, 3] = half
        return idx

    def insert(self, cell: int, body: int, pos: np.ndarray) -> int:
        """Insert ``body`` under ``cell``; returns insertion steps."""
        steps = 1
        x, y = pos[body]
        cx, cy, half = self.cells[cell, 1:4]
        quad = (1 if x >= cx else 0) + (2 if y >= cy else 0)
        child = int(self.cells[cell, 4 + quad])
        if child == 0:
            self.cells[cell, 4 + quad] = -(body + 1)
        elif child < 0:
            other = -child - 1
            qhalf = half / 2
            qcx = cx + (qhalf if quad & 1 else -qhalf)
            qcy = cy + (qhalf if quad & 2 else -qhalf)
            sub = self.new_cell(qcx, qcy, qhalf)
            self.cells[cell, 4 + quad] = sub + 1
            steps += self.insert(sub, other, pos)
            steps += self.insert(sub, body, pos)
        else:
            steps += self.insert(child - 1, body, pos)
        return steps

    def summarize(self, cell: int, pos: np.ndarray) -> tuple[float, float,
                                                             float]:
        """Bottom-up center-of-mass computation (mass 1 per body)."""
        mass = 0.0
        mx = my = 0.0
        for q in range(4):
            child = int(self.cells[cell, 4 + q])
            if child == 0:
                continue
            if child < 0:
                b = -child - 1
                mass += 1.0
                mx += pos[b, 0]
                my += pos[b, 1]
            else:
                m, sx, sy = self.summarize(child - 1, pos)
                mass += m
                mx += sx
                my += sy
        self.cells[cell, 0] = mass
        # Store the center of mass in place of the geometric center once
        # summarized; the half-size stays for the opening criterion.
        if mass > 0:
            self.cells[cell, 1] = mx / mass
            self.cells[cell, 2] = my / mass
        return mass, mx, my


def _force_on(body: int, pos: np.ndarray, cells: np.ndarray,
              root: int) -> tuple[np.ndarray, int]:
    """Barnes-Hut force walk; returns (force, interactions)."""
    fx = fy = 0.0
    bx, by = pos[body]
    stack = [root]
    interactions = 0
    while stack:
        cell = stack.pop()
        mass, cx, cy, half = cells[cell, :4]
        if mass == 0:
            continue
        dx, dy = cx - bx, cy - by
        r2 = dx * dx + dy * dy
        if (2 * half) * (2 * half) < _THETA * _THETA * r2:
            # Far enough: treat the cell as a point mass.
            inv = mass / ((r2 + _EPS2) * np.sqrt(r2 + _EPS2))
            fx += dx * inv
            fy += dy * inv
            interactions += 1
            continue
        for q in range(4):
            child = int(cells[cell, 4 + q])
            if child == 0:
                continue
            if child < 0:
                b = -child - 1
                if b == body:
                    continue
                dxb, dyb = pos[b, 0] - bx, pos[b, 1] - by
                rb2 = dxb * dxb + dyb * dyb + _EPS2
                inv = 1.0 / (rb2 * np.sqrt(rb2))
                fx += dxb * inv
                fy += dyb * inv
                interactions += 1
            else:
                stack.append(child - 1)
    return np.array([fx, fy]), interactions


class Barnes(Application):
    name = "Barnes"
    paper_problem_size = "128K bodies (26 Mbytes)"
    paper_seq_time_s = 469.4
    write_double_us = 6.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"bodies": 224, "steps": 3}

    def small_params(self) -> dict:
        return {"bodies": 48, "steps": 2}

    def declare(self, segment, params: dict) -> None:
        n = params["bodies"]
        self._maxcells = 4 * n
        segment.alloc("bodies", n * _BODY_WORDS)
        segment.alloc("cells", self._maxcells * _CELL_WORDS)
        segment.alloc("treemeta", 2)  # cell count, root index

    def worker(self, env, params: dict):
        n, steps = params["bodies"], params["steps"]
        bodies, cells_arr = env.arr("bodies"), env.arr("cells")
        treemeta = env.arr("treemeta")
        me, nprocs = env.rank, env.nprocs
        maxcells = self._maxcells

        if me == 0:
            # Deterministic spiral of bodies.
            i = np.arange(n)
            r = 0.5 + 4.0 * i / n
            ang = i * 2.399963  # golden angle
            init = np.zeros(n * _BODY_WORDS)
            init[0::_BODY_WORDS] = r * np.cos(ang)
            init[1::_BODY_WORDS] = r * np.sin(ang)
            init[2::_BODY_WORDS] = -0.05 * np.sin(ang)
            init[3::_BODY_WORDS] = 0.05 * np.cos(ang)
            env.set_block(bodies, 0, init)
            yield env.compute(n * 0.1, n * 48 * 0.2)
        env.end_init()
        yield from env.barrier()

        lo, hi = split_range(n, nprocs, me)
        for _ in range(steps):
            # --- Phase 1: sequential tree build by processor 0 ------------
            # Lowerable in shape, but the write extent (tree.count cells)
            # and the compute cost are data-dependent per step, so a
            # RegionKernel would need per-iteration reconstruction for a
            # serial phase that batches nothing. Stays interpreted.
            if me == 0:  # cashmere: ignore[K003]
                data = env.get_block(bodies, 0, n * _BODY_WORDS) \
                    .reshape(n, _BODY_WORDS)
                pos = data[:, 0:2]
                half = float(np.abs(pos).max()) + 0.1
                tree = _Tree(np.zeros((maxcells, _CELL_WORDS)))
                root = tree.new_cell(0.0, 0.0, half)
                steps_total = 0
                for b in range(n):
                    steps_total += tree.insert(root, b, pos)
                tree.summarize(root, pos)
                env.set_block(cells_arr, 0,
                              tree.cells[:tree.count].reshape(-1))
                env.set(treemeta, 0, tree.count)
                env.set(treemeta, 1, root)
                yield env.compute(steps_total * _INSERT_US,
                                  n * 48 + tree.count * 64)
            yield from env.barrier()

            # --- Phase 2: parallel force computation ----------------------
            if hi > lo:
                meta = env.get_block(treemeta, 0, 2)
                count = int(meta[0])
                root = int(meta[1])
                cells = env.get_block(cells_arr, 0,
                                      count * _CELL_WORDS) \
                    .reshape(count, _CELL_WORDS)
                data = env.get_block(bodies, 0, n * _BODY_WORDS) \
                    .reshape(n, _BODY_WORDS)
                pos = data[:, 0:2].copy()
                interactions = 0
                forces = np.empty((hi - lo, 2))
                for b in range(lo, hi):
                    forces[b - lo], inter = _force_on(b, pos, cells, root)
                    interactions += inter
                for b in range(lo, hi):
                    env.set(bodies, b * _BODY_WORDS + 4, forces[b - lo, 0])
                    env.set(bodies, b * _BODY_WORDS + 5, forces[b - lo, 1])
                yield env.compute(interactions * _INTERACT_US,
                                  interactions * _INTERACT_MEM)
            yield from env.barrier()

            # --- Phase 3: parallel position update ------------------------
            # A genuine lowering candidate (affine share-local update):
            # next on the ROADMAP backlog, after em3d/ilink. The phase is
            # one super-step bounded by barriers either side, so batching
            # buys nothing until phase 2 lowers with it.
            if hi > lo:  # cashmere: ignore[K003]
                blk = env.get_block(bodies, lo * _BODY_WORDS,
                                    hi * _BODY_WORDS) \
                    .reshape(hi - lo, _BODY_WORDS)
                blk[:, 2:4] += _DT * blk[:, 4:6]
                blk[:, 0:2] += _DT * blk[:, 2:4]
                env.set_block(bodies, lo * _BODY_WORDS, blk.reshape(-1))
                yield env.compute((hi - lo) * 0.4, (hi - lo) * 48)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["bodies"]

    def results_equal(self, name, expected, actual, rtol, atol):
        return bool(np.allclose(expected, actual, rtol=1e-8, atol=1e-10))

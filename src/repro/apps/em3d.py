"""Em3d: electromagnetic wave propagation in 3-D objects (Section 3.2).

A bipartite graph of electric (E) and magnetic (H) field nodes: each
iteration updates every E node from its dependent H nodes, a barrier,
then every H node from its dependent E nodes. Nodes are distributed in
equal contiguous shares; with the standard input, dependencies reach only
into the owner's or neighboring processors' shares, so communication is
boundary exchange — like SOR, but with a far lower
computation-to-communication ratio, which is why Em3d gains ~22% from the
two-level protocols and improves with clustering under them
(Sections 3.3.2-3.3.3). The paper ran 60106 nodes (49 Mbytes, 161.4 s).

Each field update is one :class:`_Em3dPhase` region kernel (scaffolded
with ``cashmere-repro lower-gen em3d``, then hand-tuned): a single
super-step that reads the source-field neighborhood, reads the
destination share, and writes it back — verified against the interp
body by lint rules K001/K002.
"""

from __future__ import annotations

import numpy as np

from ..lower.regions import READ, WRITE, RegionKernel
from .base import Application, split_range

#: CPU cost per dependency multiply-add — Em3d does almost no math per
#: word communicated.
_FLOP_US = 8.0
#: Cache-miss bytes per node update (graph values stream through).
_MEM_BYTES = 64.0

#: Dependency stencil: offsets into the other field's array.
_OFFSETS = (-2, -1, 0, 1)
_WEIGHTS = (0.17, 0.23, 0.31, 0.29)


def _gather(block: np.ndarray, count: int) -> np.ndarray:
    """New values for ``count`` nodes from a source block covering their
    ``[lo-2, hi+2)`` neighborhood (edge-clamped: out-of-range lanes are
    zero)."""
    out = np.zeros(count)
    for off, w in zip(_OFFSETS, _WEIGHTS):
        out += w * block[2 + off:2 + off + count]
    return out


class _Em3dPhase(RegionKernel):
    """One field update (E from H, or H from E) for one worker's share:
    a single super-step reading ``src`` words ``[blo, bhi)`` and the
    old ``dst`` share ``[lo, hi)``, then writing the new share."""

    def __init__(self, env, src, dst, lo: int, hi: int, blo: int,
                 bhi: int, count: int) -> None:
        super().__init__(env)
        self._src = src
        self._dst = dst
        self._lo = lo
        self._hi = hi
        self._blo = blo
        self._bhi = bhi
        self.n = 1 if count else 0
        self.cost = env.compute(count * len(_OFFSETS) * _FLOP_US,
                                count * _MEM_BYTES)
        if not self.lowerable or self.n == 0:
            return
        # The interp body's first-touch order: the source neighborhood
        # block read, the destination share read, then the share write.
        step = [(READ, p) for p in self.span_pages(src, blo, bhi)]
        step += [(READ, p) for p in self.span_pages(dst, lo, hi)]
        step += [(WRITE, p) for p in self.span_pages(dst, lo, hi)]
        self.touches = [step]
        #: Staged neighborhood (zero-padded at the array edges, exactly
        #: like the interp body's ``block``) and old destination share.
        self._buf = np.zeros(hi - lo + 4)
        self._cur = np.empty(hi - lo)

    def ingest(self, i: int) -> None:
        lo, hi = self._lo, self._hi
        blo, bhi = self._blo, self._bhi
        buf = self._buf
        buf[:] = 0.0
        off = blo - (lo - 2)
        self.read_span(self._src, blo, bhi, buf[off:off + (bhi - blo)])
        self.read_span(self._dst, lo, hi, self._cur)

    def materialize(self, lo: int, hi: int) -> None:
        new = self._cur - 0.1 * _gather(self._buf, self._hi - self._lo)
        self.write_span(self._dst, self._lo, new)

    def interp(self, env):
        lo, hi = self._lo, self._hi
        blo, bhi = self._blo, self._bhi
        block = np.zeros(hi - lo + 4)
        block[blo - (lo - 2):bhi - (lo - 2)] = \
            env.get_block(self._src, blo, bhi)
        new = env.get_block(self._dst, lo, hi) \
            - 0.1 * _gather(block, hi - lo)
        env.set_block(self._dst, lo, new)
        yield self.cost


class Em3d(Application):
    name = "Em3d"
    paper_problem_size = "60106 nodes (49 Mbytes)"
    paper_seq_time_s = 161.4
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"nodes": 1024, "iters": 8}

    def small_params(self) -> dict:
        return {"nodes": 128, "iters": 3}

    def declare(self, segment, params: dict) -> None:
        n = params["nodes"]
        segment.alloc("e", n)
        segment.alloc("h", n)

    def worker(self, env, params: dict):
        n, iters = params["nodes"], params["iters"]
        e, h = env.arr("e"), env.arr("h")
        me, nprocs = env.rank, env.nprocs

        if me == 0:
            env.set_block(e, 0, np.sin(np.arange(n) * 0.37) + 1.0)
            env.set_block(h, 0, np.cos(np.arange(n) * 0.53))
            yield env.compute(n * 0.01, n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        lo, hi = split_range(n, nprocs, me)
        count = hi - lo
        # Neighborhood bounds, clamped at the array edges.
        blo, bhi = max(0, lo - 2), min(n, hi + 2)
        e_phase = _Em3dPhase(env, h, e, lo, hi, blo, bhi, count)
        h_phase = _Em3dPhase(env, e, h, lo, hi, blo, bhi, count)
        for _ in range(iters):
            yield from env.run_region(e_phase)
            yield from env.barrier()
            yield from env.run_region(h_phase)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["e", "h"]

"""Em3d: electromagnetic wave propagation in 3-D objects (Section 3.2).

A bipartite graph of electric (E) and magnetic (H) field nodes: each
iteration updates every E node from its dependent H nodes, a barrier,
then every H node from its dependent E nodes. Nodes are distributed in
equal contiguous shares; with the standard input, dependencies reach only
into the owner's or neighboring processors' shares, so communication is
boundary exchange — like SOR, but with a far lower
computation-to-communication ratio, which is why Em3d gains ~22% from the
two-level protocols and improves with clustering under them
(Sections 3.3.2-3.3.3). The paper ran 60106 nodes (49 Mbytes, 161.4 s).
"""

from __future__ import annotations

import numpy as np

from .base import Application, split_range

#: CPU cost per dependency multiply-add — Em3d does almost no math per
#: word communicated.
_FLOP_US = 8.0
#: Cache-miss bytes per node update (graph values stream through).
_MEM_BYTES = 64.0

#: Dependency stencil: offsets into the other field's array.
_OFFSETS = (-2, -1, 0, 1)
_WEIGHTS = (0.17, 0.23, 0.31, 0.29)


class Em3d(Application):
    name = "Em3d"
    paper_problem_size = "60106 nodes (49 Mbytes)"
    paper_seq_time_s = 161.4
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"nodes": 1024, "iters": 8}

    def small_params(self) -> dict:
        return {"nodes": 128, "iters": 3}

    def declare(self, segment, params: dict) -> None:
        n = params["nodes"]
        segment.alloc("e", n)
        segment.alloc("h", n)

    @staticmethod
    def _gather(src: np.ndarray, lo: int, hi: int, n: int,
                block: np.ndarray) -> np.ndarray:
        """New values for nodes [lo, hi) from a source block covering
        [lo-2, hi+2) (clamped circularly)."""
        count = hi - lo
        out = np.zeros(count)
        for off, w in zip(_OFFSETS, _WEIGHTS):
            out += w * block[2 + off:2 + off + count]
        return out

    def worker(self, env, params: dict):
        n, iters = params["nodes"], params["iters"]
        e, h = env.arr("e"), env.arr("h")
        me, nprocs = env.rank, env.nprocs

        if me == 0:
            env.set_block(e, 0, np.sin(np.arange(n) * 0.37) + 1.0)
            env.set_block(h, 0, np.cos(np.arange(n) * 0.53))
            yield env.compute(n * 0.01, n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        lo, hi = split_range(n, nprocs, me)
        count = hi - lo
        for _ in range(iters):
            if count:
                # E update: read H neighborhood (clamped at array edges).
                blo, bhi = max(0, lo - 2), min(n, hi + 2)
                block = np.zeros(hi - lo + 4)
                block[blo - (lo - 2):bhi - (lo - 2)] = \
                    env.get_block(h, blo, bhi)
                new = env.get_block(e, lo, hi) \
                    - 0.1 * self._gather(block, lo, hi, n, block)
                env.set_block(e, lo, new)
                yield env.compute(count * len(_OFFSETS) * _FLOP_US,
                                  count * _MEM_BYTES)
            yield from env.barrier()
            if count:
                blo, bhi = max(0, lo - 2), min(n, hi + 2)
                block = np.zeros(hi - lo + 4)
                block[blo - (lo - 2):bhi - (lo - 2)] = \
                    env.get_block(e, blo, bhi)
                new = env.get_block(h, lo, hi) \
                    - 0.1 * self._gather(block, lo, hi, n, block)
                env.set_block(h, lo, new)
                yield env.compute(count * len(_OFFSETS) * _FLOP_US,
                                  count * _MEM_BYTES)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["e", "h"]

"""SOR: Red-Black Successive Over-Relaxation (Section 3.2).

Solves a Laplace-like relaxation on a 2-D grid stored as separate red and
black arrays (each ``rows × cols/2``). The arrays are divided into bands
of contiguous rows, one band per processor; communication happens across
band boundaries, and processors synchronize with barriers after each
half-sweep. The paper ran 3072×4096 (50 Mbytes, 195 s sequential); we run
a scaled-down grid with the same structure.

SOR has a high computation-to-communication ratio but is memory-bound
(its data set does not fit in the second-level cache), which is why
increasing the number of processors per node *hurts*: capacity-miss
traffic saturates the node's shared bus (Section 3.3.3).
"""

from __future__ import annotations

import numpy as np

from .base import Application, split_range

#: CPU cost per grid element update (4 flops on a 233 MHz Alpha plus loop
#: overhead).
_FLOP_US = 30.0
#: Cache-miss bytes per element update (5 streams of 8-byte words; the
#: data set exceeds the 1 Mbyte board cache, so most traffic misses).
_MEM_BYTES = 1150.0


class SOR(Application):
    name = "SOR"
    paper_problem_size = "3072x4096 (50 Mbytes)"
    paper_seq_time_s = 195.0
    write_double_us = 47.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"rows": 130, "cols": 64, "iters": 10}

    def small_params(self) -> dict:
        return {"rows": 18, "cols": 16, "iters": 3}

    def declare(self, segment, params: dict) -> None:
        rows, halfc = params["rows"], params["cols"] // 2
        segment.alloc("red", rows * halfc)
        segment.alloc("black", rows * halfc)

    def worker(self, env, params: dict):
        rows, halfc = params["rows"], params["cols"] // 2
        iters = params["iters"]
        red, black = env.arr("red"), env.arr("black")

        # Initialization (rank 0): fixed boundary rows.
        if env.rank == 0:
            env.set_block(red, 0, np.full(halfc, 1.0))
            env.set_block(black, 0, np.full(halfc, 1.0))
            env.set_block(red, (rows - 1) * halfc, np.full(halfc, 2.0))
            env.set_block(black, (rows - 1) * halfc, np.full(halfc, 2.0))
            yield env.compute(2.0 * halfc * _FLOP_US, 4 * 8 * halfc)
        env.end_init()
        yield from env.barrier()

        lo, hi = split_range(rows - 2, env.nprocs, env.rank)
        my_rows = range(1 + lo, 1 + hi)
        get_block, set_block = env.get_block, env.set_block
        # One Compute instruction per row, identical every time — the
        # instruction is frozen, so a single instance can be re-yielded.
        row_step = env.compute(halfc * _FLOP_US, halfc * _MEM_BYTES)
        # Scratch row, reused across iterations (set_block copies out of
        # it). The shifted-neighbour accumulation and the add/scale order
        # match the obvious elementwise formula bit for bit: addition is
        # commutative per element, and the grouping (((up+mid)+down)+left)
        # is preserved.
        acc = np.empty(halfc)

        # Within one half-sweep no remote invalidation can arrive (writes
        # become visible only at the next barrier), so row r+1's up/mid
        # rows are byte-identical to row r's mid/down reads — slide the
        # three-row window instead of re-reading. The first touch of each
        # new row (the ``down`` read) happens at the same point in the
        # instruction stream as before, so the fault set and all timings
        # are unchanged.
        for _ in range(iters):
            down = None
            for r in my_rows:
                base = r * halfc
                if down is None:
                    up = get_block(black, base - halfc, base)
                    mid = get_block(black, base, base + halfc)
                else:
                    up, mid = mid, down
                down = get_block(black, base + halfc, base + 2 * halfc)
                np.add(up, mid, out=acc)
                acc += down
                acc[0] += mid[0]
                acc[1:] += mid[:-1]
                acc *= 0.25
                set_block(red, base, acc)
                yield row_step
            yield from env.barrier()
            down = None
            for r in my_rows:
                base = r * halfc
                if down is None:
                    up = get_block(red, base - halfc, base)
                    mid = get_block(red, base, base + halfc)
                else:
                    up, mid = mid, down
                down = get_block(red, base + halfc, base + 2 * halfc)
                np.add(up, mid, out=acc)
                acc += down
                acc[:-1] += mid[1:]
                acc[-1] += mid[-1]
                acc *= 0.25
                set_block(black, base, acc)
                yield row_step
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["red", "black"]

"""SOR: Red-Black Successive Over-Relaxation (Section 3.2).

Solves a Laplace-like relaxation on a 2-D grid stored as separate red and
black arrays (each ``rows × cols/2``). The arrays are divided into bands
of contiguous rows, one band per processor; communication happens across
band boundaries, and processors synchronize with barriers after each
half-sweep. The paper ran 3072×4096 (50 Mbytes, 195 s sequential); we run
a scaled-down grid with the same structure.

SOR has a high computation-to-communication ratio but is memory-bound
(its data set does not fit in the second-level cache), which is why
increasing the number of processors per node *hurts*: capacity-miss
traffic saturates the node's shared bus (Section 3.3.3).
"""

from __future__ import annotations

import numpy as np

from ..lower import READ, WRITE, RegionKernel
from .base import Application, split_range

#: CPU cost per grid element update (4 flops on a 233 MHz Alpha plus loop
#: overhead).
_FLOP_US = 30.0
#: Cache-miss bytes per element update (5 streams of 8-byte words; the
#: data set exceeds the 1 Mbyte board cache, so most traffic misses).
_MEM_BYTES = 1150.0


class _SorSweep(RegionKernel):
    """One half-sweep of a processor's band: reads one color, writes the
    other, one row per super-step. ``red=True`` is the red sweep (left
    neighbour pattern shifts one way; the black sweep shifts the other).
    """

    def __init__(self, env, src, dst, rows, halfc: int, red: bool) -> None:
        super().__init__(env)
        self._src = src
        self._dst = dst
        self._rows = rows
        self._halfc = halfc
        self._red = red
        self.n = len(rows)
        self.cost = env.compute(halfc * _FLOP_US, halfc * _MEM_BYTES)
        # Scratch row for the interpreted path (set_block copies out of
        # it). The shifted-neighbour accumulation and the add/scale order
        # match the obvious elementwise formula bit for bit: addition is
        # commutative per element, and the grouping (((up+mid)+down)+left)
        # is preserved.
        self._acc = np.empty(halfc)
        if not self.lowerable or self.n == 0:
            return
        # Touch lists mirror the interpreted window slide: the first row
        # reads three source rows (up, mid, down); each later row first
        # touches only its ``down`` row, then writes its destination row.
        touches = []
        for k, r in enumerate(rows):
            base = r * halfc
            if k == 0:
                step = [(READ, p) for p in self.span_pages(
                    src, base - halfc, base + 2 * halfc)]
            else:
                step = [(READ, p) for p in self.span_pages(
                    src, base + halfc, base + 2 * halfc)]
            step += [(WRITE, p) for p in self.span_pages(
                dst, base, base + halfc)]
            touches.append(step)
        self.touches = touches
        #: Staged source rows ``rows[0]-1 .. rows[-1]+1`` (n + 2 rows).
        self._band = np.empty((self.n + 2, halfc))

    def ingest(self, i: int) -> None:
        src, halfc, band = self._src, self._halfc, self._band
        base = self._rows[i] * halfc
        if i == 0:
            self.read_span(src, base - halfc, base + 2 * halfc,
                           band[:3].reshape(3 * halfc))
        else:
            self.read_span(src, base + halfc, base + 2 * halfc, band[i + 2])

    def ingest_batch(self, lo: int, hi: int) -> None:
        # Steps [lo, hi) need source rows rows[lo]+1 .. rows[hi-1]+1 —
        # plus the two rows above when lo == 0 — one contiguous span.
        src, halfc, band = self._src, self._halfc, self._band
        r0 = self._rows[0]
        if lo == 0:
            self.read_span(src, (r0 - 1) * halfc, (r0 + hi + 1) * halfc,
                           band[:hi + 2].reshape((hi + 2) * halfc))
        else:
            self.read_span(src, (r0 + lo + 1) * halfc,
                           (r0 + hi + 1) * halfc,
                           band[lo + 2:hi + 2].reshape((hi - lo) * halfc))

    def materialize(self, lo: int, hi: int) -> None:
        band = self._band
        if hi - lo == 1:
            # Single-row commit (the lockstep-contended common case):
            # the interp body's in-place 1-D sequence, same values.
            mid = band[lo + 1]
            acc = self._acc
            np.add(band[lo], mid, out=acc)
            acc += band[lo + 2]
            if self._red:
                acc[0] += mid[0]
                acc[1:] += mid[:-1]
            else:
                acc[:-1] += mid[1:]
                acc[-1] += mid[-1]
            acc *= 0.25
            self.write_span(self._dst, self._rows[lo] * self._halfc, acc)
            return
        up = band[lo:hi]
        mid = band[lo + 1:hi + 1]
        down = band[lo + 2:hi + 2]
        acc = np.add(up, mid)
        acc += down
        if self._red:
            acc[:, 0] += mid[:, 0]
            acc[:, 1:] += mid[:, :-1]
        else:
            acc[:, :-1] += mid[:, 1:]
            acc[:, -1] += mid[:, -1]
        acc *= 0.25
        # The batch's destination rows are contiguous: one span store.
        self.write_span(self._dst, self._rows[lo] * self._halfc,
                        acc.reshape((hi - lo) * self._halfc))

    def interp(self, env):
        src, dst = self._src, self._dst
        halfc = self._halfc
        red = self._red
        acc = self._acc
        row_step = self.cost
        get_block, set_block = env.get_block, env.set_block
        # Within one half-sweep no remote invalidation can arrive (writes
        # become visible only at the next barrier), so row r+1's up/mid
        # rows are byte-identical to row r's mid/down reads — slide the
        # three-row window instead of re-reading. The first touch of each
        # new row (the ``down`` read) happens at the same point in the
        # instruction stream as before, so the fault set and all timings
        # are unchanged.
        down = None
        for r in self._rows:
            base = r * halfc
            if down is None:
                up = get_block(src, base - halfc, base)
                mid = get_block(src, base, base + halfc)
            else:
                up, mid = mid, down
            down = get_block(src, base + halfc, base + 2 * halfc)
            np.add(up, mid, out=acc)
            acc += down
            if red:
                acc[0] += mid[0]
                acc[1:] += mid[:-1]
            else:
                acc[:-1] += mid[1:]
                acc[-1] += mid[-1]
            acc *= 0.25
            set_block(dst, base, acc)
            yield row_step


class SOR(Application):
    name = "SOR"
    paper_problem_size = "3072x4096 (50 Mbytes)"
    paper_seq_time_s = 195.0
    write_double_us = 47.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"rows": 130, "cols": 64, "iters": 10}

    def small_params(self) -> dict:
        return {"rows": 18, "cols": 16, "iters": 3}

    def declare(self, segment, params: dict) -> None:
        rows, halfc = params["rows"], params["cols"] // 2
        segment.alloc("red", rows * halfc)
        segment.alloc("black", rows * halfc)

    def worker(self, env, params: dict):
        rows, halfc = params["rows"], params["cols"] // 2
        iters = params["iters"]
        red, black = env.arr("red"), env.arr("black")

        # Initialization (rank 0): fixed boundary rows.
        if env.rank == 0:
            env.set_block(red, 0, np.full(halfc, 1.0))
            env.set_block(black, 0, np.full(halfc, 1.0))
            env.set_block(red, (rows - 1) * halfc, np.full(halfc, 2.0))
            env.set_block(black, (rows - 1) * halfc, np.full(halfc, 2.0))
            yield env.compute(2.0 * halfc * _FLOP_US, 4 * 8 * halfc)
        env.end_init()
        yield from env.barrier()

        lo, hi = split_range(rows - 2, env.nprocs, env.rank)
        my_rows = range(1 + lo, 1 + hi)
        # Each half-sweep is a lowerable region (DESIGN.md §14): one row
        # per super-step, barriers staying out here in the worker.
        red_sweep = _SorSweep(env, black, red, my_rows, halfc, red=True)
        black_sweep = _SorSweep(env, red, black, my_rows, halfc, red=False)
        for _ in range(iters):
            yield from env.run_region(red_sweep)
            yield from env.barrier()
            yield from env.run_region(black_sweep)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["red", "black"]

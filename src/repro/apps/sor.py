"""SOR: Red-Black Successive Over-Relaxation (Section 3.2).

Solves a Laplace-like relaxation on a 2-D grid stored as separate red and
black arrays (each ``rows × cols/2``). The arrays are divided into bands
of contiguous rows, one band per processor; communication happens across
band boundaries, and processors synchronize with barriers after each
half-sweep. The paper ran 3072×4096 (50 Mbytes, 195 s sequential); we run
a scaled-down grid with the same structure.

SOR has a high computation-to-communication ratio but is memory-bound
(its data set does not fit in the second-level cache), which is why
increasing the number of processors per node *hurts*: capacity-miss
traffic saturates the node's shared bus (Section 3.3.3).
"""

from __future__ import annotations

import numpy as np

from .base import Application, split_range

#: CPU cost per grid element update (4 flops on a 233 MHz Alpha plus loop
#: overhead).
_FLOP_US = 30.0
#: Cache-miss bytes per element update (5 streams of 8-byte words; the
#: data set exceeds the 1 Mbyte board cache, so most traffic misses).
_MEM_BYTES = 1150.0


class SOR(Application):
    name = "SOR"
    paper_problem_size = "3072x4096 (50 Mbytes)"
    paper_seq_time_s = 195.0
    write_double_us = 47.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"rows": 130, "cols": 64, "iters": 10}

    def small_params(self) -> dict:
        return {"rows": 18, "cols": 16, "iters": 3}

    def declare(self, segment, params: dict) -> None:
        rows, halfc = params["rows"], params["cols"] // 2
        segment.alloc("red", rows * halfc)
        segment.alloc("black", rows * halfc)

    def worker(self, env, params: dict):
        rows, halfc = params["rows"], params["cols"] // 2
        iters = params["iters"]
        red, black = env.arr("red"), env.arr("black")

        # Initialization (rank 0): fixed boundary rows.
        if env.rank == 0:
            env.set_block(red, 0, np.full(halfc, 1.0))
            env.set_block(black, 0, np.full(halfc, 1.0))
            env.set_block(red, (rows - 1) * halfc, np.full(halfc, 2.0))
            env.set_block(black, (rows - 1) * halfc, np.full(halfc, 2.0))
            yield env.compute(2.0 * halfc * _FLOP_US, 4 * 8 * halfc)
        env.end_init()
        yield from env.barrier()

        lo, hi = split_range(rows - 2, env.nprocs, env.rank)
        my_rows = range(1 + lo, 1 + hi)
        row_cpu = halfc * _FLOP_US
        row_mem = halfc * _MEM_BYTES

        for _ in range(iters):
            for r in my_rows:
                up = env.get_block(black, (r - 1) * halfc, r * halfc)
                mid = env.get_block(black, r * halfc, (r + 1) * halfc)
                down = env.get_block(black, (r + 1) * halfc, (r + 2) * halfc)
                left = np.concatenate(([mid[0]], mid[:-1]))
                env.set_block(red, r * halfc,
                              0.25 * (up + mid + down + left))
                yield env.compute(row_cpu, row_mem)
            yield from env.barrier()
            for r in my_rows:
                up = env.get_block(red, (r - 1) * halfc, r * halfc)
                mid = env.get_block(red, r * halfc, (r + 1) * halfc)
                down = env.get_block(red, (r + 1) * halfc, (r + 2) * halfc)
                right = np.concatenate((mid[1:], [mid[-1]]))
                env.set_block(black, r * halfc,
                              0.25 * (up + mid + down + right))
                yield env.compute(row_cpu, row_mem)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["red", "black"]

"""Application interface.

Each benchmark application (Section 3.2) implements this interface. The
same ``worker`` generator runs sequentially (rank 0 of 1, plain numpy —
the Table 2 baseline) and in parallel on any placement, which is also how
correctness is established: the protocols genuinely move application
data, so the parallel result must match the sequential one.

Workers must be *data-race-free*: concurrent accesses to the same shared
word must be separated by the env's locks, barriers, or flags. The
simulator enforces the consequence the protocol relies on (incoming
diffs never overlap local modifications) and raises
:class:`~repro.errors.DataRaceError` otherwise.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..runtime.api import SharedSegment


class Application:
    """Base class for the eight benchmark applications."""

    #: Short name ("SOR", "LU", ...).
    name: str = "?"
    #: The problem size string reported in Table 2 (paper scale).
    paper_problem_size: str = ""
    #: The paper's sequential execution time in seconds (Table 2).
    paper_seq_time_s: float = 0.0
    #: Dominant synchronization style ("barriers", "locks", "flags").
    sync_style: str = "barriers"
    #: Cashmere-1L in-line write-doubling cost per simulated word, in us.
    #: One simulated word stands for many real words at the scaled problem
    #: sizes, so this is the paper's per-store doubling cost times the
    #: application's scaling factor (None = the raw cost model value).
    write_double_us: float | None = None

    # --- configuration ---------------------------------------------------------

    def default_params(self) -> dict:
        """Scaled-down default problem parameters."""
        raise NotImplementedError

    def small_params(self) -> dict:
        """Extra-small parameters for fast unit tests."""
        return self.default_params()

    def flags_needed(self, params: dict) -> dict[str, int]:
        """Flag sets the application uses: name -> count."""
        return {}

    # --- workload ---------------------------------------------------------------

    def declare(self, segment: SharedSegment, params: dict) -> None:
        """Allocate the application's shared arrays."""
        raise NotImplementedError

    def worker(self, env, params: dict):
        """The per-processor program (a generator; see WorkerEnv docs)."""
        raise NotImplementedError

    # --- verification -------------------------------------------------------------

    def result_arrays(self, params: dict) -> Iterable[str]:
        """Names of the shared arrays that constitute the result."""
        raise NotImplementedError

    def results_equal(self, name: str, expected: np.ndarray,
                      actual: np.ndarray, rtol: float, atol: float) -> bool:
        """Whether a parallel result array matches the sequential one.

        The default requires element-wise closeness; applications whose
        parallel schedule legitimately reassociates floating-point sums
        (or is non-deterministic, like TSP's branch-and-bound) override
        this with a weaker check.
        """
        return bool(np.allclose(expected, actual, rtol=rtol, atol=atol))

    def result_error(self, name: str, expected: np.ndarray,
                     actual: np.ndarray) -> float:
        """Maximum absolute deviation (for reporting)."""
        if len(expected) == 0:
            return 0.0
        return float(np.max(np.abs(np.asarray(expected)
                                   - np.asarray(actual))))


def split_range(n: int, parts: int, which: int) -> tuple[int, int]:
    """Contiguous block partition of range(n): bounds of block ``which``."""
    base = n // parts
    extra = n % parts
    lo = which * base + min(which, extra)
    hi = lo + base + (1 if which < extra else 0)
    return lo, hi

"""Ilink: genetic linkage analysis (FASTLINK 2.3P) — Section 3.2.

The real Ilink locates disease genes by iterating over a pool of sparse
arrays of genotype probabilities. Its *communication structure* — which
is what the DSM evaluation exercises — is master-slave: the master
updates the probability pool (one-to-all), all processors then update the
nonzero elements assigned to them round-robin for load balance, and the
master gathers and renormalizes the results (all-to-one). Scalability is
limited by the inherent serial component and load imbalance.

Per the substitution note in DESIGN.md, the genetic-likelihood inner math
is replaced by a deterministic sparse update with the same shape: a
round-robin scatter of nonzero elements (which interleaves every
processor's writes through every page of the pool — the multi-writer
pattern Cashmere's diffs must merge) between one-to-all and all-to-one
phases. The paper ran the CLP input (15 Mbytes, 899 s sequential).
"""

from __future__ import annotations

import numpy as np

from .base import Application

#: CPU cost per nonzero element update.
_ELEM_US = 780.0
#: Cache-miss bytes per element (sparse, pointer-chasing access).
_ELEM_MEM = 52.0
#: Serial (master) cost per element per iteration.
_SERIAL_US = 0.01


class Ilink(Application):
    name = "Ilink"
    paper_problem_size = "CLP (15 Mbytes)"
    paper_seq_time_s = 899.0
    write_double_us = 11.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"elements": 1536, "iters": 6, "density": 0.6}

    def small_params(self) -> dict:
        return {"elements": 192, "iters": 2, "density": 0.6}

    def declare(self, segment, params: dict) -> None:
        n = params["elements"]
        segment.alloc("probs", n)     # genotype probability pool
        segment.alloc("update", n)    # per-iteration updates
        segment.alloc("norm", 1)      # the master's gathered normalizer

    @staticmethod
    def _nonzeros(params: dict) -> np.ndarray:
        n = params["elements"]
        keep = int(params["density"] * 97)
        return np.array([i for i in range(n) if (i * 31 + 7) % 97 < keep])

    def worker(self, env, params: dict):
        n, iters = params["elements"], params["iters"]
        probs, update = env.arr("probs"), env.arr("update")
        norm = env.arr("norm")
        me, nprocs = env.rank, env.nprocs
        nonzeros = self._nonzeros(params)
        mine = nonzeros[me::nprocs]  # round-robin assignment
        # Sparse-gather index vectors for the slave phase (fixed per run).
        ib = (mine * 7 + 3) % n
        ic = (mine * 13 + 11) % n
        mine_int = [int(i) for i in mine]

        if me == 0:
            env.set_block(probs, 0, 1.0 / (1.0 + np.arange(n) % 29))
            env.set(norm, 0, 1.0)
            yield env.compute(n * 0.02, n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        for _ in range(iters):
            # Master: serial recombination update of the pool (one-to-all).
            if me == 0:
                cur = env.get_block(probs, 0, n)
                scale = env.get(norm, 0)
                env.set_block(probs, 0, cur * (0.5 + 0.5 / max(scale, 1e-12)))
                yield env.compute(n * _SERIAL_US, n * 16)
            yield from env.barrier()

            # Slaves (and master): update assigned nonzero elements. The
            # three sparse reads per element are gathered from one block
            # read of the pool (the element math is the same, elementwise);
            # the scattered writes stay per-word — they are the multi-writer
            # pattern the diffs must merge.
            if len(mine):
                pool = env.get_block(probs, 0, n)
                vals = pool[mine] * (0.4 * pool[ib] + 0.6 * pool[ic]) + 1e-6
                set_ = env.set
                for j, i in enumerate(mine_int):
                    set_(update, i, vals[j])
                yield env.compute(len(mine) * _ELEM_US,
                                  len(mine) * _ELEM_MEM)
            yield from env.barrier()

            # Master: gather and renormalize (all-to-one).
            if me == 0:
                upd = env.get_block(update, 0, n)
                total = float(upd[nonzeros].sum())
                env.set(norm, 0, total)
                env.set_block(probs, 0, upd + 1e-9)
                yield env.compute(n * _SERIAL_US, n * 16)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["probs", "norm"]

"""Ilink: genetic linkage analysis (FASTLINK 2.3P) — Section 3.2.

The real Ilink locates disease genes by iterating over a pool of sparse
arrays of genotype probabilities. Its *communication structure* — which
is what the DSM evaluation exercises — is master-slave: the master
updates the probability pool (one-to-all), all processors then update the
nonzero elements assigned to them round-robin for load balance, and the
master gathers and renormalizes the results (all-to-one). Scalability is
limited by the inherent serial component and load imbalance.

Per the substitution note in DESIGN.md, the genetic-likelihood inner math
is replaced by a deterministic sparse update with the same shape: a
round-robin scatter of nonzero elements (which interleaves every
processor's writes through every page of the pool — the multi-writer
pattern Cashmere's diffs must merge) between one-to-all and all-to-one
phases. The paper ran the CLP input (15 Mbytes, 899 s sequential).
"""

from __future__ import annotations

import numpy as np

from ..lower.regions import READ, WRITE, RegionKernel
from .base import Application

#: CPU cost per nonzero element update.
_ELEM_US = 780.0
#: Cache-miss bytes per element (sparse, pointer-chasing access).
_ELEM_MEM = 52.0
#: Serial (master) cost per element per iteration.
_SERIAL_US = 0.01


class _IlinkSlave(RegionKernel):
    """One slave phase (scaffolded with ``cashmere-repro lower-gen
    ilink``, then hand-tuned): a single super-step that block-reads the
    probability pool, then scatters per-word updates through the
    ``update`` array — the multi-writer pattern the diffs must merge.
    The master's serial phases stay interpreted (they run on one rank
    and batch nothing)."""

    def __init__(self, env, probs, update, mine, ib, ic,
                 mine_int: list, n: int) -> None:
        super().__init__(env)
        self._probs = probs
        self._update = update
        self._mine = mine
        self._ib = ib
        self._ic = ic
        self._mine_int = mine_int
        self._n = n
        self.n = 1 if len(mine_int) else 0
        self.cost = env.compute(len(mine_int) * _ELEM_US,
                                len(mine_int) * _ELEM_MEM)
        if not self.lowerable or self.n == 0:
            return
        # First-touch order of the interp body: one pool block read,
        # then one word write per assigned element, in assignment order
        # (duplicate pages are faithful — the replay dedups on need).
        step = [(READ, p) for p in self.span_pages(probs, 0, n)]
        for i in mine_int:
            step += [(WRITE, p) for p in self.span_pages(update, i, i + 1)]
        self.touches = [step]
        #: Staged probability pool (the one block read).
        self._pool = np.empty(n)

    def ingest(self, i: int) -> None:
        self.read_span(self._probs, 0, self._n, self._pool)

    def materialize(self, lo: int, hi: int) -> None:
        pool = self._pool
        vals = pool[self._mine] * (0.4 * pool[self._ib]
                                   + 0.6 * pool[self._ic]) + 1e-6
        update = self._update
        for j, i in enumerate(self._mine_int):
            self.write_span(update, i, vals[j:j + 1])

    def interp(self, env):
        pool = env.get_block(self._probs, 0, self._n)
        vals = pool[self._mine] * (0.4 * pool[self._ib]
                                   + 0.6 * pool[self._ic]) + 1e-6
        update = self._update
        set_ = env.set
        for j, i in enumerate(self._mine_int):
            set_(update, i, vals[j])
        yield self.cost


class Ilink(Application):
    name = "Ilink"
    paper_problem_size = "CLP (15 Mbytes)"
    paper_seq_time_s = 899.0
    write_double_us = 11.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"elements": 1536, "iters": 6, "density": 0.6}

    def small_params(self) -> dict:
        return {"elements": 192, "iters": 2, "density": 0.6}

    def declare(self, segment, params: dict) -> None:
        n = params["elements"]
        segment.alloc("probs", n)     # genotype probability pool
        segment.alloc("update", n)    # per-iteration updates
        segment.alloc("norm", 1)      # the master's gathered normalizer

    @staticmethod
    def _nonzeros(params: dict) -> np.ndarray:
        n = params["elements"]
        keep = int(params["density"] * 97)
        return np.array([i for i in range(n) if (i * 31 + 7) % 97 < keep])

    def worker(self, env, params: dict):
        n, iters = params["elements"], params["iters"]
        probs, update = env.arr("probs"), env.arr("update")
        norm = env.arr("norm")
        me, nprocs = env.rank, env.nprocs
        nonzeros = self._nonzeros(params)
        mine = nonzeros[me::nprocs]  # round-robin assignment
        # Sparse-gather index vectors for the slave phase (fixed per run).
        ib = (mine * 7 + 3) % n
        ic = (mine * 13 + 11) % n
        mine_int = [int(i) for i in mine]

        if me == 0:
            env.set_block(probs, 0, 1.0 / (1.0 + np.arange(n) % 29))
            env.set(norm, 0, 1.0)
            yield env.compute(n * 0.02, n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        slave = _IlinkSlave(env, probs, update, mine, ib, ic, mine_int, n)
        for _ in range(iters):
            # Master: serial recombination update of the pool (one-to-all).
            if me == 0:
                cur = env.get_block(probs, 0, n)
                scale = env.get(norm, 0)
                env.set_block(probs, 0, cur * (0.5 + 0.5 / max(scale, 1e-12)))
                yield env.compute(n * _SERIAL_US, n * 16)
            yield from env.barrier()

            # Slaves (and master): update assigned nonzero elements. The
            # three sparse reads per element are gathered from one block
            # read of the pool (the element math is the same, elementwise);
            # the scattered writes stay per-word — they are the multi-writer
            # pattern the diffs must merge.
            yield from env.run_region(slave)
            yield from env.barrier()

            # Master: gather and renormalize (all-to-one).
            if me == 0:
                upd = env.get_block(update, 0, n)
                total = float(upd[nonzeros].sum())
                env.set(norm, 0, total)
                env.set_block(probs, 0, upd + 1e-9)
                yield env.compute(n * _SERIAL_US, n * 16)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["probs", "norm"]

"""TSP: branch-and-bound traveling salesman (Section 3.2).

Workers repeatedly pop the most promising partial tour from a shared
priority queue (protected by one lock), extend it by one city, and either
prune it against the best complete tour so far (protected by a second
lock) or push the extensions back. The earlier some processor stumbles on
the shortest path, the faster the rest of the search space prunes, so
execution is *non-deterministic* — the paper calls this out, and it is
why TSP is verified on the optimal tour *cost* rather than on exact
memory contents. The paper ran 17 cities (1 Mbyte, 4029 s sequential).

Shared-memory layout: the distance matrix, a binary heap of
(bound, record-slot) entries, a record pool with a free stack, the
best-tour record, and two counters — all word-encoded in shared arrays,
so queue operations genuinely exercise lock-protected migratory pages.
"""

from __future__ import annotations

import numpy as np

from .base import Application

#: CPU cost of expanding one partial tour (bound computation etc.).
_EXPAND_US = 240000.0
#: Heap ops cost per level.
_HEAP_US = 0.8

_QLOCK = 0   # protects heap, free stack, outstanding counter
_BLOCK = 1   # protects the best record


def _distances(cities: int) -> np.ndarray:
    """Deterministic pseudo-random symmetric distance matrix."""
    d = np.zeros((cities, cities))
    state = 12345
    for i in range(cities):
        for j in range(i + 1, cities):
            state = (state * 1103515245 + 12345) % (1 << 31)
            d[i, j] = d[j, i] = 1.0 + (state % 1000) / 100.0
    return d


class TSP(Application):
    name = "TSP"
    paper_problem_size = "17 cities (1 Mbyte)"
    paper_seq_time_s = 4029.0
    write_double_us = 18.0
    sync_style = "locks"

    def default_params(self) -> dict:
        return {"cities": 9, "queue_slots": 2048}

    def small_params(self) -> dict:
        return {"cities": 8, "queue_slots": 1024}

    def flags_needed(self, params: dict) -> dict[str, int]:
        return {"done": 1}

    def declare(self, segment, params: dict) -> None:
        c, q = params["cities"], params["queue_slots"]
        self._rec_words = c + 2  # cost, length, path[0..c-1]
        segment.alloc("dist", c * c)
        segment.alloc("heap", 2 * q)       # (bound, slot) pairs
        segment.alloc("records", q * self._rec_words)
        segment.alloc("freelist", q)
        segment.alloc("meta", 4)           # heap_size, free_top, outstanding
        segment.alloc("best", c + 1)       # cost, path

    # --- shared-structure helpers (caller holds _QLOCK) -----------------------

    def _heap_push(self, env, heap, meta, bound, slot):
        size = int(env.get(meta, 0))
        i = size
        env.set(heap, 2 * i, bound)
        env.set(heap, 2 * i + 1, slot)
        while i > 0:
            parent = (i - 1) // 2
            if env.get(heap, 2 * parent) <= env.get(heap, 2 * i):
                break
            for w in range(2):
                a = env.get(heap, 2 * parent + w)
                b = env.get(heap, 2 * i + w)
                env.set(heap, 2 * parent + w, b)
                env.set(heap, 2 * i + w, a)
            i = parent
        env.set(meta, 0, size + 1)
        return size + 1

    def _heap_pop(self, env, heap, meta):
        size = int(env.get(meta, 0))
        bound = env.get(heap, 0)
        slot = int(env.get(heap, 1))
        size -= 1
        env.set(meta, 0, size)
        if size > 0:
            env.set(heap, 0, env.get(heap, 2 * size))
            env.set(heap, 1, env.get(heap, 2 * size + 1))
            i = 0
            while True:
                l, r = 2 * i + 1, 2 * i + 2
                smallest = i
                if l < size and env.get(heap, 2 * l) < env.get(heap, 2 * smallest):
                    smallest = l
                if r < size and env.get(heap, 2 * r) < env.get(heap, 2 * smallest):
                    smallest = r
                if smallest == i:
                    break
                for w in range(2):
                    a = env.get(heap, 2 * smallest + w)
                    b = env.get(heap, 2 * i + w)
                    env.set(heap, 2 * smallest + w, b)
                    env.set(heap, 2 * i + w, a)
                i = smallest
        return bound, slot

    def _alloc_slot(self, env, freelist, meta):
        top = int(env.get(meta, 1)) - 1
        slot = int(env.get(freelist, top))
        env.set(meta, 1, top)
        return slot

    def _free_slot(self, env, freelist, meta, slot):
        top = int(env.get(meta, 1))
        env.set(freelist, top, slot)
        env.set(meta, 1, top + 1)

    # --- worker ---------------------------------------------------------------

    def worker(self, env, params: dict):
        c, q = params["cities"], params["queue_slots"]
        rw = self._rec_words
        dist_arr = env.arr("dist")
        heap, records = env.arr("heap"), env.arr("records")
        freelist, meta, best = env.arr("freelist"), env.arr("meta"), \
            env.arr("best")

        if env.rank == 0:
            d = _distances(c)
            env.set_block(dist_arr, 0, d.reshape(-1))
            env.set_block(freelist, 0, np.arange(q, dtype=float))
            env.set(meta, 1, q)
            env.set(best, 0, 1e18)
            # Seed: the tour starting (and implicitly ending) at city 0.
            slot = self._alloc_slot(env, freelist, meta)
            rec = np.zeros(rw)
            rec[0] = 0.0   # cost so far
            rec[1] = 1.0   # path length
            rec[2] = 0.0   # path[0] = city 0
            env.set_block(records, slot * rw, rec)
            self._heap_push(env, heap, meta, 0.0, slot)
            env.set(meta, 2, 0)  # outstanding expansions
            yield env.compute(c * c * 0.05, c * c * 8)
        env.end_init()
        yield from env.barrier()

        dist = env.get_block(dist_arr, 0, c * c).reshape(c, c)
        min_out = dist.copy()
        np.fill_diagonal(min_out, np.inf)
        min_edge = min_out.min(axis=1)

        # Cached view of the best tour cost. The true value only ever
        # decreases, so a stale (higher) cached bound prunes *less* than
        # the truth — always safe — and we refresh it under the lock only
        # periodically instead of once per expansion.
        best_cost = 1e18
        expansions = 0

        while True:
            if env.flag_peek("done", 0):
                break
            yield from env.acquire(_QLOCK)
            size = int(env.get(meta, 0))
            if size == 0:
                outstanding = int(env.get(meta, 2))
                env.release(_QLOCK)
                if outstanding == 0:
                    env.flag_set("done", 0)
                    break
                # Idle: another worker is still expanding. Poll gently —
                # the queue refills at expansion granularity, not in
                # microseconds.
                yield env.compute(2500.0)
                continue
            bound, slot = self._heap_pop(env, heap, meta)
            env.set(meta, 2, int(env.get(meta, 2)) + 1)
            rec = env.get_block(records, slot * rw, (slot + 1) * rw).copy()
            self._free_slot(env, freelist, meta, slot)
            yield env.compute(_HEAP_US * max(1, size).bit_length())
            env.release(_QLOCK)

            cost, length = rec[0], int(rec[1])
            path = rec[2:2 + length].astype(int)
            visited = set(path.tolist())
            last = path[-1]

            expansions += 1
            if expansions % 8 == 1:
                yield from env.acquire(_BLOCK)
                best_cost = env.get(best, 0)
                env.release(_BLOCK)

            pushes = []
            if bound < best_cost:
                for city in range(c):
                    if city in visited:
                        continue
                    new_cost = cost + dist[last, city]
                    remaining = c - length - 1
                    lower = new_cost + dist[city, 0] if remaining == 0 else \
                        new_cost + min_edge[city] * (remaining + 1)
                    if lower >= best_cost:
                        continue
                    if remaining == 0:
                        total = new_cost + dist[city, 0]
                        yield from env.acquire(_BLOCK)
                        current = env.get(best, 0)
                        if total < current:
                            env.set(best, 0, total)
                            full = np.zeros(c)
                            full[:length] = path
                            full[length] = city
                            env.set_block(best, 1, full)
                        best_cost = min(best_cost, current, total)
                        env.release(_BLOCK)
                    else:
                        new_rec = np.zeros(rw)
                        new_rec[0] = new_cost
                        new_rec[1] = length + 1
                        new_rec[2:2 + length] = path
                        new_rec[2 + length] = city
                        pushes.append((lower, new_rec))
            yield env.compute(_EXPAND_US, rw * 8.0)

            yield from env.acquire(_QLOCK)
            for lower, new_rec in pushes:
                nslot = self._alloc_slot(env, freelist, meta)
                env.set_block(records, nslot * rw, new_rec)
                self._heap_push(env, heap, meta, lower, nslot)
            env.set(meta, 2, int(env.get(meta, 2)) - 1)
            env.release(_QLOCK)
            yield env.compute(_HEAP_US * max(1, len(pushes)))

    def result_arrays(self, params: dict):
        return ["best"]

    def results_equal(self, name, expected, actual, rtol, atol):
        # Non-deterministic search: only the optimal cost must agree.
        return bool(np.isclose(expected[0], actual[0]))

    def result_error(self, name, expected, actual):
        return float(abs(expected[0] - actual[0]))

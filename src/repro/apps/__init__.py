"""The eight benchmark applications of Section 3.2.

Each implements the :class:`~repro.apps.base.Application` interface: the
same worker generator runs sequentially (the Table 2 baseline) and in
parallel under any protocol and placement, and the final shared data is
verified against the sequential result.
"""

from .barnes import Barnes
from .base import Application, split_range
from .em3d import Em3d
from .gauss import Gauss
from .ilink import Ilink
from .lu import LU
from .sor import SOR
from .tsp import TSP
from .water import Water

#: Table 2 order.
ALL_APPS = {
    "SOR": SOR,
    "LU": LU,
    "Water": Water,
    "TSP": TSP,
    "Gauss": Gauss,
    "Ilink": Ilink,
    "Em3d": Em3d,
    "Barnes": Barnes,
}


def make_app(name: str) -> Application:
    """Instantiate a benchmark application by its Table 2 name."""
    return ALL_APPS[name]()


__all__ = ["Application", "split_range", "ALL_APPS", "make_app",
           "SOR", "LU", "Water", "TSP", "Gauss", "Ilink", "Em3d", "Barnes"]

"""LU: blocked dense LU factorization from SPLASH-2 (Section 3.2).

Factors A = L·U (no pivoting; the generated matrix is diagonally
dominant). The matrix is stored block-major — each B×B block contiguous —
for temporal and spatial locality, and each block is owned by one
processor in a 2-D scatter; owners perform all computation on their
blocks. Barriers separate the diagonal-factor, perimeter, and interior
phases of each step.

LU's blocks map cleanly onto pages, so interior blocks spend their life
in exclusive mode and are "stolen" in bursts right after a pivot step —
the access pattern behind the one-level protocols' clustering collapse
(Section 3.3.3: explicit exclusive-break requests pile onto one node).
The paper ran 2046×2046 (33 Mbytes, 254.8 s sequential).
"""

from __future__ import annotations

import numpy as np

from ..lower import READ, WRITE, RegionKernel
from .base import Application

#: CPU cost per multiply-add in the blocked kernels.
_FLOP_US = 110.0
#: Cache-miss bytes per block operation: blocked layout keeps the working
#: set in cache, so traffic is a small fraction of the data touched.
_MEM_FRACTION = 0.15


class _LUInterior(RegionKernel):
    """Phase-3 interior updates for one pivot step ``k``: one owned
    (i, j) block per super-step, with the interpreted loop's lazy
    row/column caching mirrored in the touch lists (a pivot-row or
    pivot-column block is first-touched at the first step that needs
    it, then served from cache)."""

    def __init__(self, env, A, pairs, nb: int, B: int, k: int, cost) -> None:
        super().__init__(env)
        self._A = A
        self._pairs = pairs
        self._nb = nb
        self._B = B
        self._k = k
        self.n = len(pairs)
        self.cost = cost
        if not self.lowerable or self.n == 0:
            return
        bb = B * B
        base_of = LU._block_base
        touches = []
        plan = []
        seen_i: set[int] = set()
        seen_j: set[int] = set()
        for i, j in pairs:
            step = []
            need_col = i not in seen_i
            need_row = j not in seen_j
            if need_col:
                seen_i.add(i)
                base = base_of(i, k, nb, B)
                step += [(READ, p) for p in self.span_pages(A, base,
                                                            base + bb)]
            if need_row:
                seen_j.add(j)
                base = base_of(k, j, nb, B)
                step += [(READ, p) for p in self.span_pages(A, base,
                                                            base + bb)]
            base = base_of(i, j, nb, B)
            step += [(READ, p) for p in self.span_pages(A, base, base + bb)]
            step += [(WRITE, p) for p in self.span_pages(A, base, base + bb)]
            touches.append(step)
            plan.append((need_col, need_row))
        self.touches = touches
        self._plan = plan
        self._cols: dict[int, np.ndarray] = {}
        self._rows_c: dict[int, np.ndarray] = {}
        self._blks = [np.empty((B, B)) for _ in pairs]

    def _read_block(self, I: int, J: int, out: np.ndarray) -> None:
        bb = self._B * self._B
        base = LU._block_base(I, J, self._nb, self._B)
        self.read_span(self._A, base, base + bb, out.reshape(bb))

    def begin(self) -> None:
        # One instance serves one pivot step, but reset defensively so a
        # reused instance matches a fresh interpreted phase.
        self._cols.clear()
        self._rows_c.clear()

    def ingest(self, i: int) -> None:
        pi, pj = self._pairs[i]
        need_col, need_row = self._plan[i]
        B, k = self._B, self._k
        if need_col:
            buf = np.empty((B, B))
            self._read_block(pi, k, buf)
            self._cols[pi] = buf
        if need_row:
            buf = np.empty((B, B))
            self._read_block(k, pj, buf)
            self._rows_c[pj] = buf
        self._read_block(pi, pj, self._blks[i])

    def materialize(self, lo: int, hi: int) -> None:
        bb = self._B * self._B
        for s in range(lo, hi):
            i, j = self._pairs[s]
            blk = self._blks[s]
            blk -= self._cols[i] @ self._rows_c[j]
            base = LU._block_base(i, j, self._nb, self._B)
            self.write_span(self._A, base, blk.reshape(bb))

    def interp(self, env):
        A, B, k, nb = self._A, self._B, self._k, self._nb
        bb = B * B
        row_cache: dict[int, np.ndarray] = {}
        col_cache: dict[int, np.ndarray] = {}
        for i, j in self._pairs:
            if i not in col_cache:
                base = (i * nb + k) * bb
                col_cache[i] = env.get_block(A, base, base + bb).reshape(B, B)
            if j not in row_cache:
                base = (k * nb + j) * bb
                row_cache[j] = env.get_block(A, base, base + bb).reshape(B, B)
            base = (i * nb + j) * bb
            blk = env.get_block(A, base, base + bb).reshape(B, B)
            blk -= col_cache[i] @ row_cache[j]
            env.set_block(A, base, blk.reshape(bb))
            yield self.cost


def _factor_diag(blk: np.ndarray) -> None:
    """In-place LU of a diagonal block (unit lower-triangular L)."""
    n = blk.shape[0]
    for j in range(n):
        blk[j + 1:, j] /= blk[j, j]
        blk[j + 1:, j + 1:] -= np.outer(blk[j + 1:, j], blk[j, j + 1:])


def _bdiv(blk: np.ndarray, diag: np.ndarray) -> None:
    """Perimeter column block: blk := blk · U_kk^-1."""
    n = blk.shape[0]
    for j in range(n):
        blk[:, j] -= blk[:, :j] @ diag[:j, j]
        blk[:, j] /= diag[j, j]


def _bmodd(blk: np.ndarray, diag: np.ndarray) -> None:
    """Perimeter row block: blk := L_kk^-1 · blk (L unit lower)."""
    n = blk.shape[0]
    for i in range(n):
        blk[i, :] -= diag[i, :i] @ blk[:i, :]


class LU(Application):
    name = "LU"
    paper_problem_size = "2046x2046 (33 Mbytes)"
    paper_seq_time_s = 254.8
    write_double_us = 1150.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"n": 192, "block": 12}

    def small_params(self) -> dict:
        return {"n": 32, "block": 8}

    def declare(self, segment, params: dict) -> None:
        n = params["n"]
        if n % params["block"]:
            raise ValueError("matrix size must be a multiple of block size")
        segment.alloc("A", n * n)

    # --- block addressing -----------------------------------------------------

    @staticmethod
    def _block_base(I: int, J: int, nb: int, B: int) -> int:
        return (I * nb + J) * B * B

    @staticmethod
    def _owner(I: int, J: int, nprocs: int) -> int:
        return (I + J * 3) % nprocs

    def _get_block(self, env, A, I, J, nb, B) -> np.ndarray:
        base = self._block_base(I, J, nb, B)
        return env.get_block(A, base, base + B * B).reshape(B, B)

    def _set_block(self, env, A, I, J, nb, B, blk) -> None:
        base = self._block_base(I, J, nb, B)
        env.set_block(A, base, blk.reshape(B * B))

    # --- worker ------------------------------------------------------------------

    def worker(self, env, params: dict):
        n, B = params["n"], params["block"]
        nb = n // B
        A = env.arr("A")
        flops_diag = B * B * B / 3.0
        flops_block = B * B * B
        mem_block = 3 * B * B * 8 * _MEM_FRACTION

        if env.rank == 0:
            # Deterministic diagonally dominant matrix, written block-major.
            for I in range(nb):
                for J in range(nb):
                    blk = np.empty((B, B))
                    for bi in range(B):
                        i = I * B + bi
                        row = (np.arange(J * B, (J + 1) * B) * 7 + i * 13) \
                            % 23 - 11.0
                        blk[bi] = row / 23.0
                        if I == J:
                            blk[bi, bi] += n
                    self._set_block(env, A, I, J, nb, B, blk)
            yield env.compute(n * n * _FLOP_US * 0.1, n * n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        me, nprocs = env.rank, env.nprocs
        for k in range(nb):
            # Phase 1: factor the diagonal block.
            if self._owner(k, k, nprocs) == me:
                diag = self._get_block(env, A, k, k, nb, B)
                _factor_diag(diag)
                self._set_block(env, A, k, k, nb, B, diag)
                yield env.compute(flops_diag * _FLOP_US, mem_block)
            yield from env.barrier()

            # Phase 2: perimeter blocks.
            diag = None
            for j in range(k + 1, nb):
                if self._owner(k, j, nprocs) == me:
                    if diag is None:
                        diag = self._get_block(env, A, k, k, nb, B)
                    blk = self._get_block(env, A, k, j, nb, B)
                    _bmodd(blk, diag)
                    self._set_block(env, A, k, j, nb, B, blk)
                    yield env.compute(flops_block * _FLOP_US / 2, mem_block)
            for i in range(k + 1, nb):
                if self._owner(i, k, nprocs) == me:
                    if diag is None:
                        diag = self._get_block(env, A, k, k, nb, B)
                    blk = self._get_block(env, A, i, k, nb, B)
                    _bdiv(blk, diag)
                    self._set_block(env, A, i, k, nb, B, blk)
                    yield env.compute(flops_block * _FLOP_US / 2, mem_block)
            yield from env.barrier()

            # Phase 3: interior updates — a lowerable region per pivot
            # step (the ownership filter is pure Python, so resolving it
            # here and iterating the owned pairs is sim-identical to the
            # old skip-in-loop form).
            pairs = [(i, j)
                     for i in range(k + 1, nb)
                     for j in range(k + 1, nb)
                     if self._owner(i, j, nprocs) == me]
            interior = _LUInterior(
                env, A, pairs, nb, B, k,
                env.compute(2 * flops_block * _FLOP_US, mem_block))
            yield from env.run_region(interior)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["A"]

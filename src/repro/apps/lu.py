"""LU: blocked dense LU factorization from SPLASH-2 (Section 3.2).

Factors A = L·U (no pivoting; the generated matrix is diagonally
dominant). The matrix is stored block-major — each B×B block contiguous —
for temporal and spatial locality, and each block is owned by one
processor in a 2-D scatter; owners perform all computation on their
blocks. Barriers separate the diagonal-factor, perimeter, and interior
phases of each step.

LU's blocks map cleanly onto pages, so interior blocks spend their life
in exclusive mode and are "stolen" in bursts right after a pivot step —
the access pattern behind the one-level protocols' clustering collapse
(Section 3.3.3: explicit exclusive-break requests pile onto one node).
The paper ran 2046×2046 (33 Mbytes, 254.8 s sequential).
"""

from __future__ import annotations

import numpy as np

from .base import Application

#: CPU cost per multiply-add in the blocked kernels.
_FLOP_US = 110.0
#: Cache-miss bytes per block operation: blocked layout keeps the working
#: set in cache, so traffic is a small fraction of the data touched.
_MEM_FRACTION = 0.15


def _factor_diag(blk: np.ndarray) -> None:
    """In-place LU of a diagonal block (unit lower-triangular L)."""
    n = blk.shape[0]
    for j in range(n):
        blk[j + 1:, j] /= blk[j, j]
        blk[j + 1:, j + 1:] -= np.outer(blk[j + 1:, j], blk[j, j + 1:])


def _bdiv(blk: np.ndarray, diag: np.ndarray) -> None:
    """Perimeter column block: blk := blk · U_kk^-1."""
    n = blk.shape[0]
    for j in range(n):
        blk[:, j] -= blk[:, :j] @ diag[:j, j]
        blk[:, j] /= diag[j, j]


def _bmodd(blk: np.ndarray, diag: np.ndarray) -> None:
    """Perimeter row block: blk := L_kk^-1 · blk (L unit lower)."""
    n = blk.shape[0]
    for i in range(n):
        blk[i, :] -= diag[i, :i] @ blk[:i, :]


class LU(Application):
    name = "LU"
    paper_problem_size = "2046x2046 (33 Mbytes)"
    paper_seq_time_s = 254.8
    write_double_us = 1150.0
    sync_style = "barriers"

    def default_params(self) -> dict:
        return {"n": 192, "block": 12}

    def small_params(self) -> dict:
        return {"n": 32, "block": 8}

    def declare(self, segment, params: dict) -> None:
        n = params["n"]
        if n % params["block"]:
            raise ValueError("matrix size must be a multiple of block size")
        segment.alloc("A", n * n)

    # --- block addressing -----------------------------------------------------

    @staticmethod
    def _block_base(I: int, J: int, nb: int, B: int) -> int:
        return (I * nb + J) * B * B

    @staticmethod
    def _owner(I: int, J: int, nprocs: int) -> int:
        return (I + J * 3) % nprocs

    def _get_block(self, env, A, I, J, nb, B) -> np.ndarray:
        base = self._block_base(I, J, nb, B)
        return env.get_block(A, base, base + B * B).reshape(B, B)

    def _set_block(self, env, A, I, J, nb, B, blk) -> None:
        base = self._block_base(I, J, nb, B)
        env.set_block(A, base, blk.reshape(B * B))

    # --- worker ------------------------------------------------------------------

    def worker(self, env, params: dict):
        n, B = params["n"], params["block"]
        nb = n // B
        A = env.arr("A")
        flops_diag = B * B * B / 3.0
        flops_block = B * B * B
        mem_block = 3 * B * B * 8 * _MEM_FRACTION

        if env.rank == 0:
            # Deterministic diagonally dominant matrix, written block-major.
            for I in range(nb):
                for J in range(nb):
                    blk = np.empty((B, B))
                    for bi in range(B):
                        i = I * B + bi
                        row = (np.arange(J * B, (J + 1) * B) * 7 + i * 13) \
                            % 23 - 11.0
                        blk[bi] = row / 23.0
                        if I == J:
                            blk[bi, bi] += n
                    self._set_block(env, A, I, J, nb, B, blk)
            yield env.compute(n * n * _FLOP_US * 0.1, n * n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        me, nprocs = env.rank, env.nprocs
        for k in range(nb):
            # Phase 1: factor the diagonal block.
            if self._owner(k, k, nprocs) == me:
                diag = self._get_block(env, A, k, k, nb, B)
                _factor_diag(diag)
                self._set_block(env, A, k, k, nb, B, diag)
                yield env.compute(flops_diag * _FLOP_US, mem_block)
            yield from env.barrier()

            # Phase 2: perimeter blocks.
            diag = None
            for j in range(k + 1, nb):
                if self._owner(k, j, nprocs) == me:
                    if diag is None:
                        diag = self._get_block(env, A, k, k, nb, B)
                    blk = self._get_block(env, A, k, j, nb, B)
                    _bmodd(blk, diag)
                    self._set_block(env, A, k, j, nb, B, blk)
                    yield env.compute(flops_block * _FLOP_US / 2, mem_block)
            for i in range(k + 1, nb):
                if self._owner(i, k, nprocs) == me:
                    if diag is None:
                        diag = self._get_block(env, A, k, k, nb, B)
                    blk = self._get_block(env, A, i, k, nb, B)
                    _bdiv(blk, diag)
                    self._set_block(env, A, i, k, nb, B, blk)
                    yield env.compute(flops_block * _FLOP_US / 2, mem_block)
            yield from env.barrier()

            # Phase 3: interior updates.
            row_cache: dict[int, np.ndarray] = {}
            col_cache: dict[int, np.ndarray] = {}
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    if self._owner(i, j, nprocs) != me:
                        continue
                    if i not in col_cache:
                        col_cache[i] = self._get_block(env, A, i, k, nb, B)
                    if j not in row_cache:
                        row_cache[j] = self._get_block(env, A, k, j, nb, B)
                    blk = self._get_block(env, A, i, j, nb, B)
                    blk -= col_cache[i] @ row_cache[j]
                    self._set_block(env, A, i, j, nb, B, blk)
                    yield env.compute(2 * flops_block * _FLOP_US, mem_block)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["A"]
